//! Property-based integration tests over the full pipeline.

use mobile_collectors::prelude::*;
use proptest::prelude::*;

fn arb_net() -> impl Strategy<Value = Network> {
    (10usize..150, 100.0..320.0f64, 20.0..50.0f64, any::<u64>()).prop_map(|(n, side, r, seed)| {
        Network::build(DeploymentConfig::uniform(n, side).generate(seed), r)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_plan_survives_a_simulated_round(net in arb_net()) {
        let plan = ShdgPlanner::new().plan(&net).unwrap();
        prop_assert!(plan.validate(&net.deployment.sensors, net.range).is_ok());
        let scen = scenario_from_plan(&plan, &net.deployment.sensors);
        let round = MobileGatheringSim::new(scen, SimConfig::default()).run();
        prop_assert_eq!(round.packets_delivered, net.n_sensors());
        prop_assert_eq!(round.packets_expected, net.n_sensors());
        // Exactly one transmission per sensor (the SHDG invariant).
        prop_assert_eq!(round.total_transmissions(), net.n_sensors() as u64);
    }

    #[test]
    fn shdg_never_longer_than_visit_all(net in arb_net()) {
        let shdg = ShdgPlanner::new().plan(&net).unwrap();
        let va = visit_all_plan(&net);
        prop_assert!(shdg.tour_length <= va.tour_length + 1e-6);
        prop_assert!(shdg.n_polling_points() <= va.n_polling_points());
    }

    #[test]
    fn mobile_energy_beats_routing_when_connected(net in arb_net()) {
        let cfg = SimConfig::default();
        let plan = ShdgPlanner::new().plan(&net).unwrap();
        let scen = scenario_from_plan(&plan, &net.deployment.sensors);
        let mobile = MobileGatheringSim::new(scen, cfg).run();
        let routing = MultihopRoutingSim::new(&net, cfg).run();
        if routing.delivery_ratio() == 1.0 && net.n_sensors() > 0 {
            // Same packets collected; mobile never uses more transmissions.
            prop_assert!(mobile.total_transmissions() <= routing.total_transmissions());
        }
    }

    #[test]
    fn fleet_invariants_hold(net in arb_net(), k in 1usize..6) {
        use mobile_collectors::core::fleet::plan_fleet;
        let plan = ShdgPlanner::new().plan(&net).unwrap();
        let fleet = plan_fleet(&plan, k);
        prop_assert!(fleet.validate(&plan).is_ok());
        // Sub-tour lengths are consistent with their polling points.
        for c in &fleet.collectors {
            let mut pts = vec![plan.sink];
            pts.extend(c.polling_points.iter().map(|&i| plan.polling_points[i].pos));
            let expect = mdg_geom::closed_tour_length(&pts);
            prop_assert!((c.length - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn lifetime_is_monotone_in_battery(seed in any::<u64>()) {
        let net = Network::build(DeploymentConfig::uniform(40, 150.0).generate(seed), 30.0);
        let plan = ShdgPlanner::new().plan(&net).unwrap();
        let cfg = SimConfig::default();
        let mut prev = 0u64;
        for battery in [0.001, 0.004, 0.016] {
            let scen = scenario_from_plan(&plan, &net.deployment.sensors);
            let mut sim = MobileGatheringSim::new(scen, cfg);
            let life = simulate_lifetime(&mut sim, battery, 1_000_000);
            let death = life.first_death_round.unwrap_or(u64::MAX);
            prop_assert!(death >= prev, "bigger battery must not die earlier");
            prev = death;
        }
    }
}
