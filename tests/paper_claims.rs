//! The paper's headline qualitative claims, checked end-to-end at moderate
//! scale. These are the "shape" assertions the reproduction must preserve
//! even though absolute numbers differ from the authors' testbed.

use mobile_collectors::prelude::*;

fn network(n: usize, side: f64, range: f64, seed: u64) -> Network {
    Network::build(DeploymentConfig::uniform(n, side).generate(seed), range)
}

/// Claim 1: polling-point tours are much shorter than visiting every
/// sensor, and the advantage grows with density.
#[test]
fn polling_points_shorten_the_tour() {
    for seed in 0..5 {
        let net = network(200, 200.0, 30.0, seed);
        let shdg = ShdgPlanner::new().plan(&net).unwrap();
        let va = visit_all_plan(&net);
        assert!(
            shdg.tour_length < 0.7 * va.tour_length,
            "seed {seed}: {} vs {}",
            shdg.tour_length,
            va.tour_length
        );
    }
    // Density scaling: the SHDG tour saturates while visit-all keeps
    // growing.
    let shdg_100 = ShdgPlanner::new()
        .plan(&network(100, 200.0, 30.0, 7))
        .unwrap()
        .tour_length;
    let shdg_500 = ShdgPlanner::new()
        .plan(&network(500, 200.0, 30.0, 7))
        .unwrap()
        .tour_length;
    let va_100 = visit_all_plan(&network(100, 200.0, 30.0, 7)).tour_length;
    let va_500 = visit_all_plan(&network(500, 200.0, 30.0, 7)).tour_length;
    assert!(
        (shdg_500 / shdg_100) < (va_500 / va_100),
        "SHDG must scale sublinearly versus visit-all"
    );
}

/// Claim 2: single-hop mobile gathering gives every sensor exactly one
/// transmission per round — perfect transmission-count uniformity.
#[test]
fn single_hop_uniformity() {
    let net = network(150, 200.0, 30.0, 3);
    let plan = ShdgPlanner::new().plan(&net).unwrap();
    let scen = scenario_from_plan(&plan, &net.deployment.sensors);
    let round = MobileGatheringSim::new(scen, SimConfig::default()).run();
    for s in 0..net.n_sensors() {
        assert_eq!(round.ledger.tx_of(s), 1);
        assert_eq!(round.ledger.rx_of(s), 0);
    }
    // Static routing cannot say the same.
    let mh = MultihopRoutingSim::new(&net, SimConfig::default()).run();
    let max_tx = (0..net.n_sensors())
        .map(|s| mh.ledger.tx_of(s))
        .max()
        .unwrap();
    assert!(max_tx > 1, "routing hotspots must relay multiple packets");
    assert!(round.ledger.fairness() > mh.ledger.fairness());
}

/// Claim 3: mobile gathering trades latency for energy — routing delivers
/// orders of magnitude faster, mobile schemes spend orders of magnitude
/// less sensor energy (on transmissions over bounded distances).
#[test]
fn energy_latency_tradeoff() {
    let net = network(200, 200.0, 30.0, 11);
    let cfg = SimConfig::default();
    let plan = ShdgPlanner::new().plan(&net).unwrap();
    let scen = scenario_from_plan(&plan, &net.deployment.sensors);
    let mobile = MobileGatheringSim::new(scen, cfg).run();
    let routing = MultihopRoutingSim::new(&net, cfg).run();
    // Latency: routing at least 100× faster.
    assert!(routing.duration_secs * 100.0 < mobile.duration_secs);
    // Energy: mobile strictly cheaper (no relay receive/forward chains).
    assert!(mobile.total_joules() < routing.total_joules());
    // Transmissions: N vs Σhops > N.
    assert!(mobile.total_transmissions() < routing.total_transmissions());
}

/// Claim 4: network lifetime is extended by mobile gathering (the sink-
/// adjacent relay hotspot disappears).
#[test]
fn lifetime_extension() {
    let net = network(120, 200.0, 30.0, 19);
    let cfg = SimConfig::default();
    let battery = 0.2;
    let plan = ShdgPlanner::new().plan(&net).unwrap();
    let scen = scenario_from_plan(&plan, &net.deployment.sensors);
    let mut mobile = MobileGatheringSim::new(scen, cfg);
    let m = simulate_lifetime(&mut mobile, battery, 1_000_000);
    let mut routing = MultihopRoutingSim::new(&net, cfg);
    let r = simulate_lifetime(&mut routing, battery, 1_000_000);
    let m_death = m.first_death_round.expect("mobile sensors eventually die");
    let r_death = r.first_death_round.expect("routing hotspot dies quickly");
    assert!(
        m_death > 5 * r_death,
        "mobile {m_death} rounds vs routing {r_death} rounds"
    );
}

/// Claim 5: mobile collection works on disconnected networks where
/// routing cannot.
#[test]
fn disconnected_networks_are_served() {
    let cfg = DeploymentConfig {
        field_side: 300.0,
        sink: SinkPlacement::Center,
        topology: Topology::Corridors {
            bands: 3,
            per_band: 40,
            band_height: 20.0,
        },
    };
    let net = Network::build(cfg.generate(23), 30.0);
    assert!(!net.is_connected());
    let sim_cfg = SimConfig::default();
    let plan = ShdgPlanner::new().plan(&net).unwrap();
    let scen = scenario_from_plan(&plan, &net.deployment.sensors);
    let mobile = MobileGatheringSim::new(scen, sim_cfg).run();
    assert_eq!(mobile.delivery_ratio(), 1.0);
    let routing = MultihopRoutingSim::new(&net, sim_cfg).run();
    assert!(routing.delivery_ratio() < 1.0);
}

/// Claim 6: the relay-hop-free property distinguishes SHDG from CME: CME
/// needs unbounded relays whose depth grows with the track spacing.
#[test]
fn cme_relays_grow_with_track_spacing() {
    let net = network(300, 300.0, 30.0, 29);
    let sparse = plan_cme(&net, 2); // tracks 300 m apart
    let dense = plan_cme(&net, 7); // tracks 50 m apart
    assert!(
        sparse.mean_relay_hops() > dense.mean_relay_hops(),
        "sparser tracks must force deeper relay chains: {} vs {}",
        sparse.mean_relay_hops(),
        dense.mean_relay_hops()
    );
    // And denser tracks cost tour length.
    assert!(dense.path_length > sparse.path_length);
}

/// Claim 7 (deadline extension): enough collectors always meet any
/// deadline that is individually feasible, and the required fleet size
/// decreases monotonically as the deadline loosens.
#[test]
fn fleet_meets_deadlines() {
    use mobile_collectors::core::fleet::plan_fleet_for_deadline;
    let net = network(250, 350.0, 30.0, 31);
    let plan = ShdgPlanner::new().plan(&net).unwrap();
    let single = plan.collection_time(1.0, 0.5);
    let mut prev = usize::MAX;
    for frac in [0.2, 0.35, 0.5, 0.75, 1.0] {
        let fleet = plan_fleet_for_deadline(&plan, single * frac, 1.0, 0.5)
            .expect("fractions of the single tour are feasible here");
        assert!(fleet.makespan(1.0, 0.5) <= single * frac + 1e-6);
        assert!(fleet.n_collectors() <= prev);
        prev = fleet.n_collectors();
    }
    assert_eq!(
        prev, 1,
        "the full-time deadline needs exactly one collector"
    );
}
