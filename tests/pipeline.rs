//! End-to-end integration tests across all workspace crates.

use mobile_collectors::prelude::*;
use mobile_collectors::{core::fleet, sim::RoundScheme};

fn network(n: usize, side: f64, range: f64, seed: u64) -> Network {
    Network::build(DeploymentConfig::uniform(n, side).generate(seed), range)
}

#[test]
fn full_pipeline_is_deterministic_by_seed() {
    let run = || {
        let net = network(150, 200.0, 30.0, 99);
        let plan = ShdgPlanner::new().plan(&net).unwrap();
        let scen = scenario_from_plan(&plan, &net.deployment.sensors);
        let round = MobileGatheringSim::new(scen, SimConfig::default()).run();
        (
            plan.tour_length,
            plan.n_polling_points(),
            round.duration_secs,
            round.total_joules(),
        )
    };
    assert_eq!(
        run(),
        run(),
        "same seed must reproduce the whole pipeline bit-for-bit"
    );
}

#[test]
fn plan_energy_matches_radio_model_exactly() {
    // Cross-crate energy conservation: the simulated round's joules must
    // equal the closed-form cost of one upload per sensor over its upload
    // distance.
    let net = network(120, 200.0, 30.0, 5);
    let plan = ShdgPlanner::new().plan(&net).unwrap();
    let cfg = SimConfig::default();
    let scen = scenario_from_plan(&plan, &net.deployment.sensors);
    let round = MobileGatheringSim::new(scen, cfg).run();
    let analytic: f64 = plan
        .upload_distances(&net.deployment.sensors)
        .iter()
        .map(|&d| cfg.radio.tx_cost(d))
        .sum();
    assert!(
        (round.total_joules() - analytic).abs() < 1e-12,
        "simulated {} J vs analytic {} J",
        round.total_joules(),
        analytic
    );
}

#[test]
fn simulated_duration_matches_plan_estimate() {
    let net = network(100, 200.0, 30.0, 8);
    let plan = ShdgPlanner::new().plan(&net).unwrap();
    let cfg = SimConfig::default();
    let scen = scenario_from_plan(&plan, &net.deployment.sensors);
    let round = MobileGatheringSim::new(scen, cfg).run();
    let estimate = plan.collection_time(cfg.speed_mps, cfg.upload_secs);
    assert!(
        (round.duration_secs - estimate).abs() < 1e-6,
        "DES {} s vs closed form {} s",
        round.duration_secs,
        estimate
    );
}

#[test]
fn fleet_union_equals_single_plan_service() {
    let net = network(200, 300.0, 30.0, 13);
    let plan = ShdgPlanner::new().plan(&net).unwrap();
    for k in [2, 3, 5] {
        let f = fleet::plan_fleet(&plan, k);
        f.validate(&plan).unwrap();
        let served: usize = f.collectors.iter().map(|c| c.sensors_served).sum();
        assert_eq!(served, net.n_sensors(), "k = {k}");
        // Total fleet travel exceeds the single tour (extra depot legs)…
        assert!(f.total_length() >= plan.tour_length - 1e-6, "k = {k}");
        // …but the makespan is no worse.
        assert!(f.max_length() <= plan.tour_length + 1e-6, "k = {k}");
    }
}

#[test]
fn exact_solver_agrees_with_heuristic_on_easy_instances() {
    // On instances where one polling point suffices, both must find the
    // single-stop tour.
    let net = network(10, 40.0, 60.0, 21); // R covers the whole field
    let heur = ShdgPlanner::new().plan(&net).unwrap();
    let exact = mobile_collectors::core::exact_plan(&net).unwrap();
    assert_eq!(heur.n_polling_points(), 1);
    assert_eq!(exact.n_polling_points(), 1);
    assert!(exact.tour_length <= heur.tour_length + 1e-9);
}

#[test]
fn round_scheme_trait_objects_work_across_crates() {
    // The lifetime driver must accept both schemes through the trait.
    let net = network(60, 150.0, 30.0, 2);
    let plan = ShdgPlanner::new().plan(&net).unwrap();
    let scen = scenario_from_plan(&plan, &net.deployment.sensors);
    let mut schemes: Vec<Box<dyn RoundScheme>> = vec![
        Box::new(MobileGatheringSim::new(scen, SimConfig::default())),
        Box::new(MultihopRoutingSim::new(&net, SimConfig::default())),
    ];
    for s in &mut schemes {
        let alive = vec![true; s.n_nodes()];
        let r = s.round(&alive);
        assert!(r.packets_expected > 0);
    }
}

#[test]
fn grid_candidate_plans_are_simulatable() {
    use mobile_collectors::core::{CandidateMode, PlannerConfig};
    let net = network(80, 150.0, 30.0, 17);
    let cfg = PlannerConfig {
        candidates: CandidateMode::Grid { spacing: 20.0 },
        ..PlannerConfig::default()
    };
    let plan = ShdgPlanner::with_config(cfg).plan(&net).unwrap();
    plan.validate(&net.deployment.sensors, net.range).unwrap();
    let scen = scenario_from_plan(&plan, &net.deployment.sensors);
    let round = MobileGatheringSim::new(scen, SimConfig::default()).run();
    assert_eq!(round.packets_delivered, net.n_sensors());
}

#[test]
fn batteries_drain_consistently_across_schemes() {
    // simulate_lifetime over the mobile scheme: every sensor dies after
    // floor(battery / per-round-cost) rounds; with uniform single-hop
    // costs the first death round is predictable from the max upload
    // distance.
    let net = network(50, 120.0, 30.0, 4);
    let plan = ShdgPlanner::new().plan(&net).unwrap();
    let cfg = SimConfig::default();
    let max_cost = plan
        .upload_distances(&net.deployment.sensors)
        .iter()
        .map(|&d| cfg.radio.tx_cost(d))
        .fold(0.0, f64::max);
    let battery = 0.01;
    let predicted_first_death = (battery / max_cost).ceil() as u64;
    let scen = scenario_from_plan(&plan, &net.deployment.sensors);
    let mut sim = MobileGatheringSim::new(scen, cfg);
    let life = simulate_lifetime(&mut sim, battery, 100_000);
    assert_eq!(life.first_death_round, Some(predicted_first_death));
}
