//! Cross-thread-count equivalence suite for the hierarchical planner.
//!
//! The hierarchical planner fans per-tile planning out on `mdg-par`, so
//! it inherits — and must uphold — the layer's hard invariant: **plans
//! are bit-identical at any thread count**. Tiles are planned as
//! independent work items and combined in deterministic (serpentine)
//! index order; stitching, splicing and the seam touch-up are sequential.
//! This suite re-plans the same fields at 1, 2 and 8 worker threads and
//! requires `GatheringPlan` equality (derived `PartialEq` — exact f64
//! comparison, no tolerances), plus full coverage and the ≤ 1.25× tour
//! quality gate against the flat planner.
//!
//! Thread counts are driven through `mdg_par::set_threads`, which is
//! process-global — every test that touches it serializes on [`lock`].
//!
//! The scratch-arena variant of this invariant — hier fields re-planned
//! under pool poisoning, arenas on vs off — lives in
//! `tests/scratch_poison.rs`.

use mobile_collectors::core::{
    CoveringStrategy, GatheringPlan, HierConfig, HierPlanner, PlanMetrics, PlannerConfig,
    ShdgPlanner,
};
use mobile_collectors::net::{DeploymentConfig, Network};
use mobile_collectors::par;
use std::sync::{Mutex, MutexGuard, OnceLock};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const RANGE: f64 = 30.0;

/// Serializes tests around the process-global thread-count override.
/// Also honors `MDG_COUNT_ALLOC` (CI's alloc-gate job re-runs this suite
/// under the counting allocator — counting must never change a plan).
fn lock() -> MutexGuard<'static, ()> {
    mobile_collectors::obs::alloc::counting_from_env();
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn plan_with(cfg: &HierConfig, net: &Network, threads: usize) -> GatheringPlan {
    par::set_threads(threads);
    let plan = HierPlanner::with_config(*cfg)
        .plan(net)
        .expect("field is feasible");
    par::set_threads(0);
    plan
}

/// Plans `net` hierarchically at every thread count and asserts all plans
/// are identical to the single-thread one. Returns the reference plan.
fn assert_thread_count_invariant(cfg: &HierConfig, net: &Network, label: &str) -> GatheringPlan {
    let reference = plan_with(cfg, net, THREAD_COUNTS[0]);
    for &t in &THREAD_COUNTS[1..] {
        let plan = plan_with(cfg, net, t);
        assert_eq!(
            reference, plan,
            "{label}: hier plan at {t} threads differs from single-threaded plan"
        );
    }
    reference
}

fn uniform(n: usize, side: f64, seed: u64) -> Network {
    Network::build(DeploymentConfig::uniform(n, side).generate(seed), RANGE)
}

#[test]
fn hier_plans_bit_identical_across_thread_counts() {
    let _g = lock();
    // Many tiles (small forced tile side) so the par_map fan-out really
    // has work items to distribute; 10 seeds.
    for seed in 0..10u64 {
        let n = 400 + (seed as usize % 4) * 200;
        let net = uniform(n, 900.0, seed);
        let cfg = HierConfig {
            tile_cells: Some(5.0),
            ..HierConfig::default()
        };
        let plan = assert_thread_count_invariant(&cfg, &net, &format!("seed {seed}"));
        plan.validate(&net.deployment.sensors, RANGE)
            .expect("hier plan covers every live sensor");
    }
}

#[test]
fn hier_determinism_holds_for_every_covering_strategy() {
    let _g = lock();
    let net = uniform(800, 900.0, 7);
    let base_for = |covering, cap| PlannerConfig {
        covering,
        max_sensors_per_pp: cap,
        ..PlannerConfig::default()
    };
    for (label, base) in [
        ("greedy", base_for(CoveringStrategy::Greedy, None)),
        (
            "tour_aware",
            base_for(
                CoveringStrategy::TourAware {
                    insertion_weight: 1.0,
                },
                None,
            ),
        ),
        ("capacitated", base_for(CoveringStrategy::Greedy, Some(16))),
    ] {
        let cfg = HierConfig {
            base,
            tile_cells: Some(6.0),
            ..HierConfig::default()
        };
        let plan = assert_thread_count_invariant(&cfg, &net, label);
        plan.validate(&net.deployment.sensors, RANGE)
            .expect("hier plan covers every live sensor");
    }
}

#[test]
fn hier_quality_stays_within_the_gate_at_any_thread_count() {
    let _g = lock();
    let net = uniform(1_500, 1_200.0, 21);
    let cfg = HierConfig::default();
    let hier = assert_thread_count_invariant(&cfg, &net, "quality field");
    let flat = ShdgPlanner::new().plan(&net).expect("field is feasible");
    let hm = PlanMetrics::of(&hier, &net.deployment.sensors);
    let fm = PlanMetrics::of(&flat, &net.deployment.sensors);
    let ratio = hm.tour_length / fm.tour_length;
    assert!(
        ratio <= 1.25,
        "hier tour {:.1} m is {ratio:.3}x the flat tour {:.1} m",
        hm.tour_length,
        fm.tour_length
    );
}
