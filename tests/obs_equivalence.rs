//! The observability determinism contract: enabling `mdg-obs` profiling
//! must not perturb planning — plans are **bit-identical** with profiling
//! on and off, at 1 and 4 worker threads (the acceptance criterion of the
//! instrumentation layer).
//!
//! Thread-count equivalence itself is covered by `par_equivalence.rs`;
//! here the axis under test is the profiling flag.

use mobile_collectors::core::{GatheringPlan, ShdgPlanner};
use mobile_collectors::net::{DeploymentConfig, Network};
use mobile_collectors::{obs, par};

/// The obs registry and the thread override are process globals; the
/// tests in this binary serialize on this lock so they cannot interleave.
fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn field(n: usize, side: f64, seed: u64) -> Network {
    Network::build(DeploymentConfig::uniform(n, side).generate(seed), 30.0)
}

fn plan_with_obs(net: &Network, profiling: bool) -> GatheringPlan {
    obs::reset();
    obs::set_enabled(profiling);
    let plan = ShdgPlanner::new().plan(net).unwrap();
    obs::set_enabled(false);
    plan
}

#[test]
fn plans_bit_identical_with_profiling_on_and_off_at_1_and_4_threads() {
    let _g = obs_lock();
    // Sizes straddle DENSE_TOUR_LIMIT-ish behavior differences: small
    // fields use the dense tour pipeline, the 2500-sensor field the
    // neighbor-list one.
    for (n, side) in [(120usize, 200.0), (600, 400.0), (2500, 700.0)] {
        for seed in [1u64, 17] {
            let net = field(n, side, seed);
            for threads in [1usize, 4] {
                par::set_threads(threads);
                let off = plan_with_obs(&net, false);
                let on = plan_with_obs(&net, true);
                assert_eq!(
                    off, on,
                    "profiling changed the plan: n={n} seed={seed} threads={threads}"
                );
            }
            // And across thread counts with profiling on.
            par::set_threads(1);
            let t1 = plan_with_obs(&net, true);
            par::set_threads(4);
            let t4 = plan_with_obs(&net, true);
            assert_eq!(
                t1, t4,
                "n={n} seed={seed}: profiled plans differ by threads"
            );
        }
    }
    par::set_threads(0);
}

#[test]
fn profiled_plan_records_the_pipeline_phases() {
    let _g = obs_lock();
    let net = field(300, 250.0, 3);
    obs::reset();
    obs::set_enabled(true);
    ShdgPlanner::new().plan(&net).unwrap();
    obs::set_enabled(false);
    let prof = obs::snapshot();
    let paths: Vec<&str> = prof.spans.iter().map(|s| s.path.as_str()).collect();
    for expect in [
        "plan",
        "plan/instance",
        "plan/cover",
        "plan/cover/tour_aware",
        "plan/tour",
        "plan/tour/improve",
        "plan/assign",
    ] {
        assert!(paths.contains(&expect), "missing {expect} in {paths:?}");
    }
    // The root span accounts the sensors as items and bounds its children.
    let root = &prof.spans[0];
    assert_eq!(root.path, "plan");
    assert_eq!(root.items, 300);
    for s in &prof.spans[1..] {
        assert!(
            s.wall_nanos <= root.wall_nanos,
            "{} outlasted its root",
            s.path
        );
    }
    obs::reset();
}

#[test]
fn profile_jsonl_round_trips_through_the_vendored_parser() {
    let _g = obs_lock();
    let net = field(200, 200.0, 9);
    obs::reset();
    obs::set_enabled(true);
    ShdgPlanner::new().plan(&net).unwrap();
    obs::set_enabled(false);
    let prof = obs::snapshot();
    let jsonl = prof.to_jsonl();
    assert!(!jsonl.is_empty());
    let mut kinds = std::collections::BTreeSet::new();
    for line in jsonl.lines() {
        let v = serde_json::parse_value(line).expect("line parses as JSON");
        match v.get("kind") {
            Some(serde::Value::Str(kind)) => {
                kinds.insert(kind.clone());
            }
            other => panic!("bad kind: {other:?}"),
        }
        assert!(matches!(v.get("path"), Some(serde::Value::Str(_))));
    }
    assert!(kinds.contains("span"));
    assert!(kinds.contains("counter"), "planner bumps move counters");
    obs::reset();
}
