//! Poisoning property suite for the scratch arenas.
//!
//! The arena contract: a pooled buffer hands back *capacity only* — its
//! length is always zero on `take`, so no stale content from a previous
//! planning run can leak into the next one. This suite turns the pool's
//! poison mode on (every `put` overwrites the buffer's spare capacity
//! with a `0xA5` sentinel), re-plans the `par_equivalence` field set at
//! 1 and 4 worker threads, and requires the plans to be bit-identical
//! both across thread counts and with the arenas disabled entirely
//! (`scratch::set_enabled(false)` = every take is a fresh allocation).
//! A buffer whose old contents were ever *read* after reuse would plan
//! through sentinel garbage here and diverge loudly.
//!
//! Poison, enablement and the thread count are process-global, so every
//! test serializes on [`lock`] (shared across files via the process-wide
//! `set_threads`, same discipline as the other equivalence suites) and
//! restores the globals through a drop guard even on panic.

use mobile_collectors::core::{
    CoveringStrategy, GatheringPlan, HierConfig, HierPlanner, PlannerConfig, ShdgPlanner,
};
use mobile_collectors::net::{DeploymentConfig, Network};
use mobile_collectors::par;
use std::sync::{Mutex, MutexGuard, OnceLock};

const THREAD_COUNTS: [usize; 2] = [1, 4];
const RANGE: f64 = 30.0;

/// Serializes tests around the process-global scratch/thread overrides.
/// Also honors `MDG_COUNT_ALLOC` (CI's alloc-gate job re-runs this suite
/// under the counting allocator — counting must never change a plan).
fn lock() -> MutexGuard<'static, ()> {
    mobile_collectors::obs::alloc::counting_from_env();
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Restores every global this suite mutates, even when an assert fires.
struct Restore;

impl Drop for Restore {
    fn drop(&mut self) {
        par::scratch::set_poison(false);
        par::scratch::set_enabled(true);
        par::set_threads(0);
    }
}

fn greedy_cfg() -> PlannerConfig {
    PlannerConfig {
        covering: CoveringStrategy::Greedy,
        ..PlannerConfig::default()
    }
}

fn tour_aware_cfg() -> PlannerConfig {
    PlannerConfig {
        covering: CoveringStrategy::TourAware {
            insertion_weight: 1.0,
        },
        ..PlannerConfig::default()
    }
}

fn plan_flat(cfg: &PlannerConfig, net: &Network, threads: usize) -> GatheringPlan {
    par::set_threads(threads);
    ShdgPlanner::with_config(*cfg)
        .plan(net)
        .expect("field is feasible")
}

/// Plans `net` under poison at 1 and 4 threads with arenas on, then again
/// with arenas off, and requires all four plans bit-identical.
fn assert_poison_invariant(cfg: &PlannerConfig, net: &Network, label: &str) -> GatheringPlan {
    let reference = plan_flat(cfg, net, THREAD_COUNTS[0]);
    for &t in &THREAD_COUNTS[1..] {
        let plan = plan_flat(cfg, net, t);
        assert_eq!(
            reference, plan,
            "{label}: poisoned plan at {t} threads differs from single-threaded plan"
        );
    }
    par::scratch::set_enabled(false);
    for &t in &THREAD_COUNTS {
        let plan = plan_flat(cfg, net, t);
        assert_eq!(
            reference, plan,
            "{label}: plan with arenas disabled ({t} threads) differs from the pooled plan"
        );
    }
    par::scratch::set_enabled(true);
    reference
}

#[test]
fn dense_fields_survive_poisoned_reuse() {
    let _g = lock();
    let _restore = Restore;
    par::scratch::set_poison(true);
    // The par_equivalence dense set: 20 seeds × both strategies, all on
    // the DistMatrix + 2-opt/Or-opt path. Running them back-to-back in
    // one process is the point — every plan reuses buffers the previous
    // plan poisoned.
    for seed in 0..20u64 {
        let n = 150 + (seed as usize % 5) * 40;
        let side = 300.0 + (seed as f64 % 3.0) * 100.0;
        let net = Network::build(DeploymentConfig::uniform(n, side).generate(seed), RANGE);
        for (cfg, label) in [(greedy_cfg(), "greedy"), (tour_aware_cfg(), "tour-aware")] {
            let plan = assert_poison_invariant(&cfg, &net, &format!("{label} seed {seed}"));
            plan.validate(&net.deployment.sensors, net.range)
                .expect("plan is valid");
        }
    }
}

#[test]
fn neighbor_list_fields_survive_poisoned_reuse() {
    let _g = lock();
    let _restore = Restore;
    par::scratch::set_poison(true);
    // The par_equivalence sparse set: > 512 stops forces the k-NN build
    // and the neighbor-list 2-opt/Or-opt passes — the heaviest scratch
    // consumers (k-NN rows, move queues, position tables).
    for seed in 100..104u64 {
        let net = Network::build(
            DeploymentConfig::uniform(700, 2_300.0).generate(seed),
            RANGE,
        );
        for (cfg, label) in [(greedy_cfg(), "greedy"), (tour_aware_cfg(), "tour-aware")] {
            let plan = assert_poison_invariant(&cfg, &net, &format!("{label} NL seed {seed}"));
            assert!(
                plan.n_polling_points() > 512,
                "seed {seed}: got {} stops, expected the neighbor-list path",
                plan.n_polling_points()
            );
        }
    }
}

#[test]
fn hier_plans_survive_poisoned_reuse() {
    let _g = lock();
    let _restore = Restore;
    par::scratch::set_poison(true);
    // The hierarchical pipeline pools the most state (tile closures,
    // stitch buffers, assignment tables); 4 seeds under poison, arenas
    // on/off, 1 vs 4 threads.
    for seed in 0..4u64 {
        let n = 400 + (seed as usize) * 200;
        let net = Network::build(DeploymentConfig::uniform(n, 900.0).generate(seed), RANGE);
        let cfg = HierConfig {
            tile_cells: Some(5.0),
            ..HierConfig::default()
        };
        let hier_plan = |threads: usize| -> GatheringPlan {
            par::set_threads(threads);
            HierPlanner::with_config(cfg)
                .plan(&net)
                .expect("field is feasible")
        };
        let reference = hier_plan(1);
        let four = hier_plan(4);
        assert_eq!(
            reference, four,
            "seed {seed}: poisoned hier plan diverged between 1 and 4 threads"
        );
        par::scratch::set_enabled(false);
        let off = hier_plan(4);
        par::scratch::set_enabled(true);
        assert_eq!(
            reference, off,
            "seed {seed}: hier plan with arenas disabled differs from the pooled plan"
        );
        reference
            .validate(&net.deployment.sensors, RANGE)
            .expect("hier plan covers every live sensor");
    }
}
