//! Integration tests for the `mdg` command-line tool, driven through the
//! compiled binary (`CARGO_BIN_EXE_mdg`).

use std::path::PathBuf;
use std::process::{Command, Output};

fn mdg(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mdg"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).to_string()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).to_string()
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mdg_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn plan_prints_metrics_and_writes_a_bundle() {
    let bundle = tmp("bundle.json");
    let out = mdg(&[
        "plan",
        "--n",
        "80",
        "--side",
        "150",
        "--range",
        "30",
        "--seed",
        "7",
        "--out",
        bundle.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("polling points"), "{text}");
    assert!(text.contains("tour"), "{text}");
    let json = std::fs::read_to_string(&bundle).unwrap();
    assert!(json.contains("\"plan\""));
    assert!(json.contains("\"deployment\""));
    assert!(json.contains("\"range\""));
}

#[test]
fn full_pipeline_plan_fleet_simulate_render() {
    let bundle = tmp("pipeline.json");
    let svg = tmp("pipeline.svg");
    assert!(mdg(&[
        "plan",
        "--n",
        "60",
        "--side",
        "150",
        "--range",
        "30",
        "--out",
        bundle.to_str().unwrap(),
    ])
    .status
    .success());

    let fleet = mdg(&["fleet", "--bundle", bundle.to_str().unwrap(), "--k", "3"]);
    assert!(fleet.status.success(), "{}", stderr(&fleet));
    assert!(stdout(&fleet).contains("collector(s)"));

    let sim = mdg(&["simulate", "--bundle", bundle.to_str().unwrap()]);
    assert!(sim.status.success(), "{}", stderr(&sim));
    let sim_out = stdout(&sim);
    assert!(
        sim_out.contains("60/60"),
        "all packets collected: {sim_out}"
    );

    let render = mdg(&[
        "render",
        "--bundle",
        bundle.to_str().unwrap(),
        "--out",
        svg.to_str().unwrap(),
    ]);
    assert!(render.status.success(), "{}", stderr(&render));
    let svg_text = std::fs::read_to_string(&svg).unwrap();
    assert!(svg_text.starts_with("<svg"));
    assert!(svg_text.contains("<circle"));
}

#[test]
fn deadline_fleet_and_lifetime() {
    let bundle = tmp("deadline.json");
    assert!(mdg(&[
        "plan",
        "--n",
        "100",
        "--side",
        "250",
        "--range",
        "30",
        "--out",
        bundle.to_str().unwrap(),
    ])
    .status
    .success());

    let fleet = mdg(&[
        "fleet",
        "--bundle",
        bundle.to_str().unwrap(),
        "--deadline",
        "600",
        "--speed",
        "1",
        "--upload",
        "0.5",
    ]);
    assert!(fleet.status.success(), "{}", stderr(&fleet));

    let life = mdg(&[
        "simulate",
        "--bundle",
        bundle.to_str().unwrap(),
        "--battery",
        "0.01",
    ]);
    assert!(life.status.success(), "{}", stderr(&life));
    assert!(stdout(&life).contains("first death"));
}

#[test]
fn stats_subcommand() {
    let out = mdg(&["stats", "--n", "120", "--side", "200", "--range", "30"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("components"));
    assert!(text.contains("sink reach"));
}

#[test]
fn capacitated_plan_flag() {
    let out = mdg(&[
        "plan", "--n", "100", "--side", "150", "--range", "30", "--cap", "5",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    // Buffer line reports a max/pp within the cap.
    let buffer_line = text.lines().find(|l| l.contains("buffer")).unwrap();
    let max: usize = buffer_line
        .rsplit(' ')
        .next()
        .unwrap()
        .trim()
        .parse()
        .expect("numeric buffer");
    assert!(max <= 5, "{buffer_line}");
}

#[test]
fn errors_are_reported_cleanly() {
    // Missing required flag.
    let out = mdg(&["plan", "--n", "50"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--side"));
    // Unknown subcommand.
    let out = mdg(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown subcommand"));
    // Nonexistent bundle.
    let out = mdg(&["simulate", "--bundle", "/nonexistent/x.json"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot read"));
    // Fleet without k or deadline.
    let bundle = tmp("err.json");
    assert!(mdg(&[
        "plan",
        "--n",
        "20",
        "--side",
        "100",
        "--range",
        "30",
        "--out",
        bundle.to_str().unwrap()
    ])
    .status
    .success());
    let out = mdg(&["fleet", "--bundle", bundle.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--k or --deadline"));
}

#[test]
fn export_ilp_writes_a_model() {
    let lp = tmp("model.lp");
    let out = mdg(&[
        "export-ilp",
        "--n",
        "8",
        "--side",
        "70",
        "--range",
        "25",
        "--out",
        lp.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let model = std::fs::read_to_string(&lp).unwrap();
    assert!(model.contains("Minimize"));
    assert!(model.contains("Binary"));
    assert!(model.trim_end().ends_with("End"));
}

#[test]
fn plans_are_reproducible_across_invocations() {
    let a = stdout(&mdg(&[
        "plan", "--n", "70", "--side", "180", "--range", "30", "--seed", "5",
    ]));
    let b = stdout(&mdg(&[
        "plan", "--n", "70", "--side", "180", "--range", "30", "--seed", "5",
    ]));
    assert_eq!(a, b);
    let c = stdout(&mdg(&[
        "plan", "--n", "70", "--side", "180", "--range", "30", "--seed", "6",
    ]));
    assert_ne!(a, c);
}
