//! Integration tests for the `mdg` command-line tool, driven through the
//! compiled binary (`CARGO_BIN_EXE_mdg`).

use std::path::PathBuf;
use std::process::{Command, Output};

fn mdg(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mdg"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).to_string()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).to_string()
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mdg_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn plan_prints_metrics_and_writes_a_bundle() {
    let bundle = tmp("bundle.json");
    let out = mdg(&[
        "plan",
        "--n",
        "80",
        "--side",
        "150",
        "--range",
        "30",
        "--seed",
        "7",
        "--out",
        bundle.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("polling points"), "{text}");
    assert!(text.contains("tour"), "{text}");
    let json = std::fs::read_to_string(&bundle).unwrap();
    assert!(json.contains("\"plan\""));
    assert!(json.contains("\"deployment\""));
    assert!(json.contains("\"range\""));
}

#[test]
fn full_pipeline_plan_fleet_simulate_render() {
    let bundle = tmp("pipeline.json");
    let svg = tmp("pipeline.svg");
    assert!(mdg(&[
        "plan",
        "--n",
        "60",
        "--side",
        "150",
        "--range",
        "30",
        "--out",
        bundle.to_str().unwrap(),
    ])
    .status
    .success());

    let fleet = mdg(&["fleet", "--bundle", bundle.to_str().unwrap(), "--k", "3"]);
    assert!(fleet.status.success(), "{}", stderr(&fleet));
    assert!(stdout(&fleet).contains("collector(s)"));

    let sim = mdg(&["simulate", "--bundle", bundle.to_str().unwrap()]);
    assert!(sim.status.success(), "{}", stderr(&sim));
    let sim_out = stdout(&sim);
    assert!(
        sim_out.contains("60/60"),
        "all packets collected: {sim_out}"
    );

    let render = mdg(&[
        "render",
        "--bundle",
        bundle.to_str().unwrap(),
        "--out",
        svg.to_str().unwrap(),
    ]);
    assert!(render.status.success(), "{}", stderr(&render));
    let svg_text = std::fs::read_to_string(&svg).unwrap();
    assert!(svg_text.starts_with("<svg"));
    assert!(svg_text.contains("<circle"));
}

#[test]
fn deadline_fleet_and_lifetime() {
    let bundle = tmp("deadline.json");
    assert!(mdg(&[
        "plan",
        "--n",
        "100",
        "--side",
        "250",
        "--range",
        "30",
        "--out",
        bundle.to_str().unwrap(),
    ])
    .status
    .success());

    let fleet = mdg(&[
        "fleet",
        "--bundle",
        bundle.to_str().unwrap(),
        "--deadline",
        "600",
        "--speed",
        "1",
        "--upload",
        "0.5",
    ]);
    assert!(fleet.status.success(), "{}", stderr(&fleet));

    let life = mdg(&[
        "simulate",
        "--bundle",
        bundle.to_str().unwrap(),
        "--battery",
        "0.01",
    ]);
    assert!(life.status.success(), "{}", stderr(&life));
    assert!(stdout(&life).contains("first death"));
}

#[test]
fn stats_subcommand() {
    let out = mdg(&["stats", "--n", "120", "--side", "200", "--range", "30"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("components"));
    assert!(text.contains("sink reach"));
}

#[test]
fn capacitated_plan_flag() {
    let out = mdg(&[
        "plan", "--n", "100", "--side", "150", "--range", "30", "--cap", "5",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    // Buffer line reports a max/pp within the cap.
    let buffer_line = text.lines().find(|l| l.contains("buffer")).unwrap();
    let max: usize = buffer_line
        .rsplit(' ')
        .next()
        .unwrap()
        .trim()
        .parse()
        .expect("numeric buffer");
    assert!(max <= 5, "{buffer_line}");
}

#[test]
fn plan_auto_selects_hier_above_the_threshold() {
    // Above the (lowered) threshold the planner goes hierarchical on its
    // own, says so on stderr, and reports tiling stats on stdout.
    let auto = mdg(&[
        "plan",
        "--n",
        "300",
        "--side",
        "300",
        "--range",
        "30",
        "--hier-threshold",
        "200",
    ]);
    assert!(auto.status.success(), "{}", stderr(&auto));
    assert!(
        stderr(&auto).contains("planning hierarchically"),
        "{}",
        stderr(&auto)
    );
    assert!(stdout(&auto).contains("tiles"), "{}", stdout(&auto));

    // --no-hier opts out at any size.
    let flat = mdg(&[
        "plan",
        "--n",
        "300",
        "--side",
        "300",
        "--range",
        "30",
        "--hier-threshold",
        "200",
        "--no-hier",
    ]);
    assert!(flat.status.success(), "{}", stderr(&flat));
    assert!(!stderr(&flat).contains("planning hierarchically"));
    assert!(!stdout(&flat).contains("tiles"), "{}", stdout(&flat));

    // Below the threshold nothing changes.
    let small = mdg(&["plan", "--n", "80", "--side", "150", "--range", "30"]);
    assert!(small.status.success());
    assert!(!stdout(&small).contains("tiles"));

    // The two forcing flags cannot be combined.
    let both = mdg(&[
        "plan",
        "--n",
        "80",
        "--side",
        "150",
        "--range",
        "30",
        "--hier",
        "--no-hier",
    ]);
    assert!(!both.status.success());
    assert!(stderr(&both).contains("mutually exclusive"));
}

#[test]
fn errors_are_reported_cleanly() {
    // Missing required flag.
    let out = mdg(&["plan", "--n", "50"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--side"));
    // Unknown subcommand.
    let out = mdg(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown subcommand"));
    // Nonexistent bundle.
    let out = mdg(&["simulate", "--bundle", "/nonexistent/x.json"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot read"));
    // Fleet without k or deadline.
    let bundle = tmp("err.json");
    assert!(mdg(&[
        "plan",
        "--n",
        "20",
        "--side",
        "100",
        "--range",
        "30",
        "--out",
        bundle.to_str().unwrap()
    ])
    .status
    .success());
    let out = mdg(&["fleet", "--bundle", bundle.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--k or --deadline"));
}

#[test]
fn export_ilp_writes_a_model() {
    let lp = tmp("model.lp");
    let out = mdg(&[
        "export-ilp",
        "--n",
        "8",
        "--side",
        "70",
        "--range",
        "25",
        "--out",
        lp.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let model = std::fs::read_to_string(&lp).unwrap();
    assert!(model.contains("Minimize"));
    assert!(model.contains("Binary"));
    assert!(model.trim_end().ends_with("End"));
}

#[test]
fn plans_are_reproducible_across_invocations() {
    let a = stdout(&mdg(&[
        "plan", "--n", "70", "--side", "180", "--range", "30", "--seed", "5",
    ]));
    let b = stdout(&mdg(&[
        "plan", "--n", "70", "--side", "180", "--range", "30", "--seed", "5",
    ]));
    assert_eq!(a, b);
    let c = stdout(&mdg(&[
        "plan", "--n", "70", "--side", "180", "--range", "30", "--seed", "6",
    ]));
    assert_ne!(a, c);
}

#[test]
fn threads_clamp_emits_a_warning_with_requested_and_effective() {
    let out = mdg(&[
        "plan",
        "--n",
        "30",
        "--side",
        "100",
        "--range",
        "30",
        "--threads",
        "9999",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(
        err.contains("warning") && err.contains("9999") && err.contains("128"),
        "clamp warning must name requested and effective counts: {err}"
    );
    assert!(err.contains("(128 threads)"), "{err}");
    // An in-range request stays silent.
    let ok = mdg(&[
        "plan",
        "--n",
        "30",
        "--side",
        "100",
        "--range",
        "30",
        "--threads",
        "2",
    ]);
    assert!(ok.status.success());
    assert!(!stderr(&ok).contains("warning"), "{}", stderr(&ok));
}

#[test]
fn plan_profile_prints_a_phase_tree_on_stderr() {
    let out = mdg(&[
        "plan",
        "--n",
        "200",
        "--side",
        "200",
        "--range",
        "30",
        "--profile",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let err = stderr(&out);
    for phase in ["plan", "cover", "tour", "assign"] {
        assert!(err.contains(phase), "missing phase `{phase}` in: {err}");
    }
    // Profiling must not leak into the deterministic stdout report.
    let plain = mdg(&["plan", "--n", "200", "--side", "200", "--range", "30"]);
    assert_eq!(stdout(&out), stdout(&plain), "profiling changed stdout");
}

#[test]
fn plan_count_allocs_annotates_timing_without_changing_stdout() {
    let counted = mdg(&[
        "plan",
        "--n",
        "150",
        "--side",
        "200",
        "--range",
        "30",
        "--count-allocs",
    ]);
    assert!(counted.status.success(), "{}", stderr(&counted));
    let err = stderr(&counted);
    let timing = err
        .lines()
        .find(|l| l.contains("planning time"))
        .unwrap_or_else(|| panic!("no timing line in: {err}"));
    assert!(
        timing.contains("alloc=") && timing.contains("MiB"),
        "timing line must carry the alloc tally: {timing}"
    );

    // Counting must not leak into the deterministic stdout report, and a
    // plain run's timing line must stay alloc-free.
    let plain = mdg(&["plan", "--n", "150", "--side", "200", "--range", "30"]);
    assert!(plain.status.success());
    assert_eq!(stdout(&counted), stdout(&plain), "counting changed stdout");
    assert!(
        !stderr(&plain).contains("alloc="),
        "plain run must not report allocs: {}",
        stderr(&plain)
    );

    // The MDG_COUNT_ALLOC env var reaches the same switch (CI uses it).
    let via_env = Command::new(env!("CARGO_BIN_EXE_mdg"))
        .args(["plan", "--n", "150", "--side", "200", "--range", "30"])
        .env("MDG_COUNT_ALLOC", "1")
        .output()
        .expect("binary runs");
    assert!(via_env.status.success());
    assert!(stderr(&via_env).contains("alloc="), "{}", stderr(&via_env));
}

#[test]
fn plan_profile_json_writes_parseable_jsonl() {
    let path = tmp("profile.jsonl");
    let out = mdg(&[
        "plan",
        "--n",
        "150",
        "--side",
        "200",
        "--range",
        "30",
        "--profile-json",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(!text.is_empty());
    let mut saw_span = false;
    for line in text.lines() {
        let v = serde_json::parse_value(line).expect("every line parses");
        let kind = match v.get("kind") {
            Some(serde::Value::Str(s)) => s.clone(),
            other => panic!("missing kind field: {other:?}"),
        };
        assert!(
            matches!(kind.as_str(), "span" | "counter" | "hist"),
            "{kind}"
        );
        assert!(v.get("path").is_some(), "{line}");
        saw_span |= kind == "span";
    }
    assert!(saw_span, "profile must contain span records");
}

#[test]
fn profile_json_without_a_path_is_an_error() {
    let out = mdg(&[
        "plan",
        "--n",
        "20",
        "--side",
        "100",
        "--range",
        "30",
        "--profile-json",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--profile-json needs a file path"));
}

#[test]
fn runtime_profile_covers_repair_and_sim_phases() {
    let out = mdg(&[
        "runtime",
        "--n",
        "80",
        "--side",
        "200",
        "--range",
        "30",
        "--rounds",
        "5",
        "--deaths",
        "0.2",
        "--profile",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let err = stderr(&out);
    for phase in ["runtime", "round", "repair", "sim_round"] {
        assert!(err.contains(phase), "missing phase `{phase}` in: {err}");
    }
}

/// Full daemon round trip through the binary: start `serve --listen` on an
/// ephemeral port, drive plan → delta → metrics → shutdown with `serve
/// --connect` one-shots, and check the daemon exits cleanly.
#[test]
fn serve_daemon_round_trip_over_a_socket() {
    use std::io::BufRead;
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_mdg"))
        .args(["serve", "--listen", "127.0.0.1:0"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("daemon starts");
    let mut first_line = String::new();
    std::io::BufReader::new(daemon.stdout.take().expect("stdout piped"))
        .read_line(&mut first_line)
        .expect("daemon prints its address");
    let addr = first_line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {first_line}"))
        .to_string();

    let one_shot = |request: &str| -> (Output, String) {
        let out = mdg(&["serve", "--connect", &addr, "--request", request]);
        let text = stdout(&out);
        (out, text)
    };

    let (out, text) =
        one_shot(r#"{"cmd":"plan","field":"cli","n":200,"side":200,"range":30,"seed":5}"#);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(text.contains("\"mode\":\"cold\""), "{text}");

    let (out, text) = one_shot(r#"{"cmd":"delta","field":"cli","died":[0,1,2]}"#);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(text.contains("\"generation\":1"), "{text}");

    let (out, text) = one_shot(r#"{"cmd":"metrics"}"#);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(text.contains("\"sessions\""), "{text}");
    assert!(text.contains("\"cli\""), "{text}");

    // A malformed request errors without killing the daemon (exit 1 from
    // the client, but the daemon must still answer afterwards).
    let (out, text) = one_shot("{not json");
    assert!(!out.status.success());
    assert!(text.contains("bad_json"), "{text}");

    let (out, text) = one_shot(r#"{"cmd":"shutdown"}"#);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(text.contains("\"draining\":true"), "{text}");

    let status = daemon.wait().expect("daemon exits");
    assert!(status.success(), "daemon must drain cleanly: {status:?}");
}
