//! Cross-thread-count equivalence suite for the `mdg-par` layer.
//!
//! The hard invariant of the parallel planner: **plans are bit-identical
//! at any thread count**. Parallel stages only compute; every selection
//! and tie-break stays in a deterministic sequential reducer. This suite
//! re-plans the same fields at 1, 2 and 8 worker threads and requires
//! `GatheringPlan` equality (derived `PartialEq` — exact f64 comparison,
//! no tolerances) across:
//!
//! * both covering strategies (`Greedy` and `TourAware`),
//! * both tour-improvement paths (dense 2-opt/Or-opt below the planner's
//!   512-stop limit, neighbor-list passes above it),
//! * ≥ 20 random fields.
//!
//! Thread counts are driven through `mdg_par::set_threads`, which is
//! process-global — every test that touches it serializes on [`lock`].
//!
//! The scratch-arena variant of this invariant — the same field set
//! re-planned under pool poisoning, arenas on vs off — lives in
//! `tests/scratch_poison.rs`.

use mobile_collectors::core::{CoveringStrategy, GatheringPlan, PlannerConfig, ShdgPlanner};
use mobile_collectors::net::{DeploymentConfig, Network};
use mobile_collectors::par;
use std::sync::{Mutex, MutexGuard, OnceLock};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Serializes tests around the process-global thread-count override.
/// Also honors `MDG_COUNT_ALLOC` (CI's alloc-gate job re-runs this suite
/// under the counting allocator — counting must never change a plan).
fn lock() -> MutexGuard<'static, ()> {
    mobile_collectors::obs::alloc::counting_from_env();
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn plan_with(cfg: &PlannerConfig, net: &Network, threads: usize) -> GatheringPlan {
    par::set_threads(threads);
    let plan = ShdgPlanner::with_config(*cfg)
        .plan(net)
        .expect("field is feasible");
    par::set_threads(0);
    plan
}

/// Plans `net` at every thread count and asserts all plans are identical
/// to the single-thread one. Returns the reference plan.
fn assert_thread_count_invariant(cfg: &PlannerConfig, net: &Network, label: &str) -> GatheringPlan {
    let reference = plan_with(cfg, net, THREAD_COUNTS[0]);
    for &t in &THREAD_COUNTS[1..] {
        let plan = plan_with(cfg, net, t);
        assert_eq!(
            reference, plan,
            "{label}: plan at {t} threads differs from single-threaded plan"
        );
    }
    reference
}

fn greedy_cfg() -> PlannerConfig {
    PlannerConfig {
        covering: CoveringStrategy::Greedy,
        ..PlannerConfig::default()
    }
}

fn tour_aware_cfg() -> PlannerConfig {
    PlannerConfig {
        covering: CoveringStrategy::TourAware {
            insertion_weight: 1.0,
        },
        ..PlannerConfig::default()
    }
}

#[test]
fn dense_path_bit_identical_across_thread_counts() {
    let _g = lock();
    // Small dense fields: few polling points, so the planner takes the
    // dense DistMatrix + 2-opt/Or-opt path (≤ 512 stops). 20 seeds × both
    // strategies.
    for seed in 0..20u64 {
        let n = 150 + (seed as usize % 5) * 40;
        let side = 300.0 + (seed as f64 % 3.0) * 100.0;
        let net = Network::build(DeploymentConfig::uniform(n, side).generate(seed), 30.0);
        for (cfg, label) in [(greedy_cfg(), "greedy"), (tour_aware_cfg(), "tour-aware")] {
            let plan = assert_thread_count_invariant(&cfg, &net, &format!("{label} seed {seed}"));
            assert!(
                plan.n_polling_points() <= 512,
                "seed {seed}: expected the dense tour path"
            );
            plan.validate(&net.deployment.sensors, net.range)
                .expect("plan is valid");
        }
    }
}

#[test]
fn neighbor_list_path_bit_identical_across_thread_counts() {
    let _g = lock();
    // Sparse fields: enough polling points to exceed the planner's
    // 512-stop dense limit, forcing cheapest insertion + neighbor-list
    // improvement. 4 seeds × both strategies (each plan runs 6× here, so
    // the fields are kept moderate).
    for seed in 100..104u64 {
        let net = Network::build(DeploymentConfig::uniform(700, 2_300.0).generate(seed), 30.0);
        for (cfg, label) in [(greedy_cfg(), "greedy"), (tour_aware_cfg(), "tour-aware")] {
            let plan =
                assert_thread_count_invariant(&cfg, &net, &format!("{label} NL seed {seed}"));
            assert!(
                plan.n_polling_points() > 512,
                "seed {seed}: got {} stops, expected the neighbor-list path",
                plan.n_polling_points()
            );
        }
    }
}

#[test]
fn dense_improve_parallel_branch_matches_sequential() {
    use mobile_collectors::geom::Point;
    use mobile_collectors::tour::{improve, EuclideanCost, ImproveConfig, Tour};
    let _g = lock();
    // Drive `improve` directly at n ≥ 600 so the candidate scans exceed
    // the parallel gate even near the end of the tour, with EuclideanCost
    // (the generic path the planner uses above the dense matrix limit in
    // repair code). The improved tour must be identical at every thread
    // count.
    let mut state = 0xD1CEu64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64 * 1_000.0
    };
    let pts: Vec<Point> = (0..600).map(|_| Point::new(next(), next())).collect();
    let cost = EuclideanCost::new(&pts);
    let cfg = ImproveConfig {
        max_passes: 2,
        ..ImproveConfig::default()
    };
    par::set_threads(1);
    let reference = improve(&cost, Tour::identity(600), &cfg);
    for &t in &THREAD_COUNTS[1..] {
        par::set_threads(t);
        let tour = improve(&cost, Tour::identity(600), &cfg);
        assert_eq!(
            reference.order(),
            tour.order(),
            "dense improve diverged at {t} threads"
        );
    }
    par::set_threads(0);
}

#[test]
fn env_thread_override_is_respected() {
    let _g = lock();
    // `set_threads` beats the environment; 0 restores auto.
    par::set_threads(3);
    assert_eq!(par::threads(), 3);
    par::set_threads(1);
    assert_eq!(par::threads(), 1);
    par::set_threads(0);
    assert!(par::threads() >= 1);
}
