//! Offline stand-in for `proptest`.
//!
//! A miniature property-testing engine with the API surface this
//! workspace uses: [`Strategy`] (ranges, tuples, `prop_map`,
//! `prop_flat_map`, [`Just`], [`any`], `collection::vec`), the
//! [`proptest!`] macro with optional `#![proptest_config(..)]`, and
//! `prop_assert!`/`prop_assert_eq!`. Cases are sampled from a seeded
//! deterministic RNG (seed = FNV of test name ⊕ case index), so failures
//! reproduce exactly; there is **no shrinking** — the failing inputs are
//! printed instead.

use rand::{Rng, SeedableRng};

pub use rand::rngs::StdRng as TestRng;

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps the suite fast while
        // still exercising a spread of inputs per property.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (returned by the `prop_assert*` macros).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A recipe for generating values of `Self::Value` from a seeded RNG.
pub trait Strategy: Clone {
    type Value: std::fmt::Debug;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: std::fmt::Debug, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Chains generation: `f` builds a second strategy from each value.
    fn prop_flat_map<S2: Strategy, F>(self, f: F) -> FlatMap<Self, F>
    where
        F: Fn(Self::Value) -> S2 + Clone,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (parity with real proptest signatures).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(std::rc::Rc::new(move |rng| self.sample(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F> Strategy for Map<S, F>
where
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F> Strategy for FlatMap<S, F>
where
    F: Fn(S::Value) -> S2 + Clone,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Full-domain strategy for primitive types (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-domain distribution.
pub trait Arbitrary: std::fmt::Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                <u64 as rand::Standard>::standard(rng) as Self
            }
        }
    )*};
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::Standard::standard(rng)
    }
}

impl_arbitrary_int!(u8, u16, u32, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::Standard::standard(rng)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, broad range (full-bit-pattern doubles make almost every
        // numeric property vacuous).
        rng.gen_range(-1e12..1e12)
    }
}

pub mod collection {
    use super::*;

    /// `vec(element, len_range)` — a vector whose length is sampled from
    /// `len_range` and whose elements come from `element`.
    pub fn vec<S: Strategy, L: Into<SizeRange>>(element: S, len: L) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    /// A length specification (`usize`, `a..b`, or `a..=b`).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        pub min: usize,
        pub max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.min..=self.len.max_inclusive);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Derives the base RNG seed for a named property (FNV-1a of the name, so
/// seeds are stable across runs, platforms and compilers).
pub fn seed_for(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs one property body over `cases` sampled inputs. Used by the
/// [`proptest!`] macro; callable directly for programmatic properties.
pub fn run_cases<F>(test_name: &str, config: &ProptestConfig, mut case_fn: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    for case in 0..config.cases {
        let mut rng = TestRng::seed_from_u64(seed_for(test_name, case));
        if let Err(e) = case_fn(&mut rng) {
            panic!("property `{test_name}` failed on case {case}: {e}");
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), &config, |__rng| {
                let mut __case_desc = ::std::string::String::new();
                $(
                    let __sample = $crate::Strategy::sample(&($strat), __rng);
                    __case_desc.push_str(&format!(
                        concat!(stringify!($arg), " = {:?}, "),
                        &__sample
                    ));
                    let $arg = __sample;
                )*
                let run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                run().map_err(|e| $crate::TestCaseError::fail(
                    format!("{e}\n  inputs: {}", __case_desc)
                ))
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                left,
                right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`, both {:?}",
                stringify!($a),
                stringify!($b),
                left
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_sample_in_bounds(x in 0usize..10, y in -1.0..1.0f64) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn maps_and_tuples_compose(p in (0u32..5, 0u32..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(p <= 8);
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<bool>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(
            crate::seed_for("some_test", 3),
            crate::seed_for("some_test", 3)
        );
        assert_ne!(
            crate::seed_for("some_test", 3),
            crate::seed_for("some_test", 4)
        );
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failing_property_panics_with_inputs() {
        crate::run_cases("always_fails", &ProptestConfig::with_cases(1), |_rng| {
            Err(crate::TestCaseError::fail("nope"))
        });
    }
}
