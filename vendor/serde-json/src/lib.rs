//! Offline stand-in for `serde_json`.
//!
//! Serializes the vendored [`serde::Value`] model to standard JSON text
//! and parses JSON text back, with `to_string` / `to_string_pretty` /
//! `to_writer` / `from_str` entry points mirroring the real crate.

pub use serde::{Error, Value};

/// Serializes `value` as compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` as compact JSON into an [`std::io::Write`].
pub fn to_writer<W: std::io::Write, T: serde::Serialize>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::new(format!("io error: {e}")))
}

/// Parses a value from JSON text.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(out, items.iter(), indent, depth, '[', ']', |o, x, d| {
            write_value(o, x, indent, d)
        }),
        Value::Obj(fields) => write_seq(
            out,
            fields.iter(),
            indent,
            depth,
            '{',
            '}',
            |o, (k, x), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, x, indent, d);
            },
        ),
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no Inf/NaN; mirror serde_json's lossy `null`.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Integral doubles render with a trailing `.0` so they re-parse as
        // floats, matching serde_json's behavior.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq<I, T>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, T, usize),
) where
    I: ExactSizeIterator<Item = T>,
{
    out.push(open);
    let n = items.len();
    if n == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a single JSON document (trailing whitespace allowed).
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                if self.eat_lit("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("bad literal at byte {}", self.pos)))
                }
            }
            b't' => {
                if self.eat_lit("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("bad literal at byte {}", self.pos)))
                }
            }
            b'f' => {
                if self.eat_lit("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("bad literal at byte {}", self.pos)))
                }
            }
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `]`, got `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    let val = self.value()?;
                    fields.push((key, val));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}`, got `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // workspace's writers; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-sync to char boundaries for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() {
            return Err(Error::new(format!("expected a value at byte {start}")));
        }
        let is_float = text.contains(['.', 'e', 'E']);
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Arr(vec![Value::U64(1), Value::F64(2.5)])),
            ("b".into(), Value::Str("x\"y\n".into())),
            ("c".into(), Value::Bool(true)),
            ("d".into(), Value::Null),
            ("e".into(), Value::I64(-3)),
        ]);
        let compact = {
            let mut s = String::new();
            write_value(&mut s, &v, None, 0);
            s
        };
        assert_eq!(parse_value(&compact).unwrap(), v);
        let pretty = {
            let mut s = String::new();
            write_value(&mut s, &v, Some(2), 0);
            s
        };
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for f in [0.0, 1.0, -1.5, 1e-9, 123456.789012345, 1e20] {
            let mut s = String::new();
            write_value(&mut s, &Value::F64(f), None, 0);
            let back = parse_value(&s).unwrap().as_f64().unwrap();
            assert_eq!(back, f, "{s}");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("{\"a\":}").is_err());
    }
}
