//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the Criterion API the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`)
//! with a simple measurement loop: a short warmup, then timed batches,
//! reporting mean and best ns/iter to stdout. No statistical analysis,
//! HTML reports, or saved baselines.

use std::time::{Duration, Instant};

/// Top-level bench driver.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(600),
            warm_up_time: Duration::from_millis(150),
        }
    }
}

impl Criterion {
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { c: self, name }
    }

    /// Benches a single function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(self, &id.label(), &mut f);
        self
    }
}

/// A named collection of benchmarks sharing the parent driver's settings.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.c.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label());
        run_bench(self.c, &label, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label());
        run_bench(self.c, &label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark (optionally parameterized).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Passed to bench closures; [`Bencher::iter`] runs the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(c: &Criterion, label: &str, f: &mut F) {
    // Warmup: grow the iteration count until the warmup budget is spent.
    let mut iters: u64 = 1;
    let warm_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if warm_start.elapsed() >= c.warm_up_time {
            break;
        }
        iters = (iters * 2).min(1 << 30);
    }
    // Measurement: repeated batches at the settled iteration count.
    let mut best = f64::INFINITY;
    let mut total_ns = 0.0;
    let mut total_iters = 0u64;
    let measure_start = Instant::now();
    let mut batches = 0u32;
    while batches < 3 || (measure_start.elapsed() < c.measurement_time && batches < 100) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let ns = b.elapsed.as_nanos() as f64;
        best = best.min(ns / iters as f64);
        total_ns += ns;
        total_iters += iters;
        batches += 1;
    }
    let mean = total_ns / total_iters as f64;
    println!(
        "bench {label:<50} mean {} best {}",
        fmt_ns(mean),
        fmt_ns(best)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:8.3} s ", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:8.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:8.3} µs", ns / 1e3)
    } else {
        format!("{ns:8.1} ns")
    }
}

/// Opaque value sink preventing the optimizer from deleting the workload.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
