//! Derive macros for the vendored serde stand-in.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the input
//! token stream is walked by hand and the impl is emitted as a string.
//! Supported shapes — which cover every derive in this workspace:
//!
//! * non-generic structs with named fields (and unit structs),
//! * non-generic enums with unit, tuple and struct variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

enum Shape {
    /// Named-field struct (empty = unit struct).
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with the given arity.
    Tuple(usize),
    /// Struct variant with named fields.
    Struct(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Skips `#[...]` attribute pairs and `pub`/`pub(...)` visibility at
/// position `i`, returning the next meaningful index.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // `#` + the bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Splits a token slice on commas that sit outside any `<...>` nesting
/// (delimiter groups are single tokens already, so only angle brackets
/// need explicit depth tracking).
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if !current.is_empty() {
                        out.push(std::mem::take(&mut current));
                    }
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Extracts the field names of a named-field body.
fn parse_named_fields(group_tokens: &[TokenTree]) -> Vec<String> {
    split_top_level_commas(group_tokens)
        .iter()
        .map(|chunk| {
            let i = skip_attrs_and_vis(chunk, 0);
            match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected field name, got {other:?}"),
            }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic type `{name}`");
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    parse_named_fields(&inner)
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Vec::new(),
                other => panic!("unsupported struct body for `{name}`: {other:?}"),
            };
            Item {
                name,
                shape: Shape::Struct(fields),
            }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for `{name}`, got {other:?}"),
            };
            let body_tokens: Vec<TokenTree> = body.into_iter().collect();
            let variants = split_top_level_commas(&body_tokens)
                .iter()
                .map(|chunk| {
                    let j = skip_attrs_and_vis(chunk, 0);
                    let vname = match chunk.get(j) {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        other => panic!("expected variant name, got {other:?}"),
                    };
                    let kind = match chunk.get(j + 1) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            VariantKind::Tuple(split_top_level_commas(&inner).len())
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            VariantKind::Struct(parse_named_fields(&inner))
                        }
                        _ => VariantKind::Unit,
                    };
                    Variant { name: vname, kind }
                })
                .collect();
            Item {
                name,
                shape: Shape::Enum(variants),
            }
        }
        other => panic!("cannot derive on `{other}`"),
    }
}

fn obj_literal(entries: &[(String, String)]) -> String {
    let fields: Vec<String> = entries
        .iter()
        .map(|(k, expr)| format!("({k:?}.to_string(), {expr})"))
        .collect();
    format!("::serde::Value::Obj(vec![{}])", fields.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let entries: Vec<(String, String)> = fields
                .iter()
                .map(|f| {
                    (
                        f.clone(),
                        format!("::serde::Serialize::to_value(&self.{f})"),
                    )
                })
                .collect();
            obj_literal(&entries)
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Obj(vec![({vn:?}.to_string(), \
                             ::serde::Serialize::to_value(x0))]),"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> = (0..*arity).map(|k| format!("x{k}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Obj(vec![({vn:?}.to_string(), \
                                 ::serde::Value::Arr(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let entries: Vec<(String, String)> = fields
                                .iter()
                                .map(|f| (f.clone(), format!("::serde::Serialize::to_value({f})")))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Obj(vec![({vn:?}.to_string(), {})]),",
                                fields.join(", "),
                                obj_literal(&entries)
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, unreachable_patterns, clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.get({f:?})\
                         .unwrap_or(&::serde::Value::Null))?,"
                    )
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join("\n"))
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantKind::Tuple(arity) => {
                            let items: Vec<String> = (0..*arity)
                                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => match inner {{\n\
                                 ::serde::Value::Arr(items) if items.len() == {arity} => \
                                 Ok({name}::{vn}({})),\n\
                                 other => Err(::serde::Error::new(format!(\
                                 \"variant {name}::{vn} wants a {arity}-element array, got {{other:?}}\"))),\n\
                                 }},",
                                items.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(inner.get({f:?})\
                                         .unwrap_or(&::serde::Value::Null))?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => Ok({name}::{vn} {{ {} }}),",
                                inits.join("\n")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit}\n\
                 other => Err(::serde::Error::new(format!(\
                 \"unknown {name} variant `{{other}}`\"))),\n\
                 }},\n\
                 ::serde::Value::Obj(fields) if fields.len() == 1 => {{\n\
                 let (tag, inner) = &fields[0];\n\
                 match tag.as_str() {{\n\
                 {tagged}\n\
                 other => Err(::serde::Error::new(format!(\
                 \"unknown {name} variant `{{other}}`\"))),\n\
                 }}\n\
                 }},\n\
                 other => Err(::serde::Error::new(format!(\
                 \"expected {name} variant, got {{other:?}}\"))),\n\
                 }}",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, unreachable_patterns, clippy::all)]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
