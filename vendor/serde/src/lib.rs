//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! supplies the subset of serde the workspace needs: `#[derive(Serialize,
//! Deserialize)]` plus the two traits, modeled as conversions to and from
//! an owned JSON-like [`Value`]. The vendored `serde_json` crate renders
//! and parses [`Value`] as standard JSON text using serde's conventions
//! (structs as objects, unit enum variants as strings, data-carrying
//! variants as single-key objects).

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like document value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Unsigned integers keep full 64-bit precision (e.g. RNG seeds).
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Insertion-ordered object (field order is stable for determinism).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Best-effort numeric view of the value.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(u) => Some(u as f64),
            Value::I64(i) => Some(i as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error(format!("expected {expected}, got {got:?}")))
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => type_err("bool", v),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = match *v {
                    Value::U64(u) => u,
                    Value::I64(i) if i >= 0 => i as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => f as u64,
                    _ => return type_err("unsigned integer", v),
                };
                <$t>::try_from(u).map_err(|_| Error(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = match *v {
                    Value::I64(i) => i,
                    Value::U64(u) if u <= i64::MAX as u64 => u as i64,
                    Value::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => f as i64,
                    _ => return type_err("integer", v),
                };
                <$t>::try_from(i).map_err(|_| Error(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => type_err("string", v),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => type_err("array", v),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Arr(items) => {
                        let expect = [$(stringify!($idx)),+].len();
                        if items.len() != expect {
                            return Err(Error(format!("expected {expect}-tuple, got {} items", items.len())));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => type_err("tuple array", v),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
