//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) subset of the real `rand` 0.8 API that the
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] / [`Rng::gen_bool`] / [`Rng::gen`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64. Streams are
//! deterministic and stable across runs and platforms for a given seed —
//! the property every experiment and test in this workspace relies on —
//! but they intentionally do **not** match the upstream `StdRng` (ChaCha12)
//! byte-for-byte.

pub mod rngs {
    pub use crate::StdRng;
}

/// Core of the generator: a raw 64-bit output stream.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is used in
/// this workspace).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable without parameters (`rng.gen::<T>()`).
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Maps raw bits to `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let x = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Floating-point rounding can land exactly on `end`; clamp back
        // inside the half-open interval.
        if x >= self.end {
            self.start.max(prev_down(self.end))
        } else {
            x
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty f64 range");
        a + (b - a) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        (std::ops::Range {
            start: self.start as f64,
            end: self.end as f64,
        })
        .sample_from(rng) as f32
    }
}

/// Largest float strictly below `x` (for clamping half-open ranges).
fn prev_down(x: f64) -> f64 {
    f64::from_bits(x.to_bits() - 1)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty integer range");
                let span = (b as i128 - a as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (a as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The workspace's standard generator: xoshiro256++.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0..7.0);
            assert!((-3.0..7.0).contains(&x));
            let y: f64 = rng.gen_range(0.5..=0.5);
            assert_eq!(y, 0.5);
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_hit_ends() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let x = rng.gen_range(0usize..5);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bins hit: {seen:?}");
        for _ in 0..100 {
            let x = rng.gen_range(-2i32..=2);
            assert!((-2..=2).contains(&x));
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1500..3500).contains(&hits), "got {hits}");
    }
}
