//! Analytic metrics of the multi-hop static-sink routing baseline.
//!
//! The round-level *simulation* of this scheme lives in
//! [`mdg_sim::MultihopRoutingSim`]; this module computes the closed-form
//! per-round quantities the tables report (hop counts, transmissions,
//! reachability) directly from the min-hop tree.

use mdg_net::{bfs_tree, Network, UNREACHABLE};
use serde::{Deserialize, Serialize};

/// Structural metrics of min-hop routing to the sink with all sensors
/// alive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultihopMetrics {
    /// Sensors with a route to the sink.
    pub reachable: usize,
    /// Sensors with no route (disconnected from the sink).
    pub unreachable: usize,
    /// Mean hop count over reachable sensors.
    pub mean_hops: f64,
    /// Maximum hop count (tree depth).
    pub max_hops: u32,
    /// Total transmissions for one packet from every reachable sensor
    /// (= Σ hops): the paper's "number of transmissions per round".
    pub transmissions_per_round: u64,
}

impl MultihopMetrics {
    /// Computes the metrics for `net`.
    pub fn of(net: &Network) -> MultihopMetrics {
        let tree = bfs_tree(&net.full_graph, net.sink_node());
        let mut reachable = 0usize;
        let mut unreachable = 0usize;
        let mut total_hops = 0u64;
        for s in 0..net.n_sensors() {
            match tree.hops[s] {
                UNREACHABLE => unreachable += 1,
                h => {
                    reachable += 1;
                    total_hops += h as u64;
                }
            }
        }
        MultihopMetrics {
            reachable,
            unreachable,
            mean_hops: if reachable == 0 {
                0.0
            } else {
                total_hops as f64 / reachable as f64
            },
            max_hops: (0..net.n_sensors())
                .filter_map(|s| (tree.hops[s] != UNREACHABLE).then_some(tree.hops[s]))
                .max()
                .unwrap_or(0),
            transmissions_per_round: total_hops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdg_geom::Point;
    use mdg_net::{Deployment, DeploymentConfig};
    use mdg_sim::{MultihopRoutingSim, SimConfig};

    fn chain() -> Network {
        let dep = Deployment {
            sensors: vec![
                Point::new(10.0, 0.0),
                Point::new(20.0, 0.0),
                Point::new(30.0, 0.0),
                Point::new(300.0, 0.0), // disconnected
            ],
            sink: Point::ORIGIN,
            field: mdg_geom::Aabb::square(400.0),
        };
        Network::build(dep, 12.0)
    }

    #[test]
    fn chain_metrics() {
        let m = MultihopMetrics::of(&chain());
        assert_eq!(m.reachable, 3);
        assert_eq!(m.unreachable, 1);
        assert!((m.mean_hops - 2.0).abs() < 1e-12);
        assert_eq!(m.max_hops, 3);
        assert_eq!(m.transmissions_per_round, 6);
    }

    #[test]
    fn metrics_agree_with_simulation() {
        let net = Network::build(DeploymentConfig::uniform(120, 200.0).generate(5), 35.0);
        let m = MultihopMetrics::of(&net);
        let sim = MultihopRoutingSim::new(&net, SimConfig::default());
        let r = sim.run();
        assert_eq!(m.reachable, r.packets_delivered);
        assert_eq!(m.transmissions_per_round, r.ledger.total_tx());
        assert!((sim.mean_hops() - m.mean_hops).abs() < 1e-9);
    }

    #[test]
    fn empty_network_metrics() {
        let dep = Deployment {
            sensors: vec![],
            sink: Point::ORIGIN,
            field: mdg_geom::Aabb::square(10.0),
        };
        let m = MultihopMetrics::of(&Network::build(dep, 10.0));
        assert_eq!(m.reachable, 0);
        assert_eq!(m.mean_hops, 0.0);
        assert_eq!(m.max_hops, 0);
    }
}
