//! The direct-transmission baseline.
//!
//! Every sensor transmits its packet straight to the static sink in one
//! hop, however far away it is. With `E_tx ∝ d^α` this is catastrophic for
//! peripheral sensors — the scheme exists as the protocol-free reference
//! point in the energy tables, and to show why relaying (or a mobile
//! collector) is needed at all.

use mdg_energy::{EnergyLedger, RadioModel};
use mdg_net::Network;
use serde::{Deserialize, Serialize};

/// Per-round energy metrics of direct transmission.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DirectMetrics {
    /// Total joules per round across all sensors.
    pub total_joules: f64,
    /// Highest single-sensor expenditure per round.
    pub max_joules: f64,
    /// Jain fairness of the per-sensor expenditure.
    pub fairness: f64,
    /// Transmissions per round (= number of sensors).
    pub transmissions_per_round: u64,
}

impl DirectMetrics {
    /// Computes the metrics, and the per-node ledger, for one round of
    /// direct transmission under `radio`.
    pub fn of(net: &Network, radio: RadioModel) -> (DirectMetrics, EnergyLedger) {
        let mut ledger = EnergyLedger::new(net.n_sensors(), radio);
        for (s, &pos) in net.deployment.sensors.iter().enumerate() {
            ledger.record_tx(s, pos.dist(net.deployment.sink));
        }
        let metrics = DirectMetrics {
            total_joules: ledger.total_joules(),
            max_joules: ledger.joules_per_node().iter().copied().fold(0.0, f64::max),
            fairness: ledger.fairness(),
            transmissions_per_round: ledger.total_tx(),
        };
        (metrics, ledger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdg_geom::Point;
    use mdg_net::{Deployment, DeploymentConfig};

    #[test]
    fn energy_grows_with_distance() {
        let dep = Deployment {
            sensors: vec![Point::new(10.0, 0.0), Point::new(100.0, 0.0)],
            sink: Point::ORIGIN,
            field: mdg_geom::Aabb::square(120.0),
        };
        let net = Network::build(dep, 30.0);
        let radio = RadioModel::default();
        let (m, ledger) = DirectMetrics::of(&net, radio);
        assert_eq!(m.transmissions_per_round, 2);
        assert!(ledger.joules_of(1) > ledger.joules_of(0));
        assert!((ledger.joules_of(0) - radio.tx_cost(10.0)).abs() < 1e-18);
        assert!((ledger.joules_of(1) - radio.tx_cost(100.0)).abs() < 1e-18);
        assert!(m.fairness < 1.0);
        assert!((m.total_joules - (radio.tx_cost(10.0) + radio.tx_cost(100.0))).abs() < 1e-15);
    }

    #[test]
    fn direct_spends_more_than_single_hop_mobile() {
        // The core energy claim: short uploads to a nearby collector cost
        // far less than long sprays at the sink.
        let net = Network::build(DeploymentConfig::uniform(100, 300.0).generate(4), 30.0);
        let radio = RadioModel::default();
        let (direct, _) = DirectMetrics::of(&net, radio);
        // SHDG upper bound: every sensor transmits once over ≤ range.
        let shdg_upper = net.n_sensors() as f64 * radio.tx_cost(net.range);
        assert!(direct.total_joules > shdg_upper);
    }

    #[test]
    fn empty_network() {
        let dep = Deployment {
            sensors: vec![],
            sink: Point::ORIGIN,
            field: mdg_geom::Aabb::square(10.0),
        };
        let (m, _) = DirectMetrics::of(&Network::build(dep, 10.0), RadioModel::default());
        assert_eq!(m.total_joules, 0.0);
        assert_eq!(m.transmissions_per_round, 0);
        assert_eq!(m.fairness, 1.0);
    }
}
