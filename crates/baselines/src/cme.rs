//! The controlled-mobile-element (CME) baseline.
//!
//! Following Jea, Somasundara & Srivastava's *data mules on fixed tracks*:
//! the collector shuttles along parallel horizontal tracks spanning the
//! field (boustrophedon: along one track, across the border, back along
//! the next), starting from and returning to the sink. Sensors within
//! radio range of the moving collector's path act as **upload nodes**; all
//! other sensors forward their packets to the nearest upload node via
//! multi-hop relays — with *no bound* on the relay hop count, the
//! characteristic weakness the polling-based scheme fixes.

use mdg_geom::{open_path_length, Point, Segment};
use mdg_net::{Csr, Network, UNREACHABLE};
use mdg_sim::{MobileScenario, Stop, Upload};
use std::collections::VecDeque;

/// One sensor's packet journey in the CME scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct CmeUpload {
    /// Originating sensor.
    pub source: usize,
    /// Relay chain from source to the track-adjacent upload node
    /// (inclusive).
    pub relay_path: Vec<usize>,
    /// Collector pause position: the point of the track path nearest the
    /// upload node.
    pub stop_pos: Point,
    /// Arc-length of `stop_pos` along the path (used to order stops).
    pub stop_arclen: f64,
}

/// A complete CME plan.
#[derive(Debug, Clone, PartialEq)]
pub struct CmePlan {
    /// The full collector path: sink → tracks (boustrophedon) → sink.
    pub path: Vec<Point>,
    /// Open-path length of `path` (the collector's travel per round).
    pub path_length: f64,
    /// Deliverable packets.
    pub uploads: Vec<CmeUpload>,
    /// Sensors with no multi-hop route to any upload node (their data is
    /// never collected — CME offers no recourse).
    pub undeliverable: Vec<usize>,
}

impl CmePlan {
    /// Mean relay hop count over deliverable packets (0 hops = the sensor
    /// is itself an upload node).
    pub fn mean_relay_hops(&self) -> f64 {
        if self.uploads.is_empty() {
            return 0.0;
        }
        let total: usize = self.uploads.iter().map(|u| u.relay_path.len() - 1).sum();
        total as f64 / self.uploads.len() as f64
    }

    /// Fraction of sensors whose data is collected.
    pub fn coverage(&self, n_sensors: usize) -> f64 {
        if n_sensors == 0 {
            1.0
        } else {
            self.uploads.len() as f64 / n_sensors as f64
        }
    }
}

/// Evenly spaced horizontal track y-coordinates: 1 track through the
/// middle; ≥ 2 tracks span from the bottom to the top border.
fn track_ys(net: &Network, n_tracks: usize) -> Vec<f64> {
    let field = &net.deployment.field;
    if n_tracks == 1 {
        return vec![field.center().y];
    }
    let step = field.height() / (n_tracks - 1) as f64;
    (0..n_tracks)
        .map(|i| field.min.y + i as f64 * step)
        .collect()
}

/// Builds the boustrophedon path through the tracks, anchored at the sink.
fn build_path(net: &Network, ys: &[f64]) -> Vec<Point> {
    let field = &net.deployment.field;
    let sink = net.deployment.sink;
    let mut path = vec![sink];
    let mut left_to_right = true;
    for &y in ys {
        let (start_x, end_x) = if left_to_right {
            (field.min.x, field.max.x)
        } else {
            (field.max.x, field.min.x)
        };
        path.push(Point::new(start_x, y));
        path.push(Point::new(end_x, y));
        left_to_right = !left_to_right;
    }
    path.push(sink);
    path
}

/// Multi-source BFS with parent pointers over the sensor graph.
fn relay_forest(g: &Csr, sources: &[usize]) -> (Vec<u32>, Vec<u32>) {
    let mut hops = vec![UNREACHABLE; g.n()];
    let mut parent = vec![UNREACHABLE; g.n()];
    let mut queue = VecDeque::new();
    for &s in sources {
        if hops[s] != 0 {
            hops[s] = 0;
            queue.push_back(s as u32);
        }
    }
    while let Some(u) = queue.pop_front() {
        let hu = hops[u as usize];
        for &v in g.neighbors(u as usize) {
            if hops[v as usize] == UNREACHABLE {
                hops[v as usize] = hu + 1;
                parent[v as usize] = u;
                queue.push_back(v);
            }
        }
    }
    (hops, parent)
}

/// Closest point on the open polyline `path` to `p`; returns the point and
/// its arc-length from the path start.
fn closest_on_path(path: &[Point], p: Point) -> (Point, f64) {
    let mut best = (path[0], 0.0);
    let mut best_d = f64::INFINITY;
    let mut arclen = 0.0;
    for w in path.windows(2) {
        let seg = Segment::new(w[0], w[1]);
        let t = seg.closest_t(p);
        let q = seg.a.lerp(seg.b, t);
        let d = q.dist_sq(p);
        if d < best_d {
            best_d = d;
            best = (q, arclen + t * seg.length());
        }
        arclen += seg.length();
    }
    best
}

/// Plans the CME scheme with `n_tracks` parallel tracks.
///
/// # Panics
/// Panics if `n_tracks == 0`.
pub fn plan_cme(net: &Network, n_tracks: usize) -> CmePlan {
    assert!(n_tracks > 0, "need at least one track");
    let ys = track_ys(net, n_tracks);
    let path = build_path(net, &ys);
    let path_length = open_path_length(&path);
    let sensors = &net.deployment.sensors;

    // Upload nodes: within radio range of the path.
    let upload_nodes: Vec<usize> = sensors
        .iter()
        .enumerate()
        .filter(|(_, &p)| {
            path.windows(2)
                .any(|w| Segment::new(w[0], w[1]).dist_to_point(p) <= net.range)
        })
        .map(|(i, _)| i)
        .collect();

    let (hops, parent) = relay_forest(&net.sensor_graph, &upload_nodes);
    let mut uploads = Vec::new();
    let mut undeliverable = Vec::new();
    for s in 0..sensors.len() {
        if hops[s] == UNREACHABLE {
            undeliverable.push(s);
            continue;
        }
        // Walk the parent chain from s to its upload node.
        let mut relay_path = vec![s];
        let mut cur = s;
        while hops[cur] != 0 {
            cur = parent[cur] as usize;
            relay_path.push(cur);
        }
        let uploader = *relay_path.last().unwrap();
        let (stop_pos, stop_arclen) = closest_on_path(&path, sensors[uploader]);
        uploads.push(CmeUpload {
            source: s,
            relay_path,
            stop_pos,
            stop_arclen,
        });
    }
    CmePlan {
        path,
        path_length,
        uploads,
        undeliverable,
    }
}

/// Converts a CME plan into a [`MobileScenario`] for discrete-event
/// simulation: the collector's stops are the path vertices plus every
/// upload position, in arc-length order, so the simulated trajectory is
/// exactly the track path.
pub fn cme_scenario(plan: &CmePlan, net: &Network) -> MobileScenario {
    // Collect (arclen, pos, uploads-at-this-stop).
    let mut stops: Vec<(f64, Point, Vec<Upload>)> = Vec::new();
    // Path vertices as zero-upload stops (skip the leading/trailing sink).
    let mut arclen = 0.0;
    for (i, w) in plan.path.windows(2).enumerate() {
        arclen += w[0].dist(w[1]);
        if i + 2 < plan.path.len() {
            // w[1] is an interior vertex.
            stops.push((arclen, w[1], Vec::new()));
        }
    }
    for u in &plan.uploads {
        stops.push((
            u.stop_arclen,
            u.stop_pos,
            vec![Upload {
                source: u.source,
                relay_path: u.relay_path.clone(),
            }],
        ));
    }
    stops.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    // Merge stops at (numerically) the same arc-length.
    let mut merged: Vec<Stop> = Vec::new();
    let mut last_arclen = f64::NEG_INFINITY;
    for (a, pos, ups) in stops {
        if (a - last_arclen).abs() < 1e-9 {
            merged.last_mut().unwrap().uploads.extend(ups);
        } else {
            merged.push(Stop { pos, uploads: ups });
            last_arclen = a;
        }
    }
    MobileScenario {
        sensors: net.deployment.sensors.clone(),
        sink: net.deployment.sink,
        stops: merged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdg_net::DeploymentConfig;
    use mdg_sim::{MobileGatheringSim, SimConfig};

    fn net(n: usize, side: f64, range: f64, seed: u64) -> Network {
        Network::build(DeploymentConfig::uniform(n, side).generate(seed), range)
    }

    #[test]
    fn path_is_boustrophedon() {
        let net = net(10, 200.0, 30.0, 1);
        let plan = plan_cme(&net, 3);
        // Path: sink + 3 tracks × 2 endpoints + sink.
        assert_eq!(plan.path.len(), 8);
        assert_eq!(plan.path[0], net.deployment.sink);
        assert_eq!(*plan.path.last().unwrap(), net.deployment.sink);
        // Tracks at y = 0, 100, 200.
        assert_eq!(plan.path[1].y, 0.0);
        assert_eq!(plan.path[3].y, 100.0);
        assert_eq!(plan.path[5].y, 200.0);
        // Track length is at least 3 × 200 m.
        assert!(plan.path_length >= 600.0);
    }

    #[test]
    fn single_track_through_center() {
        let net = net(10, 200.0, 30.0, 2);
        let plan = plan_cme(&net, 1);
        assert_eq!(plan.path[1].y, 100.0);
        assert_eq!(plan.path[2].y, 100.0);
    }

    #[test]
    fn path_length_is_constant_in_n() {
        // The CME tour does not depend on the sensor count — the flat line
        // in the tour-length-vs-N figure.
        let a = plan_cme(&net(50, 200.0, 30.0, 3), 3);
        let b = plan_cme(&net(500, 200.0, 30.0, 4), 3);
        assert!((a.path_length - b.path_length).abs() < 1e-9);
    }

    #[test]
    fn relay_paths_are_valid_walks() {
        let net = net(200, 200.0, 30.0, 5);
        let plan = plan_cme(&net, 3);
        for u in &plan.uploads {
            assert_eq!(u.relay_path[0], u.source);
            for w in u.relay_path.windows(2) {
                assert!(
                    net.sensor_graph.has_edge(w[0], w[1]),
                    "relay hop {}→{} is not an edge",
                    w[0],
                    w[1]
                );
            }
            // The uploader is within range of its stop.
            let uploader = *u.relay_path.last().unwrap();
            assert!(net.deployment.sensors[uploader].dist(u.stop_pos) <= net.range + 1e-9);
        }
        // Coverage + undeliverable partitions the sensors.
        assert_eq!(
            plan.uploads.len() + plan.undeliverable.len(),
            net.n_sensors()
        );
    }

    #[test]
    fn unbounded_relays_exceed_shdg_hops() {
        // With 3 tracks on a 300 m field, mid-gap sensors need multiple
        // relay hops; SHDG always uses exactly 0 relay hops (single-hop).
        let net = net(300, 300.0, 30.0, 7);
        let plan = plan_cme(&net, 3);
        assert!(
            plan.mean_relay_hops() > 0.2,
            "got {}",
            plan.mean_relay_hops()
        );
    }

    #[test]
    fn scenario_simulates_with_correct_travel_time() {
        let net = net(100, 200.0, 30.0, 9);
        let plan = plan_cme(&net, 3);
        let scen = cme_scenario(&plan, &net);
        scen.validate().unwrap();
        let cfg = SimConfig {
            upload_secs: 0.0,
            hop_secs: 0.0,
            ..SimConfig::default()
        };
        let sim = MobileGatheringSim::new(scen, cfg);
        let r = sim.run();
        // With zero pauses, the round lasts exactly the path time… except
        // the simulator closes the loop stop→sink, which the path already
        // ends at. Stops all lie on the path, so durations match.
        assert!(
            (r.duration_secs - plan.path_length).abs() < 1e-6,
            "sim {} vs path {}",
            r.duration_secs,
            plan.path_length
        );
        assert_eq!(r.packets_delivered, plan.uploads.len());
        assert_eq!(
            r.packets_expected,
            plan.uploads.len() + plan.undeliverable.len()
        );
    }

    #[test]
    fn isolated_sensor_is_undeliverable() {
        use mdg_net::{Deployment, Network};
        let dep = Deployment {
            sensors: vec![Point::new(100.0, 100.0), Point::new(100.0, 55.0)],
            sink: Point::new(100.0, 0.0),
            field: mdg_geom::Aabb::square(200.0),
        };
        // One track at y = 100 covers the first sensor; the second sits
        // 45 m from both the track and the other sensor at R = 20.
        let net = Network::build(dep, 20.0);
        let plan = plan_cme(&net, 1);
        assert_eq!(plan.uploads.len(), 1);
        assert_eq!(plan.undeliverable, vec![1]);
        assert!((plan.coverage(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_network_cme() {
        let net = net(0, 100.0, 20.0, 0);
        let plan = plan_cme(&net, 2);
        assert!(plan.uploads.is_empty());
        assert!(plan.undeliverable.is_empty());
        assert_eq!(plan.mean_relay_hops(), 0.0);
        assert_eq!(plan.coverage(0), 1.0);
        let scen = cme_scenario(&plan, &net);
        scen.validate().unwrap();
    }
}
