//! The uncontrolled-mobility data-MULE baseline.
//!
//! The earliest mobile data-gathering proposals (Shah et al.'s *data
//! MULEs*) used opportunistic carriers with **random** motion: sensors
//! upload whenever a mule happens to wander within radio range. The model
//! here is the standard random-waypoint walk: the mule starts at the sink
//! and repeatedly drives straight to a uniformly random waypoint in the
//! field. The scheme needs no planning at all — the price is that coverage
//! is probabilistic and per-sensor contact latency is unbounded, which is
//! exactly the gap controlled-mobility schemes (SHDG) close.

use mdg_geom::{open_path_length, Point, Segment};
use mdg_net::Network;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random-waypoint mule walk with per-sensor first-contact times.
#[derive(Debug, Clone, PartialEq)]
pub struct MuleWalk {
    /// The walk's waypoints, starting at the sink.
    pub waypoints: Vec<Point>,
    /// Total walk length in meters.
    pub path_length: f64,
    /// Mule speed in m/s.
    pub speed_mps: f64,
    /// `first_contact[s]` = seconds until the mule first comes within
    /// radio range of sensor `s` (`None` if never during the walk).
    pub first_contact: Vec<Option<f64>>,
}

impl MuleWalk {
    /// Walk duration in seconds.
    pub fn duration(&self) -> f64 {
        self.path_length / self.speed_mps
    }

    /// Fraction of sensors contacted at least once.
    pub fn coverage(&self) -> f64 {
        if self.first_contact.is_empty() {
            return 1.0;
        }
        self.first_contact.iter().filter(|c| c.is_some()).count() as f64
            / self.first_contact.len() as f64
    }

    /// Mean first-contact latency over *contacted* sensors (0 if none).
    pub fn mean_contact_latency(&self) -> f64 {
        let contacted: Vec<f64> = self.first_contact.iter().filter_map(|&c| c).collect();
        if contacted.is_empty() {
            0.0
        } else {
            contacted.iter().sum::<f64>() / contacted.len() as f64
        }
    }
}

/// Simulates a random-waypoint mule for `duration_secs` at `speed_mps`,
/// seeded deterministically. The walk starts at the sink and waypoints are
/// uniform over the field.
///
/// # Panics
/// Panics on non-positive speed or duration.
pub fn random_waypoint_walk(
    net: &Network,
    speed_mps: f64,
    duration_secs: f64,
    seed: u64,
) -> MuleWalk {
    assert!(speed_mps > 0.0, "mule speed must be positive");
    assert!(duration_secs > 0.0, "duration must be positive");
    let field = &net.deployment.field;
    let budget = speed_mps * duration_secs;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut waypoints = vec![net.deployment.sink];
    let mut length = 0.0;
    while length < budget {
        let next = Point::new(
            rng.gen_range(field.min.x..=field.max.x),
            rng.gen_range(field.min.y..=field.max.y),
        );
        length += waypoints.last().unwrap().dist(next);
        waypoints.push(next);
    }
    // Trim the final leg so the walk is exactly `budget` meters.
    let overshoot = length - budget;
    if overshoot > 0.0 {
        let last = *waypoints.last().unwrap();
        let prev = waypoints[waypoints.len() - 2];
        let leg = prev.dist(last);
        *waypoints.last_mut().unwrap() = prev.lerp(last, (leg - overshoot) / leg.max(1e-12));
    }
    let path_length = open_path_length(&waypoints);

    // First contact per sensor: scan legs in order, solving the moving
    // point / disk entry time on each.
    let mut first_contact = vec![None; net.n_sensors()];
    let mut elapsed = 0.0;
    for w in waypoints.windows(2) {
        let seg = Segment::new(w[0], w[1]);
        let leg_len = seg.length();
        for (s, &pos) in net.deployment.sensors.iter().enumerate() {
            if first_contact[s].is_some() {
                continue;
            }
            if let Some(t) = seg.first_param_within(pos, net.range) {
                first_contact[s] = Some(elapsed + t * leg_len / speed_mps);
            }
        }
        elapsed += leg_len / speed_mps;
    }
    MuleWalk {
        waypoints,
        path_length,
        speed_mps,
        first_contact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdg_net::DeploymentConfig;

    fn net(n: usize, seed: u64) -> Network {
        Network::build(DeploymentConfig::uniform(n, 200.0).generate(seed), 30.0)
    }

    #[test]
    fn walk_is_deterministic_and_length_exact() {
        let net = net(50, 1);
        let a = random_waypoint_walk(&net, 1.0, 600.0, 9);
        let b = random_waypoint_walk(&net, 1.0, 600.0, 9);
        assert_eq!(a, b);
        assert!(
            (a.path_length - 600.0).abs() < 1e-6,
            "got {}",
            a.path_length
        );
        assert!((a.duration() - 600.0).abs() < 1e-6);
        let c = random_waypoint_walk(&net, 1.0, 600.0, 10);
        assert_ne!(a.waypoints, c.waypoints, "different seeds walk differently");
    }

    #[test]
    fn waypoints_stay_in_field() {
        let net = net(10, 2);
        let walk = random_waypoint_walk(&net, 1.0, 2000.0, 3);
        for w in &walk.waypoints {
            assert!(net.deployment.field.contains(*w), "{w} escaped the field");
        }
        assert_eq!(walk.waypoints[0], net.deployment.sink);
    }

    #[test]
    fn first_contacts_are_consistent() {
        let net = net(80, 4);
        let walk = random_waypoint_walk(&net, 1.0, 1500.0, 5);
        for (s, &c) in walk.first_contact.iter().enumerate() {
            if let Some(t) = c {
                assert!(
                    (0.0..=walk.duration() + 1e-6).contains(&t),
                    "sensor {s}: t={t}"
                );
                // The mule really is within range at that instant: walk the
                // legs to find the position.
                let pos = position_at(&walk, t);
                assert!(
                    pos.dist(net.deployment.sensors[s]) <= net.range + 1e-6,
                    "sensor {s} contact at {t}: {pos} is {} m away",
                    pos.dist(net.deployment.sensors[s])
                );
            }
        }
        // Sensors within range of the sink are contacted at t = 0.
        for s in net.sensors_within_range_of(net.deployment.sink) {
            assert_eq!(walk.first_contact[s as usize], Some(0.0));
        }
    }

    fn position_at(walk: &MuleWalk, t: f64) -> Point {
        let mut remaining = t * walk.speed_mps;
        for w in walk.waypoints.windows(2) {
            let leg = w[0].dist(w[1]);
            if remaining <= leg {
                return w[0].lerp(w[1], remaining / leg.max(1e-12));
            }
            remaining -= leg;
        }
        *walk.waypoints.last().unwrap()
    }

    #[test]
    fn coverage_grows_with_duration() {
        let net = net(150, 6);
        let short = random_waypoint_walk(&net, 1.0, 200.0, 7);
        let long = random_waypoint_walk(&net, 1.0, 5000.0, 7);
        assert!(long.coverage() >= short.coverage());
        assert!(
            long.coverage() > 0.8,
            "a 5 km walk should contact most of a 200 m field"
        );
    }

    #[test]
    fn random_walk_needs_far_longer_than_a_planned_tour() {
        // The controlled-vs-uncontrolled headline: to contact ~all sensors
        // the random mule travels several times the planned SHDG tour.
        let net = net(150, 8);
        let plan = mdg_core::ShdgPlanner::new().plan(&net).unwrap();
        // Give the mule exactly the SHDG tour budget.
        let walk = random_waypoint_walk(&net, 1.0, plan.tour_length, 11);
        assert!(
            walk.coverage() < 0.999,
            "a random walk of tour length should (almost surely) miss sensors"
        );
    }

    #[test]
    fn empty_network_walk() {
        let net = net(0, 9);
        let walk = random_waypoint_walk(&net, 1.0, 100.0, 1);
        assert_eq!(walk.coverage(), 1.0);
        assert_eq!(walk.mean_contact_latency(), 0.0);
    }
}
