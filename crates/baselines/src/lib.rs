//! # mdg-baselines — the comparison schemes of the evaluation
//!
//! Every scheme the paper's simulations compare against, implemented over
//! the same substrates as the SHDG planner so that the experiment harness
//! replays identical topologies through all of them:
//!
//! * [`visit_all`] — the no-aggregation extreme: the collector visits
//!   every single sensor position (maximum energy saving, longest tour).
//! * [`multihop`] — the no-mobility extreme: classic min-hop relay routing
//!   to the static sink (shortest latency, highest and least uniform
//!   energy).
//! * [`cme`] — the *controlled mobile element* scheme (Jea, Somasundara &
//!   Srivastava): the collector shuttles along fixed parallel tracks;
//!   sensors relay packets multi-hop to track-adjacent sensors which
//!   upload as the collector passes.
//! * [`direct`] — every sensor transmits straight to the sink regardless
//!   of distance (the naive lower bound on protocol complexity).
//! * [`mule`] — the uncontrolled-mobility data-MULE: a random-waypoint
//!   walker that collects opportunistically (probabilistic coverage,
//!   unbounded latency).

pub mod cme;
pub mod direct;
pub mod mule;
pub mod multihop;
pub mod visit_all;

pub use cme::{plan_cme, CmePlan};
pub use direct::DirectMetrics;
pub use mule::{random_waypoint_walk, MuleWalk};
pub use multihop::MultihopMetrics;
pub use visit_all::visit_all_plan;
