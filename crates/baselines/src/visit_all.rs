//! The visit-every-sensor baseline.
//!
//! The maximum-energy-saving extreme of mobile collection: the collector
//! drives to **each sensor's exact position**, so every upload happens over
//! distance ~0. No covering is involved — the tour is a plain TSP over all
//! sensor sites plus the sink. The paper's motivating example: on a 300 m
//! field this tour is kilometers long, hence the polling-point idea.

use mdg_core::{GatheringPlan, PollingPoint};
use mdg_geom::Point;
use mdg_net::Network;
use mdg_tour::{plan_tour, MatrixCost};

/// Plans the visit-all tour as a [`GatheringPlan`] in which every sensor is
/// its own polling point. Uses the same TSP pipeline as the SHDG planner
/// for a fair comparison.
pub fn visit_all_plan(net: &Network) -> GatheringPlan {
    let sensors = &net.deployment.sensors;
    let sink = net.deployment.sink;
    if sensors.is_empty() {
        return GatheringPlan::new(sink, Vec::new(), Vec::new());
    }
    let mut pts: Vec<Point> = Vec::with_capacity(sensors.len() + 1);
    pts.push(sink);
    pts.extend_from_slice(sensors);
    let cost = MatrixCost::from_points(&pts);
    let tour = plan_tour(&cost);
    let order = tour.order();
    debug_assert_eq!(order[0], 0);
    let polling_points: Vec<PollingPoint> = order[1..]
        .iter()
        .map(|&c| {
            let sensor = c - 1;
            PollingPoint {
                pos: sensors[sensor],
                candidate: sensor,
                covered: vec![sensor as u32],
            }
        })
        .collect();
    // assignment[sensor] = position of that sensor in the tour order.
    let mut assignment = vec![0usize; sensors.len()];
    for (k, pp) in polling_points.iter().enumerate() {
        assignment[pp.candidate] = k;
    }
    GatheringPlan::new(sink, polling_points, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdg_core::ShdgPlanner;
    use mdg_net::DeploymentConfig;

    fn net(n: usize, side: f64, range: f64, seed: u64) -> Network {
        Network::build(DeploymentConfig::uniform(n, side).generate(seed), range)
    }

    #[test]
    fn one_polling_point_per_sensor() {
        let net = net(60, 150.0, 30.0, 1);
        let plan = visit_all_plan(&net);
        assert_eq!(plan.n_polling_points(), 60);
        plan.validate(&net.deployment.sensors, net.range).unwrap();
        // Upload distances are all zero.
        let d = plan.upload_distances(&net.deployment.sensors);
        assert!(d.iter().all(|&x| x < 1e-9));
        assert_eq!(plan.max_sensors_per_pp(), 1);
    }

    #[test]
    fn shdg_tour_is_shorter_on_dense_networks() {
        // The paper's headline comparison: with a usable transmission
        // range, polling points aggregate and the tour shrinks well below
        // the visit-all tour.
        for seed in 0..3 {
            let net = net(200, 200.0, 30.0, seed);
            let shdg = ShdgPlanner::new().plan(&net).unwrap();
            let va = visit_all_plan(&net);
            assert!(
                shdg.tour_length < 0.8 * va.tour_length,
                "seed {seed}: SHDG {} vs visit-all {}",
                shdg.tour_length,
                va.tour_length
            );
        }
    }

    #[test]
    fn empty_and_single() {
        let empty = visit_all_plan(&net(0, 100.0, 20.0, 0));
        assert_eq!(empty.n_polling_points(), 0);
        let one = net(1, 100.0, 20.0, 0);
        let plan = visit_all_plan(&one);
        assert_eq!(plan.n_polling_points(), 1);
        let d = one.deployment.sink.dist(one.deployment.sensors[0]);
        assert!((plan.tour_length - 2.0 * d).abs() < 1e-9);
    }

    #[test]
    fn deterministic() {
        let net = net(40, 120.0, 25.0, 9);
        assert_eq!(visit_all_plan(&net), visit_all_plan(&net));
    }
}
