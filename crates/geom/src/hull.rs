//! Convex hulls (Andrew's monotone chain).
//!
//! The hull perimeter is a classic lower bound on the length of any closed
//! tour through a point set; the experiment harness reports it as a sanity
//! reference next to heuristic tour lengths.

use crate::point::Point;

/// Computes the convex hull of `points` in counter-clockwise order using
/// Andrew's monotone chain. Collinear points on the hull boundary are
/// dropped. Returns:
///
/// * `[]` for an empty input,
/// * a single point for an input of identical points,
/// * two points for a collinear input,
/// * otherwise the CCW hull polygon without a repeated first vertex.
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .unwrap()
            .then(a.y.partial_cmp(&b.y).unwrap())
    });
    pts.dedup_by(|a, b| a.dist_sq(*b) < crate::EPS * crate::EPS);
    let n = pts.len();
    if n <= 2 {
        return pts;
    }

    let cross = |o: Point, a: Point, b: Point| (a - o).cross(b - o);

    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2 && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= crate::EPS
        {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= crate::EPS
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // The last point repeats the first.
    if hull.len() < 2 {
        // All points collinear degenerate to the two extremes.
        return vec![pts[0], pts[n - 1]];
    }
    hull
}

/// Perimeter of the convex hull of `points` (0 for fewer than 2 distinct
/// points; twice the diameter for collinear inputs, i.e. the length of the
/// degenerate "tour" out and back).
pub fn hull_perimeter(points: &[Point]) -> f64 {
    let hull = convex_hull(points);
    match hull.len() {
        0 | 1 => 0.0,
        2 => 2.0 * hull[0].dist(hull[1]),
        _ => {
            let mut perim = 0.0;
            for i in 0..hull.len() {
                perim += hull[i].dist(hull[(i + 1) % hull.len()]);
            }
            perim
        }
    }
}

/// Returns `true` if `p` lies inside or on the boundary of the CCW convex
/// polygon `hull`.
pub fn hull_contains(hull: &[Point], p: Point) -> bool {
    if hull.len() < 3 {
        return match hull.len() {
            0 => false,
            1 => hull[0].dist(p) < crate::EPS,
            _ => crate::Segment::new(hull[0], hull[1]).dist_to_point(p) < crate::EPS,
        };
    }
    for i in 0..hull.len() {
        let a = hull[i];
        let b = hull[(i + 1) % hull.len()];
        if (b - a).cross(p - a) < -crate::EPS {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
            Point::new(2.0, 2.0), // interior
            Point::new(1.0, 3.0), // interior
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        assert!(approx_eq(hull_perimeter(&pts), 16.0));
        for p in &pts {
            assert!(hull_contains(&hull, *p), "{p} should be inside");
        }
        assert!(!hull_contains(&hull, Point::new(5.0, 5.0)));
    }

    #[test]
    fn hull_drops_collinear_boundary_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0), // collinear on bottom edge
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[Point::new(1.0, 1.0)]).len(), 1);
        // All-identical points collapse to one.
        let same = vec![Point::new(2.0, 2.0); 5];
        assert_eq!(convex_hull(&same).len(), 1);
        assert!(approx_eq(hull_perimeter(&same), 0.0));
        // Collinear points give the two extremes, perimeter = out and back.
        let line: Vec<Point> = (0..5).map(|i| Point::new(i as f64, 0.0)).collect();
        let hull = convex_hull(&line);
        assert_eq!(hull.len(), 2);
        assert!(approx_eq(hull_perimeter(&line), 8.0));
    }

    #[test]
    fn hull_is_ccw() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 1.0),
            Point::new(4.0, 4.0),
            Point::new(1.0, 3.0),
        ];
        let hull = convex_hull(&pts);
        let mut area2 = 0.0;
        for i in 0..hull.len() {
            let a = hull[i];
            let b = hull[(i + 1) % hull.len()];
            area2 += a.cross(b);
        }
        assert!(area2 > 0.0, "signed area positive ⇒ CCW order");
    }
}
