//! Uniform spatial hash grid for fixed-radius neighbor queries.
//!
//! Unit-disk graph construction over `N` sensors is the single hottest
//! substrate operation in the experiment sweeps (it runs once per replicate
//! per data point, 500+ times per figure). A uniform grid with cell size
//! equal to the query radius turns the naive `O(N²)` pairwise scan into an
//! expected `O(N · k)` scan of the 3×3 cell neighborhood, where `k` is the
//! local density.

use crate::bbox::Aabb;
use crate::point::Point;

/// A uniform grid over a point set, bucketing point indices by cell.
///
/// The grid is immutable after construction; rebuild it if the point set
/// changes (deployments are static for the lifetime of an experiment).
///
/// ```
/// use mdg_geom::{Point, SpatialGrid};
///
/// let pts = [Point::new(0.0, 0.0), Point::new(5.0, 0.0), Point::new(50.0, 50.0)];
/// let grid = SpatialGrid::build(&pts, 10.0);
/// let mut near = grid.neighbors_within(Point::new(1.0, 0.0), 10.0);
/// near.sort_unstable();
/// assert_eq!(near, vec![0, 1]);
/// assert_eq!(grid.nearest(Point::new(40.0, 40.0)), Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cell: f64,
    cols: usize,
    rows: usize,
    origin: Point,
    /// CSR-style bucket layout: `starts[c]..starts[c+1]` indexes into `items`.
    starts: Vec<u32>,
    items: Vec<u32>,
    /// Coordinates in **item-slot order** (`xs[s]`/`ys[s]` pair with
    /// `items[s]`), not original index order: a bucket scan walks two
    /// contiguous `f64` runs instead of pointer-chasing an AoS `Point`
    /// array through the `items` indirection. The permuted SoA layout is
    /// what makes `for_each_within` stream.
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl SpatialGrid {
    /// Builds a grid over `points` with cells of size `cell` (typically the
    /// radio transmission range).
    ///
    /// # Panics
    /// Panics if `cell` is not strictly positive and finite.
    pub fn build(points: &[Point], cell: f64) -> Self {
        assert!(
            cell > 0.0 && cell.is_finite(),
            "cell size must be positive and finite"
        );
        let bb = Aabb::from_points(points).unwrap_or(Aabb {
            min: Point::ORIGIN,
            max: Point::ORIGIN,
        });
        let origin = bb.min;
        // Cap the cell count at ~4 buckets per point: a cell far smaller
        // than the point spacing only wastes memory (a 1 mm radio range
        // over a 300 m field must not allocate 10¹¹ buckets). Queries stay
        // correct for any cell size because the scan radius is computed
        // from `radius / cell`.
        let max_cells = (4 * points.len()).max(64);
        let min_cell = (bb.width().max(1e-12) * bb.height().max(1e-12) / max_cells as f64).sqrt();
        let cell = cell.max(min_cell);
        let cols = ((bb.width() / cell).floor() as usize + 1).max(1);
        let rows = ((bb.height() / cell).floor() as usize + 1).max(1);
        let ncells = cols * rows;

        // Two-pass counting sort into CSR buckets.
        let mut counts = vec![0u32; ncells + 1];
        let cell_of = |p: Point| -> usize {
            let cx = (((p.x - origin.x) / cell).floor() as usize).min(cols - 1);
            let cy = (((p.y - origin.y) / cell).floor() as usize).min(rows - 1);
            cy * cols + cx
        };
        for &p in points {
            counts[cell_of(p) + 1] += 1;
        }
        for i in 0..ncells {
            counts[i + 1] += counts[i];
        }
        let starts = counts.clone();
        let mut cursor = counts;
        let mut items = vec![0u32; points.len()];
        for (i, &p) in points.iter().enumerate() {
            let c = cell_of(p);
            items[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }

        let mut xs = Vec::with_capacity(items.len());
        let mut ys = Vec::with_capacity(items.len());
        for &i in &items {
            let p = points[i as usize];
            xs.push(p.x);
            ys.push(p.y);
        }

        SpatialGrid {
            cell,
            cols,
            rows,
            origin,
            starts,
            items,
            xs,
            ys,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if the grid indexes no points.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Indices of all points within `radius` of `query`, excluding none.
    /// `radius` must be ≤ the cell size for the 3×3 neighborhood scan to be
    /// exhaustive; larger radii scan proportionally more cells and remain
    /// correct.
    pub fn neighbors_within(&self, query: Point, radius: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.neighbors_within_into(query, radius, &mut out);
        out
    }

    /// [`SpatialGrid::neighbors_within`] into a caller-owned buffer
    /// (cleared first), so steady-state query loops reuse capacity.
    pub fn neighbors_within_into(&self, query: Point, radius: f64, out: &mut Vec<u32>) {
        out.clear();
        self.for_each_within(query, radius, |i| out.push(i));
    }

    /// Visits the index of every point within `radius` of `query`.
    pub fn for_each_within<F: FnMut(u32)>(&self, query: Point, radius: f64, mut f: F) {
        self.for_each_within_d(query, radius, |i, _| f(i));
    }

    /// Visits `(index, dist_sq)` of every point within `radius` of `query`
    /// — the distance is already computed for the filter, so callers that
    /// need it (k-NN, nearest) avoid a second scan of the point data.
    pub fn for_each_within_d<F: FnMut(u32, f64)>(&self, query: Point, radius: f64, mut f: F) {
        if self.items.is_empty() {
            return;
        }
        let r_sq = radius * radius;
        let reach = (radius / self.cell).ceil() as i64;
        let qcx = ((query.x - self.origin.x) / self.cell).floor() as i64;
        let qcy = ((query.y - self.origin.y) / self.cell).floor() as i64;
        for cy in (qcy - reach)..=(qcy + reach) {
            if cy < 0 || cy >= self.rows as i64 {
                continue;
            }
            for cx in (qcx - reach)..=(qcx + reach) {
                if cx < 0 || cx >= self.cols as i64 {
                    continue;
                }
                let c = cy as usize * self.cols + cx as usize;
                let lo = self.starts[c] as usize;
                let hi = self.starts[c + 1] as usize;
                // Slot-order scan: xs/ys stream contiguously; `items` is
                // only touched for the (rarer) hits.
                for s in lo..hi {
                    let d = Point::new(self.xs[s], self.ys[s]).dist_sq(query);
                    if d <= r_sq {
                        f(self.items[s], d);
                    }
                }
            }
        }
    }

    /// Indices of the `k` points nearest to `query`, sorted by ascending
    /// distance (ties broken by ascending index), excluding `exclude` if
    /// given (typically the query point's own index). Returns fewer than
    /// `k` entries only when the grid holds fewer points.
    ///
    /// Expands the scan ring geometrically until the `k`-th hit is
    /// confirmed inside the scanned radius, so the expected cost is
    /// `O(k + local density)` for uniform fields.
    pub fn k_nearest(&self, query: Point, k: usize, exclude: Option<u32>) -> Vec<u32> {
        let mut hits = Vec::new();
        let mut out = Vec::new();
        self.k_nearest_into(query, k, exclude, &mut hits, &mut out);
        out
    }

    /// [`SpatialGrid::k_nearest`] into caller-owned buffers: `out`
    /// receives the result (cleared first) and `hits` is distance-scratch
    /// whose contents are meaningless afterwards. Reusing both across a
    /// build loop removes the two allocations per query that dominated
    /// k-NN list construction.
    pub fn k_nearest_into(
        &self,
        query: Point,
        k: usize,
        exclude: Option<u32>,
        hits: &mut Vec<(f64, u32)>,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        let available = self.items.len() - usize::from(exclude.is_some() && !self.items.is_empty());
        let want = k.min(available);
        if want == 0 {
            return;
        }
        let mut radius = self.cell;
        loop {
            hits.clear();
            self.for_each_within_d(query, radius, |i, d| {
                if exclude != Some(i) {
                    hits.push((d, i));
                }
            });
            if hits.len() >= want {
                hits.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                hits.truncate(want);
                // The k-th hit is only confirmed nearest once it lies inside
                // the scanned ring: every unscanned point is farther than
                // `radius`, hence farther than the k-th hit.
                if hits[want - 1].0.sqrt() <= radius {
                    out.extend(hits.iter().map(|&(_, i)| i));
                    return;
                }
            }
            // Doubling terminates: once `radius` exceeds the distance to the
            // farthest indexed point, all points are hits and confirmed.
            radius *= 2.0;
        }
    }

    /// Index of the point nearest to `query`, or `None` if the grid is
    /// empty. Expands the search ring until a hit is confirmed closest.
    pub fn nearest(&self, query: Point) -> Option<u32> {
        if self.items.is_empty() {
            return None;
        }
        let mut radius = self.cell;
        let diag = {
            let w = self.cols as f64 * self.cell;
            let h = self.rows as f64 * self.cell;
            (w * w + h * h).sqrt() + self.cell
        };
        loop {
            let mut best: Option<(u32, f64)> = None;
            self.for_each_within_d(query, radius, |i, d| {
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((i, d));
                }
            });
            if let Some((i, d_sq)) = best {
                // A hit is only guaranteed nearest if it is within the
                // scanned radius (candidates outside the ring were skipped).
                if d_sq.sqrt() <= radius {
                    return Some(i);
                }
            }
            if radius > diag {
                // Fall back to a full scan; only reachable for queries far
                // outside the indexed extent. Ties resolve to the smallest
                // original index (matching the pre-SoA first-wins scan in
                // index order), so the permuted slot order is invisible.
                let mut best: Option<(f64, u32)> = None;
                for s in 0..self.items.len() {
                    let d = Point::new(self.xs[s], self.ys[s]).dist_sq(query);
                    let i = self.items[s];
                    if best.is_none_or(|(bd, bi)| d < bd || (d == bd && i < bi)) {
                        best = Some((d, i));
                    }
                }
                return best.map(|(_, i)| i);
            }
            radius *= 2.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(5.0, 5.0),
            Point::new(5.2, 5.1),
            Point::new(20.0, 20.0),
        ]
    }

    #[test]
    fn neighbors_match_brute_force() {
        let pts = cluster();
        let grid = SpatialGrid::build(&pts, 3.0);
        for &q in &pts {
            for &r in &[0.5, 1.0, 3.0, 7.5, 100.0] {
                let mut got = grid.neighbors_within(q, r);
                got.sort_unstable();
                let mut want: Vec<u32> = pts
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.dist(q) <= r)
                    .map(|(i, _)| i as u32)
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "query {q} radius {r}");
            }
        }
    }

    #[test]
    fn radius_larger_than_cell_is_exhaustive() {
        let pts: Vec<Point> = (0..50).map(|i| Point::new(i as f64, 0.0)).collect();
        let grid = SpatialGrid::build(&pts, 1.0);
        let found = grid.neighbors_within(Point::new(25.0, 0.0), 10.0);
        assert_eq!(found.len(), 21, "±10 around 25 inclusive");
    }

    #[test]
    fn nearest_picks_closest() {
        let pts = cluster();
        let grid = SpatialGrid::build(&pts, 3.0);
        assert_eq!(grid.nearest(Point::new(0.4, 0.0)), Some(0));
        assert_eq!(grid.nearest(Point::new(0.6, 0.0)), Some(1));
        assert_eq!(grid.nearest(Point::new(19.0, 19.0)), Some(4));
        // Query far outside the extent still resolves.
        assert_eq!(grid.nearest(Point::new(-100.0, -100.0)), Some(0));
    }

    #[test]
    fn empty_grid() {
        let grid = SpatialGrid::build(&[], 1.0);
        assert!(grid.is_empty());
        assert!(grid.neighbors_within(Point::ORIGIN, 10.0).is_empty());
        assert_eq!(grid.nearest(Point::ORIGIN), None);
    }

    #[test]
    fn single_point_grid() {
        let grid = SpatialGrid::build(&[Point::new(3.0, 4.0)], 2.0);
        assert_eq!(grid.len(), 1);
        assert_eq!(grid.nearest(Point::ORIGIN), Some(0));
        assert_eq!(grid.neighbors_within(Point::ORIGIN, 5.0), vec![0]);
        assert!(grid.neighbors_within(Point::ORIGIN, 4.9).is_empty());
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn zero_cell_panics() {
        SpatialGrid::build(&[Point::ORIGIN], 0.0);
    }

    fn brute_k_nearest(pts: &[Point], q: Point, k: usize, exclude: Option<u32>) -> Vec<u32> {
        let mut all: Vec<(f64, u32)> = pts
            .iter()
            .enumerate()
            .filter(|(i, _)| exclude != Some(*i as u32))
            .map(|(i, p)| (p.dist_sq(q), i as u32))
            .collect();
        all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        all.truncate(k);
        all.into_iter().map(|(_, i)| i).collect()
    }

    #[test]
    fn k_nearest_matches_brute_force() {
        // Deterministic pseudo-random scatter (LCG) over a 100 m square.
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0
        };
        let pts: Vec<Point> = (0..80).map(|_| Point::new(next(), next())).collect();
        let grid = SpatialGrid::build(&pts, 10.0);
        for qi in [0usize, 7, 33, 79] {
            for k in [1usize, 3, 8, 80, 200] {
                let got = grid.k_nearest(pts[qi], k, Some(qi as u32));
                let want = brute_k_nearest(&pts, pts[qi], k, Some(qi as u32));
                assert_eq!(got, want, "query {qi} k {k}");
            }
        }
        // Without exclusion the query point itself leads the list.
        assert_eq!(grid.k_nearest(pts[5], 1, None), vec![5]);
    }

    #[test]
    fn k_nearest_far_outside_extent() {
        let pts = cluster();
        let grid = SpatialGrid::build(&pts, 3.0);
        let q = Point::new(-500.0, -500.0);
        assert_eq!(
            grid.k_nearest(q, 2, None),
            brute_k_nearest(&pts, q, 2, None)
        );
    }

    #[test]
    fn k_nearest_empty_and_tiny() {
        let empty = SpatialGrid::build(&[], 1.0);
        assert!(empty.k_nearest(Point::ORIGIN, 3, None).is_empty());
        let single = SpatialGrid::build(&[Point::new(3.0, 4.0)], 2.0);
        assert_eq!(single.k_nearest(Point::ORIGIN, 5, None), vec![0]);
        assert!(single.k_nearest(Point::ORIGIN, 5, Some(0)).is_empty());
    }

    #[test]
    fn k_nearest_k_at_least_n_returns_everything_sorted() {
        let pts = cluster();
        let grid = SpatialGrid::build(&pts, 3.0);
        let q = Point::new(4.0, 4.0);
        // k == n, k == n+1 and k >> n all return the full set in the same
        // distance-then-index order.
        let want = brute_k_nearest(&pts, q, pts.len(), None);
        for k in [pts.len(), pts.len() + 1, 10 * pts.len()] {
            assert_eq!(grid.k_nearest(q, k, None), want, "k = {k}");
        }
        // With an exclusion, k >= n yields exactly n - 1 hits.
        let got = grid.k_nearest(q, pts.len() + 3, Some(2));
        assert_eq!(got.len(), pts.len() - 1);
        assert!(!got.contains(&2));
    }

    #[test]
    fn k_nearest_k_zero_is_empty() {
        let pts = cluster();
        let grid = SpatialGrid::build(&pts, 3.0);
        assert!(grid.k_nearest(Point::ORIGIN, 0, None).is_empty());
        assert!(grid.k_nearest(Point::ORIGIN, 0, Some(0)).is_empty());
        assert!(grid.k_nearest(Point::new(-500.0, 80.0), 0, None).is_empty());
    }

    #[test]
    fn k_nearest_duplicate_and_colocated_points() {
        // Three copies of the same point plus two distinct ones: exact
        // distance ties must resolve by ascending index, and an excluded
        // duplicate must not drag its co-located twins out with it.
        let pts = vec![
            Point::new(5.0, 5.0),
            Point::new(5.0, 5.0),
            Point::new(5.0, 5.0),
            Point::new(6.0, 5.0),
            Point::new(50.0, 50.0),
        ];
        let grid = SpatialGrid::build(&pts, 2.0);
        let q = Point::new(5.0, 5.0);
        assert_eq!(grid.k_nearest(q, 3, None), vec![0, 1, 2]);
        assert_eq!(grid.k_nearest(q, 3, Some(1)), vec![0, 2, 3]);
        assert_eq!(
            grid.k_nearest(q, 5, Some(0)),
            brute_k_nearest(&pts, q, 5, Some(0))
        );
        // Querying from a co-located duplicate's own index behaves like any
        // other exclusion.
        assert_eq!(grid.k_nearest(pts[2], 2, Some(2)), vec![0, 1]);
    }

    #[test]
    fn k_nearest_queries_outside_grid_bounds() {
        let pts = cluster();
        let grid = SpatialGrid::build(&pts, 3.0);
        // Queries beyond every edge and corner of the indexed extent: the
        // ring expansion must still find the true k nearest.
        for q in [
            Point::new(-40.0, 10.0),
            Point::new(60.0, 10.0),
            Point::new(10.0, -40.0),
            Point::new(10.0, 60.0),
            Point::new(-300.0, 700.0),
            Point::new(1e4, 1e4),
        ] {
            for k in [1usize, 2, 5] {
                assert_eq!(
                    grid.k_nearest(q, k, None),
                    brute_k_nearest(&pts, q, k, None),
                    "query {q} k {k}"
                );
            }
        }
    }
}
