//! Polyline and tour length helpers plus arc-length parameterization.
//!
//! The mobile collector's trajectory is a closed polyline through the sink
//! and the polling points; `mdg-sim` moves the collector along it by
//! arc-length.

use crate::point::Point;

/// Total length of the open path `p₀ → p₁ → … → pₖ`.
pub fn open_path_length(path: &[Point]) -> f64 {
    path.windows(2).map(|w| w[0].dist(w[1])).sum()
}

/// Total length of the closed tour `p₀ → p₁ → … → pₖ → p₀`.
/// A tour of fewer than two points has length 0.
pub fn closed_tour_length(tour: &[Point]) -> f64 {
    if tour.len() < 2 {
        return 0.0;
    }
    open_path_length(tour) + tour[tour.len() - 1].dist(tour[0])
}

/// A point set sampled along a (closed or open) polyline, addressable by
/// arc-length. Construction is `O(k)`; lookups are `O(log k)`.
#[derive(Debug, Clone)]
pub struct ArcLengthPath {
    vertices: Vec<Point>,
    /// `cum[i]` = arc-length from the start to `vertices[i]`.
    cum: Vec<f64>,
    closed: bool,
}

impl ArcLengthPath {
    /// Builds an arc-length parameterization. `closed` appends the implicit
    /// returning edge `pₖ → p₀`.
    ///
    /// # Panics
    /// Panics on an empty vertex list.
    pub fn new(vertices: &[Point], closed: bool) -> Self {
        assert!(!vertices.is_empty(), "path needs at least one vertex");
        let mut cum = Vec::with_capacity(vertices.len() + 1);
        cum.push(0.0);
        for w in vertices.windows(2) {
            cum.push(cum.last().unwrap() + w[0].dist(w[1]));
        }
        if closed && vertices.len() > 1 {
            cum.push(cum.last().unwrap() + vertices[vertices.len() - 1].dist(vertices[0]));
        }
        ArcLengthPath {
            vertices: vertices.to_vec(),
            cum,
            closed,
        }
    }

    /// Total path length.
    pub fn length(&self) -> f64 {
        *self.cum.last().unwrap()
    }

    /// Number of vertices (excluding the implicit closing repeat).
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// The vertices the path was built from.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Returns `true` if the path closes back on its first vertex.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Arc-length position of vertex `i` from the start.
    pub fn arclen_of_vertex(&self, i: usize) -> f64 {
        self.cum[i]
    }

    /// Point at arc-length `s` from the start. `s` is clamped to
    /// `[0, length]`.
    pub fn point_at(&self, s: f64) -> Point {
        let s = s.clamp(0.0, self.length());
        // Find the segment containing s: cum[i] <= s <= cum[i+1].
        let i = match self.cum.binary_search_by(|c| c.partial_cmp(&s).unwrap()) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        if i + 1 >= self.cum.len() {
            return if self.closed && self.vertices.len() > 1 {
                self.vertices[0]
            } else {
                *self.vertices.last().unwrap()
            };
        }
        let a = self.vertices[i % self.vertices.len()];
        let b = self.vertices[(i + 1) % self.vertices.len()];
        let seg_len = self.cum[i + 1] - self.cum[i];
        if seg_len < crate::EPS {
            return a;
        }
        a.lerp(b, (s - self.cum[i]) / seg_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn l_path() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(3.0, 4.0),
        ]
    }

    #[test]
    fn open_and_closed_lengths() {
        let p = l_path();
        assert!(approx_eq(open_path_length(&p), 7.0));
        assert!(approx_eq(closed_tour_length(&p), 12.0), "7 + hypotenuse 5");
        assert!(approx_eq(closed_tour_length(&[Point::ORIGIN]), 0.0));
        assert!(approx_eq(open_path_length(&[]), 0.0));
    }

    #[test]
    fn two_point_closed_tour_is_out_and_back() {
        let tour = [Point::new(0.0, 0.0), Point::new(5.0, 0.0)];
        assert!(approx_eq(closed_tour_length(&tour), 10.0));
    }

    #[test]
    fn arclen_path_open() {
        let path = ArcLengthPath::new(&l_path(), false);
        assert!(approx_eq(path.length(), 7.0));
        assert_eq!(path.point_at(0.0), Point::new(0.0, 0.0));
        assert_eq!(path.point_at(1.5), Point::new(1.5, 0.0));
        assert_eq!(path.point_at(3.0), Point::new(3.0, 0.0));
        assert_eq!(path.point_at(5.0), Point::new(3.0, 2.0));
        assert_eq!(path.point_at(7.0), Point::new(3.0, 4.0));
        // Clamped beyond the end.
        assert_eq!(path.point_at(100.0), Point::new(3.0, 4.0));
        assert_eq!(path.point_at(-5.0), Point::new(0.0, 0.0));
    }

    #[test]
    fn arclen_path_closed_wraps_to_start() {
        let path = ArcLengthPath::new(&l_path(), true);
        assert!(approx_eq(path.length(), 12.0));
        // Halfway down the closing hypotenuse.
        let p = path.point_at(7.0 + 2.5);
        assert!(approx_eq(p.dist(Point::new(1.5, 2.0)), 0.0));
        assert_eq!(path.point_at(12.0), Point::new(0.0, 0.0));
    }

    #[test]
    fn arclen_of_vertices_monotone() {
        let path = ArcLengthPath::new(&l_path(), true);
        assert!(approx_eq(path.arclen_of_vertex(0), 0.0));
        assert!(approx_eq(path.arclen_of_vertex(1), 3.0));
        assert!(approx_eq(path.arclen_of_vertex(2), 7.0));
    }

    #[test]
    fn single_vertex_path() {
        let path = ArcLengthPath::new(&[Point::new(2.0, 2.0)], true);
        assert!(approx_eq(path.length(), 0.0));
        assert_eq!(path.point_at(0.0), Point::new(2.0, 2.0));
        assert_eq!(path.point_at(10.0), Point::new(2.0, 2.0));
    }

    #[test]
    fn repeated_vertices_do_not_break_lookup() {
        let path = ArcLengthPath::new(&[Point::ORIGIN, Point::ORIGIN, Point::new(4.0, 0.0)], false);
        assert!(approx_eq(path.length(), 4.0));
        assert_eq!(path.point_at(2.0), Point::new(2.0, 0.0));
    }
}
