//! Axis-aligned bounding boxes, used to describe deployment fields.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box `[min.x, max.x] × [min.y, max.y]`.
///
/// The deployment field of a sensor network (e.g. a 200 m × 200 m square) is
/// represented by an `Aabb`; all deployment generators sample inside one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    pub min: Point,
    pub max: Point,
}

impl Aabb {
    /// Creates a box from corner points; coordinates are swapped if needed
    /// so that `min ≤ max` holds component-wise.
    pub fn new(a: Point, b: Point) -> Self {
        Aabb {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// A square field `[0, side] × [0, side]` — the standard deployment
    /// area shape in the paper's evaluation.
    pub fn square(side: f64) -> Self {
        assert!(side >= 0.0, "field side must be non-negative");
        Aabb::new(Point::ORIGIN, Point::new(side, side))
    }

    /// Width along the x-axis.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along the y-axis.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the box.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center of the box — the default sink location in the evaluation.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Returns `true` if `p` lies inside the box (boundary inclusive).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Smallest box containing both `self` and `other`.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Box grown by `margin` on every side. A negative margin shrinks the
    /// box; the result is clamped so it never inverts.
    pub fn expanded(&self, margin: f64) -> Aabb {
        let min = Point::new(self.min.x - margin, self.min.y - margin);
        let max = Point::new(self.max.x + margin, self.max.y + margin);
        if min.x > max.x || min.y > max.y {
            let c = self.center();
            Aabb { min: c, max: c }
        } else {
            Aabb { min, max }
        }
    }

    /// Clamps `p` into the box.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Smallest box containing all `points`; `None` for an empty slice.
    pub fn from_points(points: &[Point]) -> Option<Aabb> {
        let first = *points.first()?;
        let mut bb = Aabb {
            min: first,
            max: first,
        };
        for &p in &points[1..] {
            bb.min.x = bb.min.x.min(p.x);
            bb.min.y = bb.min.y.min(p.y);
            bb.max.x = bb.max.x.max(p.x);
            bb.max.y = bb.max.y.max(p.y);
        }
        Some(bb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn square_field() {
        let f = Aabb::square(200.0);
        assert!(approx_eq(f.width(), 200.0));
        assert!(approx_eq(f.height(), 200.0));
        assert!(approx_eq(f.area(), 40_000.0));
        assert_eq!(f.center(), Point::new(100.0, 100.0));
    }

    #[test]
    fn new_normalizes_corners() {
        let b = Aabb::new(Point::new(5.0, -1.0), Point::new(-2.0, 3.0));
        assert_eq!(b.min, Point::new(-2.0, -1.0));
        assert_eq!(b.max, Point::new(5.0, 3.0));
    }

    #[test]
    fn contains_boundary_inclusive() {
        let b = Aabb::square(10.0);
        assert!(b.contains(Point::new(0.0, 0.0)));
        assert!(b.contains(Point::new(10.0, 10.0)));
        assert!(b.contains(Point::new(5.0, 5.0)));
        assert!(!b.contains(Point::new(10.1, 5.0)));
        assert!(!b.contains(Point::new(5.0, -0.1)));
    }

    #[test]
    fn union_covers_both() {
        let a = Aabb::square(2.0);
        let b = Aabb::new(Point::new(5.0, 5.0), Point::new(7.0, 9.0));
        let u = a.union(&b);
        assert!(u.contains(Point::new(0.0, 0.0)));
        assert!(u.contains(Point::new(7.0, 9.0)));
        assert_eq!(u.min, Point::ORIGIN);
        assert_eq!(u.max, Point::new(7.0, 9.0));
    }

    #[test]
    fn expanded_and_shrunk() {
        let b = Aabb::square(10.0);
        let grown = b.expanded(2.0);
        assert_eq!(grown.min, Point::new(-2.0, -2.0));
        assert_eq!(grown.max, Point::new(12.0, 12.0));
        // Shrinking past inversion collapses to the center.
        let collapsed = b.expanded(-100.0);
        assert_eq!(collapsed.min, collapsed.max);
        assert_eq!(collapsed.min, b.center());
    }

    #[test]
    fn clamp_into_box() {
        let b = Aabb::square(10.0);
        assert_eq!(b.clamp(Point::new(-5.0, 20.0)), Point::new(0.0, 10.0));
        assert_eq!(b.clamp(Point::new(3.0, 4.0)), Point::new(3.0, 4.0));
    }

    #[test]
    fn from_points_bounds() {
        assert!(Aabb::from_points(&[]).is_none());
        let pts = [
            Point::new(1.0, 7.0),
            Point::new(-3.0, 2.0),
            Point::new(4.0, 5.0),
        ];
        let b = Aabb::from_points(&pts).unwrap();
        assert_eq!(b.min, Point::new(-3.0, 2.0));
        assert_eq!(b.max, Point::new(4.0, 7.0));
    }
}
