//! # mdg-geom — 2-D computational geometry substrate
//!
//! Geometry primitives used throughout the `mobile-collectors` workspace:
//! points, segments, axis-aligned boxes, convex hulls, polylines/tours, a
//! uniform spatial hash grid for fixed-radius neighbor queries, and dense
//! symmetric distance matrices.
//!
//! Everything here is deliberately dependency-free (besides `serde` for
//! config/result serialization) and operates on `f64` coordinates in meters,
//! matching the units used by the paper's evaluation (fields of 100–500 m,
//! transmission ranges of 20–50 m).
//!
//! ## Conventions
//!
//! * Coordinates are finite `f64` values. Generators in `mdg-net` only ever
//!   produce finite coordinates; functions here assume finiteness and are
//!   checked by debug assertions where cheap.
//! * Distances are Euclidean. Squared distances are used in hot paths
//!   (neighbor queries, unit-disk graph construction) to avoid `sqrt`.

pub mod bbox;
pub mod distmat;
pub mod grid;
pub mod hull;
pub mod point;
pub mod polyline;
pub mod segment;
pub mod tiles;

pub use bbox::Aabb;
pub use distmat::DistMatrix;
pub use grid::SpatialGrid;
pub use hull::{convex_hull, hull_perimeter};
pub use point::centroid;
pub use point::Point;
pub use polyline::{closed_tour_length, open_path_length, ArcLengthPath};
pub use segment::Segment;
pub use tiles::Tiling;

/// Absolute tolerance used by approximate floating-point comparisons in
/// tests and geometric predicates. One nanometre is far below any
/// meaningful scale for a field measured in meters.
pub const EPS: f64 = 1e-9;

/// Returns `true` if two floats are within [`EPS`] plus a relative tolerance
/// proportional to their magnitude.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    let diff = (a - b).abs();
    diff <= EPS || diff <= f64::max(a.abs(), b.abs()) * 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0));
        assert!(approx_eq(1.0, 1.0 + 1e-13));
        assert!(!approx_eq(1.0, 1.001));
        assert!(approx_eq(0.0, 1e-10));
    }

    #[test]
    fn approx_eq_large_magnitude() {
        let a = 1e12;
        assert!(approx_eq(a, a + 0.0001));
        assert!(!approx_eq(a, a * 1.01));
    }
}
