//! Dense symmetric distance matrices with condensed (triangular) storage.
//!
//! TSP heuristics query pairwise distances `O(n²)`–`O(n³)` times per plan;
//! precomputing them once into a flat triangle halves memory versus a full
//! square matrix and avoids repeated `sqrt` calls.

use crate::point::Point;

/// A symmetric `n × n` distance matrix storing only the strict upper
/// triangle (the diagonal is implicitly zero).
#[derive(Debug, Clone)]
pub struct DistMatrix {
    n: usize,
    /// Condensed row-major upper triangle: entry `(i, j)` with `i < j` lives
    /// at `i*(2n - i - 1)/2 + (j - i - 1)`.
    data: Vec<f64>,
}

impl DistMatrix {
    /// Builds the pairwise Euclidean distance matrix of `points`.
    ///
    /// Rows are computed in parallel in fixed blocks; every entry is the
    /// same `points[i].dist(points[j])` expression regardless of thread
    /// count, so the resulting matrix is bit-identical to a sequential
    /// build.
    pub fn from_points(points: &[Point]) -> Self {
        let n = points.len();
        let mut sp = mdg_obs::span("distmat");
        sp.add_items((n.saturating_sub(1) * n / 2) as u64);
        const ROW_BLOCK: usize = 64;
        let blocks = mdg_par::par_chunks(n, ROW_BLOCK, |rows| {
            let mut part = Vec::new();
            for i in rows {
                for j in (i + 1)..n {
                    part.push(points[i].dist(points[j]));
                }
            }
            part
        });
        let mut data = Vec::with_capacity(n.saturating_sub(1) * n / 2);
        for part in blocks {
            data.extend_from_slice(&part);
        }
        DistMatrix { n, data }
    }

    /// Builds a matrix from an explicit symmetric cost function.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(n: usize, mut cost: F) -> Self {
        let mut data = Vec::with_capacity(n.saturating_sub(1) * n / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                data.push(cost(i, j));
            }
        }
        DistMatrix { n, data }
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn tri_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        i * (2 * self.n - i - 1) / 2 + (j - i - 1)
    }

    /// Distance between `i` and `j` (0 when `i == j`).
    ///
    /// # Panics
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        use std::cmp::Ordering;
        match i.cmp(&j) {
            Ordering::Equal => 0.0,
            Ordering::Less => self.data[self.tri_index(i, j)],
            Ordering::Greater => self.data[self.tri_index(j, i)],
        }
    }

    /// The largest pairwise distance (0 for n < 2).
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }

    /// Index of the point in `candidates` closest to `from`, or `None` if
    /// `candidates` is empty.
    pub fn nearest_among(&self, from: usize, candidates: &[usize]) -> Option<usize> {
        candidates
            .iter()
            .copied()
            .min_by(|&a, &b| self.get(from, a).partial_cmp(&self.get(from, b)).unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn unit_square() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ]
    }

    #[test]
    fn matches_pairwise_distances() {
        let pts = unit_square();
        let m = DistMatrix::from_points(&pts);
        assert_eq!(m.n(), 4);
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    approx_eq(m.get(i, j), pts[i].dist(pts[j])),
                    "entry ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn symmetry_and_zero_diagonal() {
        let pts = unit_square();
        let m = DistMatrix::from_points(&pts);
        for i in 0..4 {
            assert!(approx_eq(m.get(i, i), 0.0));
            for j in 0..4 {
                assert!(approx_eq(m.get(i, j), m.get(j, i)));
            }
        }
    }

    #[test]
    fn max_is_diagonal_of_square() {
        let m = DistMatrix::from_points(&unit_square());
        assert!(approx_eq(m.max(), 2.0_f64.sqrt()));
    }

    #[test]
    fn from_fn_explicit_costs() {
        let m = DistMatrix::from_fn(3, |i, j| (i + j) as f64);
        assert!(approx_eq(m.get(0, 1), 1.0));
        assert!(approx_eq(m.get(1, 2), 3.0));
        assert!(approx_eq(m.get(2, 0), 2.0));
    }

    #[test]
    fn nearest_among_candidates() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(0.5, 0.0),
        ];
        let m = DistMatrix::from_points(&pts);
        assert_eq!(m.nearest_among(0, &[1, 2, 3]), Some(3));
        assert_eq!(m.nearest_among(2, &[0, 1]), Some(1));
        assert_eq!(m.nearest_among(0, &[]), None);
    }

    #[test]
    fn tiny_matrices() {
        let m = DistMatrix::from_points(&[]);
        assert_eq!(m.n(), 0);
        assert!(approx_eq(m.max(), 0.0));
        let m1 = DistMatrix::from_points(&[Point::ORIGIN]);
        assert_eq!(m1.n(), 1);
        assert!(approx_eq(m1.get(0, 0), 0.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let m = DistMatrix::from_points(&unit_square());
        m.get(0, 4);
    }
}
