//! 2-D points with the usual vector arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point (or displacement vector) in the plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`. Prefer this in hot loops and
    /// when only comparisons are needed.
    #[inline]
    pub fn dist_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Length of this point interpreted as a vector from the origin.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.dist(Point::ORIGIN)
    }

    /// Squared length of this point interpreted as a vector.
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(&self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (the `z` component of the 3-D cross product).
    /// Positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(&self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    /// `t` may lie outside `[0, 1]`, in which case the result extrapolates.
    #[inline]
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// Angle of the vector from the origin to this point, in radians in
    /// `(-π, π]`.
    #[inline]
    pub fn angle(&self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Unit vector in the direction of `self`, or `None` for a (near-)zero
    /// vector.
    pub fn normalized(&self) -> Option<Point> {
        let n = self.norm();
        if n < crate::EPS {
            None
        } else {
            Some(Point::new(self.x / n, self.y / n))
        }
    }

    /// Returns `true` if both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// The point advanced from `self` towards `target` by `step` meters.
    /// If `step` exceeds the remaining distance the result is `target`
    /// (no overshoot) — this is the motion primitive used by the mobile
    /// collector kinematics in `mdg-sim`.
    pub fn step_towards(&self, target: Point, step: f64) -> Point {
        debug_assert!(step >= 0.0, "step must be non-negative");
        let d = self.dist(target);
        if d <= step || d < crate::EPS {
            target
        } else {
            self.lerp(target, step / d)
        }
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Point) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Point) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

/// Centroid of a non-empty point set. Returns the origin for an empty slice.
pub fn centroid(points: &[Point]) -> Point {
    if points.is_empty() {
        return Point::ORIGIN;
    }
    let sum = points.iter().fold(Point::ORIGIN, |acc, &p| acc + p);
    sum / points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn distance_345() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!(approx_eq(a.dist(b), 5.0));
        assert!(approx_eq(a.dist_sq(b), 25.0));
        assert!(approx_eq(b.dist(a), 5.0), "distance is symmetric");
    }

    #[test]
    fn arithmetic_ops() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -0.5));
        assert_eq!(-a, Point::new(-1.0, -2.0));
        let mut c = a;
        c += b;
        assert_eq!(c, Point::new(4.0, 1.0));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn dot_and_cross() {
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        assert!(approx_eq(a.dot(b), 0.0));
        assert!(approx_eq(a.cross(b), 1.0), "ccw is positive");
        assert!(approx_eq(b.cross(a), -1.0), "cw is negative");
        assert!(approx_eq(a.dot(a), 1.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.midpoint(b), Point::new(5.0, -2.0));
    }

    #[test]
    fn normalized_zero_vector_is_none() {
        assert!(Point::ORIGIN.normalized().is_none());
        let u = Point::new(3.0, 4.0).normalized().unwrap();
        assert!(approx_eq(u.norm(), 1.0));
    }

    #[test]
    fn step_towards_no_overshoot() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        assert_eq!(a.step_towards(b, 4.0), Point::new(4.0, 0.0));
        // Stepping past the target lands exactly on the target.
        assert_eq!(a.step_towards(b, 100.0), b);
        // Zero-length step stays put.
        assert_eq!(a.step_towards(b, 0.0), a);
        // Stepping from the target stays at the target.
        assert_eq!(b.step_towards(b, 5.0), b);
    }

    #[test]
    fn angle_quadrants() {
        assert!(approx_eq(Point::new(1.0, 0.0).angle(), 0.0));
        assert!(approx_eq(
            Point::new(0.0, 1.0).angle(),
            std::f64::consts::FRAC_PI_2
        ));
        assert!(approx_eq(
            Point::new(-1.0, 0.0).angle(),
            std::f64::consts::PI
        ));
    }

    #[test]
    fn centroid_of_square() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        assert_eq!(centroid(&pts), Point::new(1.0, 1.0));
        assert_eq!(centroid(&[]), Point::ORIGIN);
    }
}
