//! Square tiling of a point set for hierarchical (divide-and-conquer)
//! planning.
//!
//! Where [`crate::grid::SpatialGrid`] buckets points for *neighbor
//! queries* (cells sized to the query radius), [`Tiling`] partitions the
//! field into coarse square tiles so that each tile can be planned as an
//! independent sub-problem. The two share the same CSR counting-sort
//! layout, which keeps point indices ascending inside every bucket and
//! makes iteration order — and anything derived from it — deterministic.

use crate::bbox::Aabb;
use crate::point::Point;

/// A partition of a point set into square tiles on a row-major lattice.
///
/// Every point belongs to exactly one tile (boundary points go to the
/// tile whose half-open cell `[k·side, (k+1)·side)` contains them, with
/// the top/right edges clamped into the last row/column). Within a tile,
/// point indices are in ascending order; tiles are indexed row-major from
/// the bottom-left corner of the bounding box.
///
/// ```
/// use mdg_geom::{Point, Tiling};
///
/// let pts = [Point::new(0.0, 0.0), Point::new(95.0, 5.0), Point::new(5.0, 95.0)];
/// let tiling = Tiling::build(&pts, 50.0);
/// assert_eq!(tiling.n_tiles(), 4);
/// assert_eq!(tiling.points_in(0), &[0]);
/// assert_eq!(tiling.points_in(1), &[1]);
/// assert_eq!(tiling.non_empty().count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Tiling {
    side: f64,
    cols: usize,
    rows: usize,
    origin: Point,
    /// CSR-style bucket layout: `starts[t]..starts[t+1]` indexes into `items`.
    starts: Vec<u32>,
    items: Vec<u32>,
}

impl Tiling {
    /// Partitions `points` into square tiles of the given `side` length.
    ///
    /// The requested side is a lower bound: like [`crate::SpatialGrid`],
    /// the tile count is capped at roughly one tile per point (minimum
    /// 64) so a tiny side over a huge field cannot allocate an absurd
    /// lattice; the side grows to meet the cap.
    ///
    /// # Panics
    /// Panics if `side` is not strictly positive and finite.
    pub fn build(points: &[Point], side: f64) -> Self {
        assert!(
            side > 0.0 && side.is_finite(),
            "tile side must be positive and finite"
        );
        let bb = Aabb::from_points(points).unwrap_or(Aabb {
            min: Point::ORIGIN,
            max: Point::ORIGIN,
        });
        let origin = bb.min;
        let max_tiles = points.len().max(64);
        let min_side = (bb.width().max(1e-12) * bb.height().max(1e-12) / max_tiles as f64).sqrt();
        let side = side.max(min_side);
        let cols = ((bb.width() / side).floor() as usize + 1).max(1);
        let rows = ((bb.height() / side).floor() as usize + 1).max(1);
        let n_tiles = cols * rows;

        let tiling = Tiling {
            side,
            cols,
            rows,
            origin,
            starts: Vec::new(),
            items: Vec::new(),
        };
        // Two-pass counting sort into CSR buckets; indices stay ascending
        // within each tile because both passes scan `points` in order.
        let mut counts = vec![0u32; n_tiles + 1];
        for &p in points {
            counts[tiling.tile_of(p) + 1] += 1;
        }
        for t in 0..n_tiles {
            counts[t + 1] += counts[t];
        }
        let starts = counts.clone();
        let mut cursor = counts;
        let mut items = vec![0u32; points.len()];
        for (i, &p) in points.iter().enumerate() {
            let t = tiling.tile_of(p);
            items[cursor[t] as usize] = i as u32;
            cursor[t] += 1;
        }
        Tiling {
            starts,
            items,
            ..tiling
        }
    }

    /// The tile that owns position `p`: the half-open lattice cell
    /// containing it, clamped into the lattice for positions on (or
    /// beyond) the top/right edges of the bounding box the tiling was
    /// built from. This is the same mapping the constructor bucketed with,
    /// so for any point of the original set it returns the tile whose
    /// [`Tiling::points_in`] bucket holds it — and it extends to *new*
    /// positions (sensors added after the tiling was built), which is what
    /// lets an incremental planner route a delta to its dirty tile.
    pub fn tile_of(&self, p: Point) -> usize {
        let tx = (((p.x - self.origin.x) / self.side).floor() as usize).min(self.cols - 1);
        let ty = (((p.y - self.origin.y) / self.side).floor() as usize).min(self.rows - 1);
        ty * self.cols + tx
    }

    /// The effective tile side length (≥ the requested side when the
    /// tile-count cap kicked in).
    pub fn side(&self) -> f64 {
        self.side
    }

    /// Number of tile columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of tile rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of tiles (including empty ones).
    pub fn n_tiles(&self) -> usize {
        self.cols * self.rows
    }

    /// Indices of the points in tile `t`, ascending.
    pub fn points_in(&self, t: usize) -> &[u32] {
        &self.items[self.starts[t] as usize..self.starts[t + 1] as usize]
    }

    /// Center of tile `t` in field coordinates.
    pub fn tile_center(&self, t: usize) -> Point {
        let tx = t % self.cols;
        let ty = t / self.cols;
        Point::new(
            self.origin.x + (tx as f64 + 0.5) * self.side,
            self.origin.y + (ty as f64 + 0.5) * self.side,
        )
    }

    /// Tiles in boustrophedon (serpentine) order: row 0 left-to-right,
    /// row 1 right-to-left, and so on. Consecutive tiles in this order are
    /// lattice neighbors, which keeps the seams short when sub-tours are
    /// concatenated along it.
    pub fn serpentine(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.rows).flat_map(move |r| {
            let base = r * self.cols;
            (0..self.cols).map(move |c| {
                if r % 2 == 0 {
                    base + c
                } else {
                    base + (self.cols - 1 - c)
                }
            })
        })
    }

    /// Indices of non-empty tiles, in serpentine order.
    pub fn non_empty(&self) -> impl Iterator<Item = usize> + '_ {
        self.serpentine()
            .filter(move |&t| self.starts[t + 1] > self.starts[t])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn every_point_lands_in_exactly_one_tile() {
        let points = pts(&[
            (0.0, 0.0),
            (10.0, 10.0),
            (99.0, 1.0),
            (1.0, 99.0),
            (99.0, 99.0),
            (50.0, 50.0),
        ]);
        let tiling = Tiling::build(&points, 25.0);
        let mut seen = vec![false; points.len()];
        for t in 0..tiling.n_tiles() {
            for &i in tiling.points_in(t) {
                assert!(!seen[i as usize], "point {i} bucketed twice");
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every point must be bucketed");
    }

    #[test]
    fn indices_ascend_within_each_tile() {
        let points = pts(&[(1.0, 1.0), (2.0, 2.0), (80.0, 80.0), (3.0, 3.0)]);
        let tiling = Tiling::build(&points, 50.0);
        for t in 0..tiling.n_tiles() {
            let bucket = tiling.points_in(t);
            assert!(
                bucket.windows(2).all(|w| w[0] < w[1]),
                "tile {t}: {bucket:?}"
            );
        }
        assert_eq!(tiling.points_in(0), &[0, 1, 3]);
    }

    #[test]
    fn serpentine_visits_every_tile_once_and_alternates() {
        let points = pts(&[(0.0, 0.0), (299.0, 299.0)]);
        let tiling = Tiling::build(&points, 100.0);
        assert_eq!((tiling.cols(), tiling.rows()), (3, 3));
        let order: Vec<usize> = tiling.serpentine().collect();
        assert_eq!(order, vec![0, 1, 2, 5, 4, 3, 6, 7, 8]);
    }

    #[test]
    fn tiny_side_is_capped_like_spatial_grid() {
        let points = pts(&[(0.0, 0.0), (300.0, 300.0), (150.0, 10.0)]);
        let tiling = Tiling::build(&points, 1e-6);
        assert!(tiling.n_tiles() <= 2 * points.len().max(64));
        assert!(tiling.side() > 1e-6);
    }

    #[test]
    fn degenerate_point_sets_build_a_single_tile() {
        for points in [vec![], pts(&[(5.0, 5.0)]), pts(&[(5.0, 5.0), (5.0, 5.0)])] {
            let tiling = Tiling::build(&points, 10.0);
            assert_eq!(tiling.n_tiles(), 1);
            assert_eq!(tiling.points_in(0).len(), points.len());
            assert_eq!(tiling.non_empty().count(), usize::from(!points.is_empty()));
        }
    }

    #[test]
    fn tile_centers_sit_inside_their_tiles() {
        let points = pts(&[(0.0, 0.0), (100.0, 70.0)]);
        let tiling = Tiling::build(&points, 30.0);
        for t in 0..tiling.n_tiles() {
            let c = tiling.tile_center(t);
            let tx = (((c.x - 0.0) / tiling.side()).floor() as usize).min(tiling.cols() - 1);
            let ty = (((c.y - 0.0) / tiling.side()).floor() as usize).min(tiling.rows() - 1);
            assert_eq!(ty * tiling.cols() + tx, t);
        }
    }
}
