//! Line segments: length, closest-point and distance queries, intersection.
//!
//! Segments are used by the CME baseline (straight mule tracks: each sensor
//! relays to the closest point on its track) and by tour rendering.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// A directed line segment from `a` to `b`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    pub a: Point,
    pub b: Point,
}

impl Segment {
    /// Creates a segment between two endpoints.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Euclidean length of the segment.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// The parameter `t ∈ [0, 1]` of the point on the segment closest to
    /// `p` (`0` ↦ `a`, `1` ↦ `b`). A degenerate segment returns `0`.
    pub fn closest_t(&self, p: Point) -> f64 {
        let ab = self.b - self.a;
        let len_sq = ab.norm_sq();
        if len_sq < crate::EPS * crate::EPS {
            return 0.0;
        }
        ((p - self.a).dot(ab) / len_sq).clamp(0.0, 1.0)
    }

    /// The point on the segment closest to `p`.
    pub fn closest_point(&self, p: Point) -> Point {
        self.a.lerp(self.b, self.closest_t(p))
    }

    /// Distance from `p` to the segment.
    pub fn dist_to_point(&self, p: Point) -> f64 {
        self.closest_point(p).dist(p)
    }

    /// Point at arc-length `s` from `a` along the segment, clamped to the
    /// segment.
    pub fn point_at_arclen(&self, s: f64) -> Point {
        let len = self.length();
        if len < crate::EPS {
            return self.a;
        }
        self.a.lerp(self.b, (s / len).clamp(0.0, 1.0))
    }

    /// The smallest parameter `t ∈ [0, 1]` at which the point moving from
    /// `a` to `b` enters the closed disk of `radius` around `center`, or
    /// `None` if the segment never touches the disk.
    ///
    /// Used by mobility models: "when does the mule first come within
    /// radio range of this sensor?"
    pub fn first_param_within(&self, center: Point, radius: f64) -> Option<f64> {
        debug_assert!(radius >= 0.0);
        // Already inside at the start.
        if self.a.dist_sq(center) <= radius * radius {
            return Some(0.0);
        }
        // Solve |a + t·d − c|² = r² for the smaller root in [0, 1].
        let d = self.b - self.a;
        let f = self.a - center;
        let qa = d.norm_sq();
        if qa < crate::EPS * crate::EPS {
            return None; // Degenerate segment, start was outside.
        }
        let qb = 2.0 * f.dot(d);
        let qc = f.norm_sq() - radius * radius;
        let disc = qb * qb - 4.0 * qa * qc;
        if disc < 0.0 {
            return None;
        }
        let t = (-qb - disc.sqrt()) / (2.0 * qa);
        (0.0..=1.0).contains(&t).then_some(t)
    }

    /// Proper-intersection test between two segments, counting touching
    /// endpoints and collinear overlap as intersections.
    pub fn intersects(&self, other: &Segment) -> bool {
        let d1 = orient(other.a, other.b, self.a);
        let d2 = orient(other.a, other.b, self.b);
        let d3 = orient(self.a, self.b, other.a);
        let d4 = orient(self.a, self.b, other.b);

        if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
        {
            return true;
        }
        (d1.abs() < crate::EPS && on_segment(other.a, other.b, self.a))
            || (d2.abs() < crate::EPS && on_segment(other.a, other.b, self.b))
            || (d3.abs() < crate::EPS && on_segment(self.a, self.b, other.a))
            || (d4.abs() < crate::EPS && on_segment(self.a, self.b, other.b))
    }
}

/// Twice the signed area of triangle `(a, b, c)`; positive when `c` lies to
/// the left of the directed line `a → b`.
#[inline]
fn orient(a: Point, b: Point, c: Point) -> f64 {
    (b - a).cross(c - a)
}

/// Assuming `p` is collinear with `a`–`b`, returns `true` if `p` lies within
/// the segment's bounding box.
fn on_segment(a: Point, b: Point, p: Point) -> bool {
    p.x >= a.x.min(b.x) - crate::EPS
        && p.x <= a.x.max(b.x) + crate::EPS
        && p.y >= a.y.min(b.y) - crate::EPS
        && p.y <= a.y.max(b.y) + crate::EPS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn length_and_arclen() {
        let s = seg(0.0, 0.0, 6.0, 8.0);
        assert!(approx_eq(s.length(), 10.0));
        assert_eq!(s.point_at_arclen(5.0), Point::new(3.0, 4.0));
        assert_eq!(s.point_at_arclen(0.0), s.a);
        assert_eq!(s.point_at_arclen(999.0), s.b, "arclen clamps to endpoint");
    }

    #[test]
    fn closest_point_interior_and_clamped() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        // Projection falls inside the segment.
        assert_eq!(s.closest_point(Point::new(3.0, 5.0)), Point::new(3.0, 0.0));
        assert!(approx_eq(s.dist_to_point(Point::new(3.0, 5.0)), 5.0));
        // Projection clamps to endpoint a.
        assert_eq!(s.closest_point(Point::new(-4.0, 3.0)), Point::new(0.0, 0.0));
        assert!(approx_eq(s.dist_to_point(Point::new(-4.0, 3.0)), 5.0));
        // Projection clamps to endpoint b.
        assert_eq!(
            s.closest_point(Point::new(14.0, -3.0)),
            Point::new(10.0, 0.0)
        );
    }

    #[test]
    fn degenerate_segment() {
        let s = seg(2.0, 2.0, 2.0, 2.0);
        assert!(approx_eq(s.length(), 0.0));
        assert_eq!(s.closest_point(Point::new(5.0, 6.0)), Point::new(2.0, 2.0));
        assert!(approx_eq(s.dist_to_point(Point::new(5.0, 6.0)), 5.0));
    }

    #[test]
    fn crossing_segments_intersect() {
        let s1 = seg(0.0, 0.0, 10.0, 10.0);
        let s2 = seg(0.0, 10.0, 10.0, 0.0);
        assert!(s1.intersects(&s2));
        assert!(s2.intersects(&s1));
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        let s1 = seg(0.0, 0.0, 10.0, 0.0);
        let s2 = seg(0.0, 1.0, 10.0, 1.0);
        assert!(!s1.intersects(&s2));
    }

    #[test]
    fn touching_endpoint_counts_as_intersection() {
        let s1 = seg(0.0, 0.0, 5.0, 0.0);
        let s2 = seg(5.0, 0.0, 5.0, 5.0);
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn first_param_within_disk() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        // Disk centered above the path at (5, 3), radius 5: entry where
        // (t·10 − 5)² + 9 = 25 ⇒ t·10 = 1 ⇒ t = 0.1.
        let t = s.first_param_within(Point::new(5.0, 3.0), 5.0).unwrap();
        assert!((t - 0.1).abs() < 1e-9, "got {t}");
        // Starting inside the disk: t = 0.
        assert_eq!(s.first_param_within(Point::new(1.0, 0.0), 2.0), Some(0.0));
        // Disk out of reach.
        assert_eq!(s.first_param_within(Point::new(5.0, 10.0), 3.0), None);
        // Disk behind the segment.
        assert_eq!(s.first_param_within(Point::new(-10.0, 0.0), 3.0), None);
        // Tangent contact counts.
        let tangent = s.first_param_within(Point::new(5.0, 3.0), 3.0).unwrap();
        assert!((tangent - 0.5).abs() < 1e-6);
        // Degenerate segment outside the disk.
        let dot = seg(0.0, 0.0, 0.0, 0.0);
        assert_eq!(dot.first_param_within(Point::new(9.0, 0.0), 2.0), None);
        assert_eq!(dot.first_param_within(Point::new(1.0, 0.0), 2.0), Some(0.0));
    }

    #[test]
    fn collinear_overlap_intersects() {
        let s1 = seg(0.0, 0.0, 5.0, 0.0);
        let s2 = seg(3.0, 0.0, 9.0, 0.0);
        assert!(s1.intersects(&s2));
        let s3 = seg(6.0, 0.0, 9.0, 0.0);
        assert!(!s1.intersects(&s3), "disjoint collinear segments");
    }
}
