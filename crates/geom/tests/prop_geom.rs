//! Property-based tests for the geometry substrate.

use mdg_geom::{
    approx_eq, closed_tour_length, convex_hull, hull::hull_contains, hull_perimeter,
    open_path_length, Aabb, ArcLengthPath, DistMatrix, Point, SpatialGrid,
};
use proptest::prelude::*;

fn finite_coord() -> impl Strategy<Value = f64> {
    // Field coordinates in a generous range; keeps distance arithmetic exact
    // enough for 1e-6 comparisons.
    -1e4..1e4f64
}

fn arb_point() -> impl Strategy<Value = Point> {
    (finite_coord(), finite_coord()).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(arb_point(), 1..max)
}

proptest! {
    #[test]
    fn triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!(a.dist(c) <= a.dist(b) + b.dist(c) + 1e-6);
    }

    #[test]
    fn distance_symmetry_and_positivity(a in arb_point(), b in arb_point()) {
        prop_assert!(approx_eq(a.dist(b), b.dist(a)));
        prop_assert!(a.dist(b) >= 0.0);
        prop_assert!(approx_eq(a.dist(a), 0.0));
    }

    #[test]
    fn step_towards_never_overshoots(a in arb_point(), b in arb_point(), step in 0.0..1e5f64) {
        let moved = a.step_towards(b, step);
        // The move travels at most `step` (within fp slack)…
        prop_assert!(a.dist(moved) <= step + 1e-6);
        // …and never increases the distance to the target.
        prop_assert!(moved.dist(b) <= a.dist(b) + 1e-6);
    }

    #[test]
    fn dist_matrix_matches_points(pts in arb_points(30)) {
        let m = DistMatrix::from_points(&pts);
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                prop_assert!(approx_eq(m.get(i, j), pts[i].dist(pts[j])));
            }
        }
    }

    #[test]
    fn grid_neighbors_equal_brute_force(
        pts in arb_points(60),
        q in arb_point(),
        radius in 1.0..5e3f64,
        cell in 1.0..2e3f64,
    ) {
        let grid = SpatialGrid::build(&pts, cell);
        let mut got = grid.neighbors_within(q, radius);
        got.sort_unstable();
        let mut want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dist(q) <= radius)
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        // Boundary points may flip on fp noise; compare after removing
        // points within 1e-6 of the radius from both sides.
        let near_boundary = |i: &u32| (pts[*i as usize].dist(q) - radius).abs() < 1e-6;
        got.retain(|i| !near_boundary(i));
        want.retain(|i| !near_boundary(i));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn grid_nearest_equals_brute_force(pts in arb_points(40), q in arb_point()) {
        let grid = SpatialGrid::build(&pts, 50.0);
        let got = grid.nearest(q).unwrap();
        let best = pts
            .iter()
            .map(|p| p.dist(q))
            .fold(f64::INFINITY, f64::min);
        prop_assert!(approx_eq(pts[got as usize].dist(q), best));
    }

    #[test]
    fn hull_contains_all_points(pts in arb_points(50)) {
        let hull = convex_hull(&pts);
        if hull.len() >= 3 {
            for p in &pts {
                prop_assert!(hull_contains(&hull, *p));
            }
        }
    }

    #[test]
    fn hull_perimeter_lower_bounds_any_tour(pts in arb_points(30)) {
        // Any closed tour through all points is at least the hull perimeter.
        // (Classic TSP lower bound; here the "tour" is input order.)
        let perim = hull_perimeter(&pts);
        let tour_len = closed_tour_length(&pts);
        prop_assert!(perim <= tour_len + 1e-6);
    }

    #[test]
    fn closed_tour_is_rotation_invariant(pts in arb_points(20), rot in 0usize..20) {
        let n = pts.len();
        let rot = rot % n;
        let mut rotated = pts.clone();
        rotated.rotate_left(rot);
        prop_assert!(approx_eq(closed_tour_length(&pts), closed_tour_length(&rotated)));
    }

    #[test]
    fn arclen_endpoints(pts in arb_points(20)) {
        let path = ArcLengthPath::new(&pts, false);
        prop_assert!(approx_eq(path.length(), open_path_length(&pts)));
        prop_assert!(approx_eq(path.point_at(0.0).dist(pts[0]), 0.0));
        let end = path.point_at(path.length());
        prop_assert!(end.dist(*pts.last().unwrap()) < 1e-6);
    }

    #[test]
    fn arclen_point_lies_on_path(pts in arb_points(15), frac in 0.0..1.0f64) {
        let path = ArcLengthPath::new(&pts, true);
        let p = path.point_at(frac * path.length());
        // The sampled point is within EPS of some segment of the tour.
        let mut mind = f64::INFINITY;
        let n = pts.len();
        for i in 0..n {
            let seg = mdg_geom::Segment::new(pts[i], pts[(i + 1) % n]);
            mind = mind.min(seg.dist_to_point(p));
        }
        prop_assert!(mind < 1e-6, "sample {p} off-path by {mind}");
    }

    #[test]
    fn aabb_from_points_contains_all(pts in arb_points(40)) {
        let bb = Aabb::from_points(&pts).unwrap();
        for p in &pts {
            prop_assert!(bb.contains(*p));
        }
        // Clamping anything lands inside.
        let clamped = bb.clamp(Point::new(1e9, -1e9));
        prop_assert!(bb.contains(clamped));
    }
}
