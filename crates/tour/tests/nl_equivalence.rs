//! Seeded equivalence suite for the neighbor-list local search: across
//! 100 random instances, `improve_neighbors` (candidate-list 2-opt +
//! Or-opt with don't-look bits) must never return a *longer* tour than the
//! dense `two_opt` it replaces on the exact same input tour.

use mdg_geom::Point;
use mdg_tour::{
    cheapest_insertion, improve_neighbors, two_opt, ImproveConfig, MatrixCost, NeighborLists, Tour,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn neighbor_list_search_never_longer_than_dense_two_opt() {
    for i in 0..100u64 {
        let mut rng = StdRng::seed_from_u64(9000 + i);
        let n = 12 + (i as usize * 13) % 99; // 12..=110 cities
        let side = 100.0 + (i % 5) as f64 * 100.0;
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
            .collect();
        let cost = MatrixCost::from_points(&pts);
        let start: Tour = cheapest_insertion(&cost);

        let dense = two_opt(&cost, start.clone());
        let lists = NeighborLists::build(&pts, 12.min(n - 1));
        let nl = improve_neighbors(&pts, start.clone(), &ImproveConfig::default(), &lists);

        let mut sorted = nl.order().to_vec();
        sorted.sort_unstable();
        assert!(
            sorted.into_iter().eq(0..n),
            "instance {i}: broken permutation"
        );
        let (nl_len, dense_len) = (nl.length(&cost), dense.length(&cost));
        assert!(
            nl_len <= dense_len + 1e-9,
            "instance {i} (n = {n}): neighbor-list search returned {nl_len:.6}, \
             dense 2-opt {dense_len:.6}"
        );
    }
}
