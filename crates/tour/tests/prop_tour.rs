//! Property-based tests for the TSP toolbox.

use mdg_geom::{hull_perimeter, Point};
use mdg_tour::{
    cheapest_insertion, christofides_like, exact::brute_force, greedy_edge, held_karp,
    held_karp_lower_bound, improve, min_collectors_for_bound, mst_2approx, nearest_neighbor,
    or_opt, plan_tour, split_into_k, three_opt, two_opt, CostMatrix, ImproveConfig, MatrixCost,
    Tour,
};
use proptest::prelude::*;

fn arb_points(lo: usize, hi: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(
        (0.0..500.0f64, 0.0..500.0f64).prop_map(|(x, y)| Point::new(x, y)),
        lo..hi,
    )
}

fn assert_perm(t: &Tour, n: usize) -> Result<(), TestCaseError> {
    let mut sorted = t.order().to_vec();
    sorted.sort_unstable();
    prop_assert!(
        sorted.iter().copied().eq(0..n),
        "not a permutation: {:?}",
        t.order()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn constructors_yield_permutations(pts in arb_points(1, 40)) {
        let cost = MatrixCost::from_points(&pts);
        let n = pts.len();
        assert_perm(&nearest_neighbor(&cost), n)?;
        assert_perm(&greedy_edge(&cost), n)?;
        assert_perm(&cheapest_insertion(&cost), n)?;
        assert_perm(&mst_2approx(&cost), n)?;
        assert_perm(&christofides_like(&cost), n)?;
    }

    #[test]
    fn improvement_never_worsens(pts in arb_points(4, 35)) {
        let cost = MatrixCost::from_points(&pts);
        let base = nearest_neighbor(&cost);
        let len0 = base.length(&cost);
        prop_assert!(two_opt(&cost, base.clone()).length(&cost) <= len0 + 1e-9);
        prop_assert!(or_opt(&cost, base.clone()).length(&cost) <= len0 + 1e-9);
        let full = improve(&cost, base, &ImproveConfig::default());
        prop_assert!(full.length(&cost) <= len0 + 1e-9);
        assert_perm(&full, pts.len())?;
    }

    #[test]
    fn three_opt_never_worsens_and_stays_a_permutation(pts in arb_points(5, 25)) {
        let cost = MatrixCost::from_points(&pts);
        let base = nearest_neighbor(&cost);
        let len0 = base.length(&cost);
        let improved = three_opt(&cost, base);
        prop_assert!(improved.length(&cost) <= len0 + 1e-9);
        assert_perm(&improved, pts.len())?;
    }

    #[test]
    fn one_tree_bound_sandwiched(pts in arb_points(4, 12)) {
        let cost = MatrixCost::from_points(&pts);
        let (_, opt) = held_karp(&cost);
        let lb = held_karp_lower_bound(&cost, 40);
        prop_assert!(lb <= opt + 1e-6, "lb {} exceeds optimum {}", lb, opt);
        // It must also dominate trivial non-negativity on non-degenerate
        // instances.
        prop_assert!(lb >= 0.0);
    }

    #[test]
    fn one_tree_bound_below_heuristic_tours(pts in arb_points(4, 35)) {
        let cost = MatrixCost::from_points(&pts);
        let tour = plan_tour(&cost);
        let lb = held_karp_lower_bound(&cost, 40);
        prop_assert!(lb <= tour.length(&cost) + 1e-6);
    }

    #[test]
    fn hull_perimeter_lower_bounds_planned_tour(pts in arb_points(3, 30)) {
        let cost = MatrixCost::from_points(&pts);
        let t = plan_tour(&cost);
        prop_assert!(t.length(&cost) + 1e-6 >= hull_perimeter(&pts));
    }

    #[test]
    fn held_karp_is_optimal_vs_brute_force(pts in arb_points(4, 8)) {
        let cost = MatrixCost::from_points(&pts);
        let (_, hk) = held_karp(&cost);
        let (_, bf) = brute_force(&cost);
        prop_assert!((hk - bf).abs() < 1e-9);
    }

    #[test]
    fn heuristics_never_beat_held_karp(pts in arb_points(4, 12)) {
        let cost = MatrixCost::from_points(&pts);
        let (_, opt) = held_karp(&cost);
        prop_assert!(nearest_neighbor(&cost).length(&cost) >= opt - 1e-9);
        prop_assert!(cheapest_insertion(&cost).length(&cost) >= opt - 1e-9);
        prop_assert!(plan_tour(&cost).length(&cost) >= opt - 1e-9);
        // MST double-tree keeps its 2-approximation promise.
        prop_assert!(mst_2approx(&cost).length(&cost) <= 2.0 * opt + 1e-9);
    }

    #[test]
    fn normalization_preserves_length(pts in arb_points(3, 25), rot in 0usize..25) {
        let cost = MatrixCost::from_points(&pts);
        let n = pts.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.rotate_left(rot % n);
        let t = Tour::new(order);
        let len = t.length(&cost);
        let norm = t.normalized();
        prop_assert!((norm.length(&cost) - len).abs() < 1e-9);
        prop_assert_eq!(norm.order()[0], 0);
    }

    #[test]
    fn split_partitions_cities(pts in arb_points(2, 25), k in 1usize..6) {
        let cost = MatrixCost::from_points(&pts);
        let tour = plan_tour(&cost);
        let split = split_into_k(&cost, &tour, k);
        prop_assert!(split.len() <= k.max(1));
        let mut seen = vec![false; pts.len()];
        seen[0] = true;
        for st in &split {
            for &c in &st.cities {
                prop_assert!(!seen[c], "city {} duplicated", c);
                seen[c] = true;
            }
            prop_assert!(st.length >= 0.0);
        }
        prop_assert!(seen.iter().all(|&s| s), "all cities covered");
    }

    #[test]
    fn split_max_bounded_by_whole_tour(pts in arb_points(2, 25), k in 1usize..6) {
        let cost = MatrixCost::from_points(&pts);
        let tour = plan_tour(&cost);
        let whole = tour.length(&cost);
        // Without a depot detour penalty… each sub-tour adds depot legs, so
        // individual sub-tours can only be bounded by whole + 2·maxdist.
        let maxdist = (1..pts.len()).map(|c| cost.cost(0, c)).fold(0.0, f64::max);
        let split = split_into_k(&cost, &tour, k);
        for st in &split {
            prop_assert!(st.length <= whole + 2.0 * maxdist + 1e-6);
        }
    }

    #[test]
    fn min_collectors_monotone(pts in arb_points(2, 20)) {
        let cost = MatrixCost::from_points(&pts);
        let tour = plan_tour(&cost);
        let maxdist = (1..pts.len()).map(|c| cost.cost(0, c)).fold(0.0, f64::max);
        let feasible = 2.0 * maxdist + 1.0;
        let mut prev = usize::MAX;
        for mult in [1.0, 1.5, 2.5, 5.0, 20.0] {
            let tours = min_collectors_for_bound(&cost, &tour, feasible * mult);
            prop_assert!(tours.is_some(), "bound {} should be feasible", feasible * mult);
            let tours = tours.unwrap();
            for t in &tours {
                prop_assert!(t.length <= feasible * mult + 1e-6);
            }
            prop_assert!(tours.len() <= prev);
            prev = tours.len();
        }
    }
}
