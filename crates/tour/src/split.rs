//! Tour splitting for multiple mobile collectors.
//!
//! For large fields a single collector's tour can exceed the application's
//! data-gathering deadline. The paper's remedy is a fleet: plan one global
//! tour, then split it into `k` depot-anchored sub-tours. The splitting
//! rule follows Frederickson, Hecht & Kim's k-TSP heuristic: choose split
//! points along the tour so that the *maximum* sub-tour (including the two
//! depot legs) is minimized.

use crate::cost::CostMatrix;
use crate::tour::Tour;

/// One collector's sub-tour: the depot (city 0), then `cities` in order,
/// then back to the depot.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitTour {
    /// Non-depot cities in visiting order.
    pub cities: Vec<usize>,
    /// Closed length: depot → cities… → depot.
    pub length: f64,
}

impl SplitTour {
    fn build<C: CostMatrix>(cost: &C, cities: Vec<usize>) -> Self {
        let length = subtour_length(cost, &cities);
        SplitTour { cities, length }
    }
}

/// Length of depot → `cities…` → depot (0 for an empty city list).
fn subtour_length<C: CostMatrix>(cost: &C, cities: &[usize]) -> f64 {
    match cities.split_first() {
        None => 0.0,
        Some((&first, rest)) => {
            let mut len = cost.cost(0, first);
            let mut prev = first;
            for &c in rest {
                len += cost.cost(prev, c);
                prev = c;
            }
            len + cost.cost(prev, 0)
        }
    }
}

/// Feasibility tolerance for packing: relative in the bound's magnitude
/// plus an absolute floor.
///
/// The comparison `length ≤ bound` accumulates one `f64` rounding error
/// per tour leg, and those errors scale with the coordinates: at
/// city-scale instances (tour lengths ~1e5 m and beyond — exactly the
/// regime hierarchical planning targets) a unit in the last place of the
/// running sum is orders of magnitude above any fixed epsilon, so a purely
/// absolute `+ 1e-9` slack can flip feasibility at the binary-search
/// boundary depending on summation order. The relative term tracks the
/// magnitude; the absolute floor keeps tiny instances well-behaved.
fn pack_tolerance(bound: f64) -> f64 {
    bound * (1.0 + 1e-12) + 1e-9
}

/// Greedily packs the tour's non-depot cities (in tour order) into
/// sub-tours of closed length ≤ `bound`. Returns `None` if some single
/// city cannot be served within `bound` (i.e. `2·cost(0, c) > bound`).
fn pack_within<C: CostMatrix>(cost: &C, seq: &[usize], bound: f64) -> Option<Vec<SplitTour>> {
    let mut out = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    let mut path_len = 0.0; // depot → … → last of `current`
    let tol = pack_tolerance(bound);
    for &c in seq {
        if 2.0 * cost.cost(0, c) > tol {
            return None;
        }
        let extended = if current.is_empty() {
            cost.cost(0, c)
        } else {
            path_len + cost.cost(*current.last().unwrap(), c)
        };
        if extended + cost.cost(c, 0) <= tol {
            current.push(c);
            path_len = extended;
        } else {
            debug_assert!(!current.is_empty(), "single city must fit (checked above)");
            out.push(SplitTour::build(cost, std::mem::take(&mut current)));
            current.push(c);
            path_len = cost.cost(0, c);
        }
    }
    if !current.is_empty() {
        out.push(SplitTour::build(cost, current));
    }
    Some(out)
}

/// Splits `tour` (which must contain the depot 0) into at most `k`
/// sub-tours minimizing the maximum sub-tour length, via binary search on
/// the length bound with greedy packing as the feasibility oracle.
///
/// Returns fewer than `k` sub-tours when fewer suffice to achieve the same
/// max length (e.g. `k` exceeds the number of cities).
///
/// # Panics
/// Panics if `k == 0` or `tour` does not include city 0.
pub fn split_into_k<C: CostMatrix>(cost: &C, tour: &Tour, k: usize) -> Vec<SplitTour> {
    assert!(k > 0, "need at least one collector");
    let seq = depot_sequence(tour);
    if seq.is_empty() {
        return Vec::new();
    }
    // Bounds: lo = longest single out-and-back; hi = whole tour as one.
    let lo_req = seq
        .iter()
        .map(|&c| 2.0 * cost.cost(0, c))
        .fold(0.0, f64::max);
    let hi0 = subtour_length(cost, &seq);
    let (mut lo, mut hi) = (lo_req, hi0.max(lo_req));
    // Binary search the smallest feasible bound for k sub-tours.
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        match pack_within(cost, &seq, mid) {
            Some(tours) if tours.len() <= k => hi = mid,
            _ => lo = mid,
        }
    }
    pack_within(cost, &seq, hi).expect("hi is feasible by construction")
}

/// The minimum number of collectors such that every sub-tour is at most
/// `bound` meters long, splitting `tour` greedily in order. Returns the
/// sub-tours, or `None` if some city cannot be served within `bound` even
/// by a dedicated collector.
pub fn min_collectors_for_bound<C: CostMatrix>(
    cost: &C,
    tour: &Tour,
    bound: f64,
) -> Option<Vec<SplitTour>> {
    assert!(bound > 0.0, "bound must be positive");
    let seq = depot_sequence(tour);
    pack_within(cost, &seq, bound)
}

/// Rotates the tour so the depot leads, and returns the non-depot sequence.
fn depot_sequence(tour: &Tour) -> Vec<usize> {
    let order = tour.order();
    let pos = order
        .iter()
        .position(|&c| c == 0)
        .expect("tour must contain the depot (city 0)");
    let mut seq = Vec::with_capacity(order.len().saturating_sub(1));
    for i in 1..order.len() {
        seq.push(order[(pos + i) % order.len()]);
    }
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::MatrixCost;
    use mdg_geom::Point;

    /// Depot at the origin, cities strung out along a line.
    fn line_instance() -> MatrixCost {
        let pts: Vec<Point> = (0..7).map(|i| Point::new(10.0 * i as f64, 0.0)).collect();
        MatrixCost::from_points(&pts)
    }

    fn all_cities_covered(tours: &[SplitTour], n: usize) {
        let mut seen = vec![false; n];
        seen[0] = true;
        for t in tours {
            for &c in &t.cities {
                assert!(!seen[c], "city {c} appears in two sub-tours");
                seen[c] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every city must be covered");
    }

    #[test]
    fn split_into_one_is_whole_tour() {
        let cost = line_instance();
        let tour = Tour::identity(7);
        let split = split_into_k(&cost, &tour, 1);
        assert_eq!(split.len(), 1);
        assert!((split[0].length - tour.length(&cost)).abs() < 1e-9);
        all_cities_covered(&split, 7);
    }

    /// Depot at the center of a ring of 8 cities (radius 50): the whole
    /// ring tour is far longer than any single out-and-back, so splitting
    /// genuinely helps.
    fn ring_instance() -> MatrixCost {
        let mut pts = vec![Point::ORIGIN];
        for i in 0..8 {
            let a = std::f64::consts::TAU * i as f64 / 8.0;
            pts.push(Point::new(50.0 * a.cos(), 50.0 * a.sin()));
        }
        MatrixCost::from_points(&pts)
    }

    #[test]
    fn split_reduces_max_length() {
        let cost = ring_instance();
        let tour = Tour::identity(9);
        let whole = tour.length(&cost);
        let split = split_into_k(&cost, &tour, 3);
        assert!(split.len() <= 3);
        let max = split.iter().map(|t| t.length).fold(0.0, f64::max);
        assert!(
            max < whole,
            "3-way split must beat the single tour: {max} vs {whole}"
        );
        all_cities_covered(&split, 9);
        for t in &split {
            assert!((t.length - subtour_length(&cost, &t.cities)).abs() < 1e-9);
        }
    }

    #[test]
    fn split_max_never_below_farthest_roundtrip() {
        let cost = line_instance();
        let tour = Tour::identity(7);
        for k in 1..=7 {
            let split = split_into_k(&cost, &tour, k);
            let max = split.iter().map(|t| t.length).fold(0.0, f64::max);
            assert!(
                max >= 2.0 * 60.0 - 1e-6,
                "farthest city needs a 120 m round trip (k={k})"
            );
        }
    }

    #[test]
    fn monotone_in_k() {
        let cost = line_instance();
        let tour = Tour::identity(7);
        let mut prev = f64::INFINITY;
        for k in 1..=5 {
            let split = split_into_k(&cost, &tour, k);
            let max = split.iter().map(|t| t.length).fold(0.0, f64::max);
            assert!(max <= prev + 1e-9, "max sub-tour must not grow with k");
            prev = max;
        }
    }

    #[test]
    fn min_collectors_respects_bound() {
        let cost = line_instance();
        let tour = Tour::identity(7);
        // Bound just above the farthest round trip forces many collectors.
        let tours = min_collectors_for_bound(&cost, &tour, 125.0).unwrap();
        for t in &tours {
            assert!(t.length <= 125.0 + 1e-6);
        }
        all_cities_covered(&tours, 7);
        // An infeasible bound (< farthest round trip) returns None.
        assert!(min_collectors_for_bound(&cost, &tour, 100.0).is_none());
        // A huge bound needs a single collector.
        let one = min_collectors_for_bound(&cost, &tour, 1e6).unwrap();
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn min_collectors_monotone_in_bound() {
        let cost = line_instance();
        let tour = Tour::identity(7);
        let mut prev = usize::MAX;
        for bound in [125.0, 150.0, 200.0, 300.0, 500.0] {
            let n = min_collectors_for_bound(&cost, &tour, bound).unwrap().len();
            assert!(n <= prev, "more slack must not require more collectors");
            prev = n;
        }
    }

    #[test]
    fn depot_only_tour() {
        let pts = vec![Point::ORIGIN];
        let cost = MatrixCost::from_points(&pts);
        let tour = Tour::identity(1);
        assert!(split_into_k(&cost, &tour, 3).is_empty());
        assert_eq!(
            min_collectors_for_bound(&cost, &tour, 10.0).unwrap().len(),
            0
        );
    }

    #[test]
    fn k_beyond_the_city_count_caps_at_one_tour_per_city() {
        let cost = line_instance();
        let tour = Tour::identity(7);
        for k in [7, 8, 20, 1000] {
            let split = split_into_k(&cost, &tour, k);
            assert!(split.len() <= 6, "only 6 non-depot cities exist (k={k})");
            all_cities_covered(&split, 7);
            // With unlimited collectors the optimum is the farthest
            // round trip; the binary search must find it.
            let max = split.iter().map(|t| t.length).fold(0.0, f64::max);
            assert!(
                (max - 120.0).abs() < 1e-6,
                "k={k}: max {max}, expected the 120 m round trip"
            );
        }
    }

    #[test]
    fn k_exceeding_two_city_tour() {
        let pts = vec![Point::ORIGIN, Point::new(10.0, 0.0), Point::new(0.0, 10.0)];
        let cost = MatrixCost::from_points(&pts);
        let split = split_into_k(&cost, &Tour::identity(3), 5);
        assert!(split.len() <= 2);
        all_cities_covered(&split, 3);
    }

    #[test]
    fn packing_feasibility_is_scale_invariant_at_large_coordinates() {
        // Scaling every coordinate by a power of two scales every distance
        // (and any bound derived from them) *exactly*, so feasibility must
        // not change. Before the tolerance became relative, it did: this
        // bound sits ~6e-12 below the exact tour length — inside the old
        // absolute `1e-9` slack at unit scale, but the same relative
        // deficit is ~6.6 m at 2⁴⁰ scale (tour length ~6.6e13), where the
        // absolute epsilon rejected it — `min_collectors_for_bound`
        // returned `None` because even the farthest round trip "missed"
        // the bound by meters of accumulated-rounding noise.
        for scale in [1.0, (2.0f64).powi(40)] {
            let pts: Vec<Point> = (0..4)
                .map(|i| Point::new(10.0 * i as f64 * scale, 0.0))
                .collect();
            let cost = MatrixCost::from_points(&pts);
            let tour = Tour::identity(4);
            let bound = (60.0 - 6e-12) * scale;
            let tours = min_collectors_for_bound(&cost, &tour, bound)
                .unwrap_or_else(|| panic!("bound must stay feasible at scale {scale}"));
            assert_eq!(
                tours.len(),
                1,
                "one collector suffices at scale {scale} (got {})",
                tours.len()
            );
            all_cities_covered(&tours, 4);
        }
    }

    #[test]
    fn split_into_k_handles_city_scale_coordinates() {
        // The binary search's feasibility oracle at the boundary must not
        // wobble at tour lengths ~1e11: the split still covers every city,
        // respects the farthest-roundtrip lower bound, and stays monotone.
        let pts: Vec<Point> = (0..7).map(|i| Point::new(1e10 * i as f64, 0.0)).collect();
        let cost = MatrixCost::from_points(&pts);
        let tour = Tour::identity(7);
        let mut prev = f64::INFINITY;
        for k in 1..=4 {
            let split = split_into_k(&cost, &tour, k);
            all_cities_covered(&split, 7);
            let max = split.iter().map(|t| t.length).fold(0.0, f64::max);
            assert!(
                max >= 2.0 * 6e10 - 1.0,
                "k={k}: farthest round trip is a floor"
            );
            assert!(
                max <= prev * (1.0 + 1e-12),
                "k={k}: max sub-tour must not grow"
            );
            prev = max;
        }
    }

    #[test]
    fn rotated_tour_splits_identically() {
        let cost = line_instance();
        let a = Tour::new(vec![0, 1, 2, 3, 4, 5, 6]);
        let b = Tour::new(vec![3, 4, 5, 6, 0, 1, 2]);
        let sa = split_into_k(&cost, &a, 2);
        let sb = split_into_k(&cost, &b, 2);
        let max_a = sa.iter().map(|t| t.length).fold(0.0, f64::max);
        let max_b = sb.iter().map(|t| t.length).fold(0.0, f64::max);
        assert!((max_a - max_b).abs() < 1e-9);
    }
}
