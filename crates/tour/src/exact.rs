//! Exact TSP solvers for small instances.
//!
//! The paper compares its heuristics against the optimum computed by CPLEX
//! on a 30-node network; this reproduction substitutes CPLEX with Held–Karp
//! dynamic programming (exact, `O(n² 2ⁿ)`), which comfortably handles the
//! polling-point counts of small instances.

use crate::cost::CostMatrix;
use crate::tour::Tour;

/// Largest instance [`held_karp`] accepts. At `n = 22` the DP table is
/// ~350 MB; 20 keeps it under 80 MB and a few seconds.
pub const HELD_KARP_MAX: usize = 20;

/// Exact TSP via Held–Karp dynamic programming over subsets. Returns the
/// optimal closed tour anchored at city 0 and its length.
///
/// # Panics
/// Panics if `cost.n() > HELD_KARP_MAX`.
pub fn held_karp<C: CostMatrix>(cost: &C) -> (Tour, f64) {
    let n = cost.n();
    assert!(
        n <= HELD_KARP_MAX,
        "held_karp limited to {HELD_KARP_MAX} cities, got {n}"
    );
    if n <= 2 {
        let t = Tour::identity(n);
        let len = t.length(cost);
        return (t, len);
    }
    let m = n - 1; // Cities 1..n, bit i represents city i+1.
    let full: usize = (1 << m) - 1;
    // dp[mask][last] = shortest path 0 → … → last visiting exactly the
    // cities in mask (last ∈ mask).
    let mut dp = vec![f64::INFINITY; (full + 1) * m];
    let mut parent = vec![u8::MAX; (full + 1) * m];
    for last in 0..m {
        dp[(1 << last) * m + last] = cost.cost(0, last + 1);
    }
    for mask in 1..=full {
        // Skip singleton masks (already initialized).
        if mask & (mask - 1) == 0 {
            continue;
        }
        for last in 0..m {
            if mask & (1 << last) == 0 {
                continue;
            }
            let prev_mask = mask ^ (1 << last);
            let mut best = f64::INFINITY;
            let mut best_prev = u8::MAX;
            let mut bits = prev_mask;
            while bits != 0 {
                let prev = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let cand = dp[prev_mask * m + prev] + cost.cost(prev + 1, last + 1);
                if cand < best {
                    best = cand;
                    best_prev = prev as u8;
                }
            }
            dp[mask * m + last] = best;
            parent[mask * m + last] = best_prev;
        }
    }
    // Close the tour back to the depot.
    let mut best_len = f64::INFINITY;
    let mut best_last = 0usize;
    for last in 0..m {
        let cand = dp[full * m + last] + cost.cost(last + 1, 0);
        if cand < best_len {
            best_len = cand;
            best_last = last;
        }
    }
    // Reconstruct.
    let mut order_rev = Vec::with_capacity(n);
    let mut mask = full;
    let mut last = best_last;
    while mask != 0 {
        order_rev.push(last + 1);
        let p = parent[mask * m + last];
        mask ^= 1 << last;
        if p == u8::MAX {
            break;
        }
        last = p as usize;
    }
    order_rev.push(0);
    order_rev.reverse();
    debug_assert_eq!(order_rev.len(), n);
    (Tour::from_order_unchecked(order_rev).normalized(), best_len)
}

/// Brute-force optimal tour by permutation enumeration; `O((n−1)!)`.
/// Only usable for `n ≤ 10`; provided as an oracle for tests.
pub fn brute_force<C: CostMatrix>(cost: &C) -> (Tour, f64) {
    let n = cost.n();
    assert!(n <= 10, "brute force limited to 10 cities");
    if n <= 2 {
        let t = Tour::identity(n);
        let len = t.length(cost);
        return (t, len);
    }
    let mut perm: Vec<usize> = (1..n).collect();
    let mut best_order: Vec<usize> = std::iter::once(0).chain(perm.iter().copied()).collect();
    let mut best_len = Tour::from_order_unchecked(best_order.clone()).length(cost);
    // Heap's algorithm over the non-depot cities.
    let mut c = vec![0usize; perm.len()];
    let mut i = 0;
    while i < perm.len() {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            let order: Vec<usize> = std::iter::once(0).chain(perm.iter().copied()).collect();
            let len = Tour::from_order_unchecked(order.clone()).length(cost);
            if len < best_len {
                best_len = len;
                best_order = order;
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    (
        Tour::from_order_unchecked(best_order).normalized(),
        best_len,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{cheapest_insertion, mst_2approx, nearest_neighbor};
    use crate::cost::MatrixCost;
    use crate::improve::{improve, ImproveConfig};
    use mdg_geom::Point;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect()
    }

    #[test]
    fn held_karp_matches_brute_force() {
        for seed in 0..6u64 {
            for n in 4..=8usize {
                let pts = random_points(n, seed * 31 + n as u64);
                let cost = MatrixCost::from_points(&pts);
                let (hk_tour, hk_len) = held_karp(&cost);
                let (_, bf_len) = brute_force(&cost);
                assert!(
                    (hk_len - bf_len).abs() < 1e-9,
                    "n={n} seed={seed}: HK {hk_len} vs BF {bf_len}"
                );
                assert!(
                    (hk_tour.length(&cost) - hk_len).abs() < 1e-9,
                    "reported length consistent"
                );
            }
        }
    }

    #[test]
    fn held_karp_lower_bounds_heuristics() {
        for seed in 0..4u64 {
            let pts = random_points(11, seed);
            let cost = MatrixCost::from_points(&pts);
            let (_, opt) = held_karp(&cost);
            for (name, t) in [
                ("nn", nearest_neighbor(&cost)),
                ("ci", cheapest_insertion(&cost)),
                ("mst", mst_2approx(&cost)),
            ] {
                assert!(
                    t.length(&cost) >= opt - 1e-9,
                    "{name} beat the optimum?! seed {seed}"
                );
            }
            // 2-approximation bound holds against the true optimum.
            assert!(mst_2approx(&cost).length(&cost) <= 2.0 * opt + 1e-9);
            // Polished heuristic lands close to the optimum on tiny inputs.
            let polished = improve(&cost, nearest_neighbor(&cost), &ImproveConfig::default());
            assert!(polished.length(&cost) <= 1.15 * opt + 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn held_karp_on_square() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ];
        let cost = MatrixCost::from_points(&pts);
        let (tour, len) = held_karp(&cost);
        assert!((len - 4.0).abs() < 1e-12);
        assert_eq!(tour.order()[0], 0);
    }

    #[test]
    fn tiny_instances() {
        for n in 0..=2usize {
            let pts = random_points(n, 1);
            let cost = MatrixCost::from_points(&pts);
            let (t, len) = held_karp(&cost);
            assert_eq!(t.len(), n);
            let (bt, blen) = brute_force(&cost);
            assert_eq!(bt.len(), n);
            assert!((len - blen).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "held_karp limited")]
    fn held_karp_rejects_large_instances() {
        let pts = random_points(HELD_KARP_MAX + 1, 0);
        let cost = MatrixCost::from_points(&pts);
        held_karp(&cost);
    }
}
