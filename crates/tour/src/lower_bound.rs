//! Held–Karp 1-tree lower bounds.
//!
//! A *1-tree* is a spanning tree over cities `1..n` plus the two cheapest
//! edges incident to city `0`; its weight lower-bounds every closed tour.
//! Iterating with node potentials (Lagrangian relaxation of the degree-2
//! constraints, updated by subgradient ascent) tightens the bound to
//! within a few percent of the optimum on Euclidean instances — good
//! enough to report heuristic gaps on instances too large for exact
//! solving.

use crate::cost::CostMatrix;

/// Weight of the minimum 1-tree under costs modified by node potentials
/// `pi`: `c'(i,j) = c(i,j) + π_i + π_j`. Also returns each node's degree
/// in the 1-tree (the subgradient).
fn one_tree<C: CostMatrix>(cost: &C, pi: &[f64]) -> (f64, Vec<u32>) {
    let n = cost.n();
    debug_assert!(n >= 3);
    let c = |i: usize, j: usize| cost.cost(i, j) + pi[i] + pi[j];
    // Prim MST over cities 1..n.
    let m = n - 1;
    let mut in_tree = vec![false; n];
    let mut best = vec![f64::INFINITY; n];
    let mut best_from = vec![usize::MAX; n];
    let mut degree = vec![0u32; n];
    let mut weight = 0.0;
    best[1] = 0.0;
    for _ in 0..m {
        let u = (1..n)
            .filter(|&v| !in_tree[v])
            .min_by(|&a, &b| best[a].partial_cmp(&best[b]).unwrap())
            .expect("unvisited city exists");
        in_tree[u] = true;
        if best_from[u] != usize::MAX {
            weight += c(u, best_from[u]);
            degree[u] += 1;
            degree[best_from[u]] += 1;
        }
        for v in 1..n {
            if !in_tree[v] {
                let w = c(u, v);
                if w < best[v] {
                    best[v] = w;
                    best_from[v] = u;
                }
            }
        }
    }
    // Two cheapest edges from city 0.
    let mut e1 = f64::INFINITY;
    let mut e2 = f64::INFINITY;
    let mut v1 = usize::MAX;
    let mut v2 = usize::MAX;
    for v in 1..n {
        let w = c(0, v);
        if w < e1 {
            e2 = e1;
            v2 = v1;
            e1 = w;
            v1 = v;
        } else if w < e2 {
            e2 = w;
            v2 = v;
        }
    }
    weight += e1 + e2;
    degree[0] += 2;
    degree[v1] += 1;
    degree[v2] += 1;
    (weight, degree)
}

/// Held–Karp 1-tree lower bound with `iters` subgradient-ascent steps
/// (~50 is plenty). Returns a value ≤ the optimal closed-tour length.
/// Degenerate instances (`n < 3`) return the exact tour length.
pub fn held_karp_lower_bound<C: CostMatrix>(cost: &C, iters: usize) -> f64 {
    let n = cost.n();
    if n < 3 {
        return crate::tour::Tour::identity(n).length(cost);
    }
    let mut pi = vec![0.0f64; n];
    let mut best_bound = f64::NEG_INFINITY;
    // Step-size scale: start from the plain 1-tree weight.
    let (w0, _) = one_tree(cost, &pi);
    let mut step = 0.1 * w0.max(1e-9) / n as f64;
    for _ in 0..iters.max(1) {
        let (w, degree) = one_tree(cost, &pi);
        let bound = w - 2.0 * pi.iter().sum::<f64>();
        if bound > best_bound {
            best_bound = bound;
        }
        // Subgradient: push potentials toward degree 2 everywhere.
        let mut all_two = true;
        for v in 0..n {
            let g = degree[v] as f64 - 2.0;
            if g != 0.0 {
                all_two = false;
            }
            pi[v] += step * g;
        }
        if all_two {
            break; // The 1-tree is a tour: the bound is exact.
        }
        step *= 0.95;
    }
    best_bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::cheapest_insertion;
    use crate::cost::MatrixCost;
    use crate::exact::held_karp;
    use crate::improve::{improve, ImproveConfig};
    use mdg_geom::Point;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect()
    }

    #[test]
    fn bound_is_below_the_optimum() {
        for seed in 0..6u64 {
            let pts = random_points(12, seed);
            let cost = MatrixCost::from_points(&pts);
            let (_, opt) = held_karp(&cost);
            let lb = held_karp_lower_bound(&cost, 60);
            assert!(lb <= opt + 1e-6, "seed {seed}: lb {lb} > opt {opt}");
            // And reasonably tight on Euclidean instances.
            assert!(lb >= 0.80 * opt, "seed {seed}: lb {lb} too loose vs {opt}");
        }
    }

    #[test]
    fn bound_is_below_every_heuristic_tour() {
        for seed in 0..4u64 {
            let pts = random_points(40, seed + 11);
            let cost = MatrixCost::from_points(&pts);
            let tour = improve(&cost, cheapest_insertion(&cost), &ImproveConfig::default());
            let lb = held_karp_lower_bound(&cost, 60);
            assert!(lb <= tour.length(&cost) + 1e-6, "seed {}", seed + 11);
            assert!(lb > 0.0);
        }
    }

    #[test]
    fn more_iterations_never_loosen() {
        let pts = random_points(20, 3);
        let cost = MatrixCost::from_points(&pts);
        let lb1 = held_karp_lower_bound(&cost, 1);
        let lb50 = held_karp_lower_bound(&cost, 50);
        assert!(
            lb50 >= lb1 - 1e-9,
            "best-so-far bound is monotone in iterations"
        );
    }

    #[test]
    fn ring_bound_is_exact() {
        // On a ring the 1-tree IS the tour, so the bound equals the
        // optimum immediately.
        let pts: Vec<Point> = (0..10)
            .map(|i| {
                let a = std::f64::consts::TAU * i as f64 / 10.0;
                Point::new(50.0 * a.cos(), 50.0 * a.sin())
            })
            .collect();
        let cost = MatrixCost::from_points(&pts);
        let (_, opt) = held_karp(&cost);
        let lb = held_karp_lower_bound(&cost, 30);
        assert!((lb - opt).abs() < 1e-6, "lb {lb} vs opt {opt}");
    }

    #[test]
    fn degenerate_instances() {
        for n in 0..3usize {
            let pts = random_points(n.max(1), 9)[..n].to_vec();
            let cost = MatrixCost::from_points(&pts);
            let lb = held_karp_lower_bound(&cost, 10);
            let exact = crate::tour::Tour::identity(n).length(&cost);
            assert!((lb - exact).abs() < 1e-9);
        }
    }
}
