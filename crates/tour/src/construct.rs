//! Tour construction heuristics.
//!
//! All constructors produce a closed [`Tour`] over all `n` cities starting
//! at the depot (city `0`). The paper's simulations use nearest neighbor;
//! the planner default is cheapest insertion + local search, and the MST
//! double-tree construction provides a provable 2-approximation used as a
//! sanity bound in tests.

use crate::cost::CostMatrix;
use crate::tour::Tour;

/// Nearest-neighbor construction from the depot: repeatedly visit the
/// closest unvisited city. `O(n²)`.
pub fn nearest_neighbor<C: CostMatrix>(cost: &C) -> Tour {
    let n = cost.n();
    if n == 0 {
        return Tour::identity(0);
    }
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut current = 0usize;
    visited[0] = true;
    order.push(0);
    for _ in 1..n {
        let mut best = usize::MAX;
        let mut best_d = f64::INFINITY;
        #[allow(clippy::needless_range_loop)]
        for next in 0..n {
            if !visited[next] {
                let d = cost.cost(current, next);
                if d < best_d {
                    best_d = d;
                    best = next;
                }
            }
        }
        visited[best] = true;
        order.push(best);
        current = best;
    }
    Tour::from_order_unchecked(order)
}

/// Greedy-edge construction: sort all edges by cost and add an edge
/// whenever both endpoints have degree < 2 and it does not close a
/// premature cycle. `O(n² log n)`.
pub fn greedy_edge<C: CostMatrix>(cost: &C) -> Tour {
    let n = cost.n();
    if n <= 2 {
        return Tour::identity(n);
    }
    let mut edges: Vec<(f64, u32, u32)> = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            edges.push((cost.cost(i, j), i as u32, j as u32));
        }
    }
    edges.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

    let mut degree = vec![0u8; n];
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    let mut adj: Vec<[u32; 2]> = vec![[u32::MAX; 2]; n];
    let mut added = 0usize;
    for (_, u, v) in edges {
        if added == n {
            break;
        }
        let (ui, vi) = (u as usize, v as usize);
        if degree[ui] >= 2 || degree[vi] >= 2 {
            continue;
        }
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        // Allow the cycle-closing edge only as the very last one.
        if ru == rv && added != n - 1 {
            continue;
        }
        parent[ru as usize] = rv;
        adj[ui][degree[ui] as usize] = v;
        adj[vi][degree[vi] as usize] = u;
        degree[ui] += 1;
        degree[vi] += 1;
        added += 1;
    }
    debug_assert_eq!(added, n, "greedy edge must complete a Hamiltonian cycle");

    // Walk the cycle starting at the depot.
    let mut order = Vec::with_capacity(n);
    let mut prev = u32::MAX;
    let mut cur = 0u32;
    for _ in 0..n {
        order.push(cur as usize);
        let next = if adj[cur as usize][0] != prev {
            adj[cur as usize][0]
        } else {
            adj[cur as usize][1]
        };
        prev = cur;
        cur = next;
    }
    Tour::from_order_unchecked(order)
}

/// Cheapest-insertion construction: start from the depot and its nearest
/// city; repeatedly insert the city with the cheapest insertion delta at
/// its best position. `O(n²)` expected via incremental best-position
/// caching.
///
/// Each outside city caches `(best_delta, best_after)` — its cheapest
/// insertion edge, identified by the tour node the edge starts at. An
/// insertion destroys exactly one tour edge and creates two: cities whose
/// cached edge was destroyed are rescanned in full, every other city just
/// checks the two new edges (a cached delta can only be beaten, never
/// invalidated, since all other edges survive). This matches the
/// full-rescan [`cheapest_insertion_reference`] choice-for-choice except
/// when two distinct insertion positions tie to the last bit of the delta,
/// where the earlier-scanned position wins in the reference and the
/// earlier-cached one here.
pub fn cheapest_insertion<C: CostMatrix>(cost: &C) -> Tour {
    let n = cost.n();
    if n <= 2 {
        return Tour::identity(n);
    }
    let mut sp = mdg_obs::span("cheapest_insertion");
    sp.add_items(n as u64);
    // Seed: depot plus its nearest city.
    let seed = (1..n)
        .min_by(|&a, &b| cost.cost(0, a).partial_cmp(&cost.cost(0, b)).unwrap())
        .unwrap();
    // Cyclic successor list; usize::MAX marks cities not yet in the tour.
    let mut succ = vec![usize::MAX; n];
    succ[0] = seed;
    succ[seed] = 0;
    let mut tour_len = 2usize;

    let mut best_delta = vec![f64::INFINITY; n];
    let mut best_after = vec![usize::MAX; n];
    let full_rescan = |city: usize, succ: &[usize]| -> (f64, usize) {
        let mut bd = f64::INFINITY;
        let mut ba = usize::MAX;
        // Walk the tour from the depot, mirroring the reference's
        // position-order scan.
        let mut a = 0usize;
        loop {
            let b = succ[a];
            let delta = cost.cost(a, city) + cost.cost(city, b) - cost.cost(a, b);
            if delta < bd {
                bd = delta;
                ba = a;
            }
            a = b;
            if a == 0 {
                break;
            }
        }
        (bd, ba)
    };
    for city in 0..n {
        if succ[city] == usize::MAX {
            let (bd, ba) = full_rescan(city, &succ);
            best_delta[city] = bd;
            best_after[city] = ba;
        }
    }

    while tour_len < n {
        // The reference scans cities in ascending order with a strict `<`,
        // so the lowest index wins among tied deltas; replicate that.
        let mut city = usize::MAX;
        let mut bd = f64::INFINITY;
        for c in 0..n {
            if succ[c] == usize::MAX && best_delta[c] < bd {
                bd = best_delta[c];
                city = c;
            }
        }
        let a = best_after[city];
        let b = succ[a];
        succ[city] = b;
        succ[a] = city;
        tour_len += 1;
        // Edge (a, b) is gone; edges (a, city) and (city, b) are new.
        for c in 0..n {
            if succ[c] != usize::MAX {
                continue;
            }
            if best_after[c] == a {
                let (nbd, nba) = full_rescan(c, &succ);
                best_delta[c] = nbd;
                best_after[c] = nba;
            } else {
                let d1 = cost.cost(a, c) + cost.cost(c, city) - cost.cost(a, city);
                if d1 < best_delta[c] {
                    best_delta[c] = d1;
                    best_after[c] = a;
                }
                let d2 = cost.cost(city, c) + cost.cost(c, b) - cost.cost(city, b);
                if d2 < best_delta[c] {
                    best_delta[c] = d2;
                    best_after[c] = city;
                }
            }
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut a = 0usize;
    loop {
        order.push(a);
        a = succ[a];
        if a == 0 {
            break;
        }
    }
    Tour::from_order_unchecked(order).normalized()
}

/// Reference cheapest insertion: full `O(n)`-position × `O(n)`-city rescan
/// per insertion (`O(n³)` total). Kept as the executable specification for
/// the incremental [`cheapest_insertion`] and for the equivalence suite.
pub fn cheapest_insertion_reference<C: CostMatrix>(cost: &C) -> Tour {
    let n = cost.n();
    if n <= 2 {
        return Tour::identity(n);
    }
    let seed = (1..n)
        .min_by(|&a, &b| cost.cost(0, a).partial_cmp(&cost.cost(0, b)).unwrap())
        .unwrap();
    let mut order = vec![0usize, seed];
    let mut in_tour = vec![false; n];
    in_tour[0] = true;
    in_tour[seed] = true;

    while order.len() < n {
        let mut best_city = usize::MAX;
        let mut best_pos = 0usize;
        let mut best_delta = f64::INFINITY;
        #[allow(clippy::needless_range_loop)]
        for city in 0..n {
            if in_tour[city] {
                continue;
            }
            for pos in 0..order.len() {
                let a = order[pos];
                let b = order[(pos + 1) % order.len()];
                let delta = cost.cost(a, city) + cost.cost(city, b) - cost.cost(a, b);
                if delta < best_delta {
                    best_delta = delta;
                    best_city = city;
                    best_pos = pos + 1;
                }
            }
        }
        order.insert(best_pos, best_city);
        in_tour[best_city] = true;
    }
    Tour::from_order_unchecked(order).normalized()
}

/// Prim's MST over the complete cost graph; returns `parent[v]` with the
/// depot as root (`parent[0] == usize::MAX`).
pub(crate) fn prim_mst<C: CostMatrix>(cost: &C) -> Vec<usize> {
    let n = cost.n();
    let mut parent = vec![usize::MAX; n];
    if n == 0 {
        return parent;
    }
    let mut in_tree = vec![false; n];
    let mut best = vec![f64::INFINITY; n];
    let mut best_from = vec![usize::MAX; n];
    best[0] = 0.0;
    for _ in 0..n {
        let u = (0..n)
            .filter(|&v| !in_tree[v])
            .min_by(|&a, &b| best[a].partial_cmp(&best[b]).unwrap())
            .unwrap();
        in_tree[u] = true;
        parent[u] = best_from[u];
        for v in 0..n {
            if !in_tree[v] {
                let d = cost.cost(u, v);
                if d < best[v] {
                    best[v] = d;
                    best_from[v] = u;
                }
            }
        }
    }
    parent
}

/// MST double-tree 2-approximation: preorder walk of the MST rooted at the
/// depot, children visited nearest-first. Guarantees length ≤ 2·OPT for
/// metric costs.
pub fn mst_2approx<C: CostMatrix>(cost: &C) -> Tour {
    let n = cost.n();
    if n <= 2 {
        return Tour::identity(n);
    }
    let parent = prim_mst(cost);
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for v in 1..n {
        children[parent[v]].push(v);
    }
    for (u, ch) in children.iter_mut().enumerate() {
        ch.sort_by(|&a, &b| cost.cost(u, a).partial_cmp(&cost.cost(u, b)).unwrap());
    }
    let mut order = Vec::with_capacity(n);
    let mut stack = vec![0usize];
    while let Some(u) = stack.pop() {
        order.push(u);
        // Push reversed so the nearest child is visited first.
        for &c in children[u].iter().rev() {
            stack.push(c);
        }
    }
    Tour::from_order_unchecked(order)
}

/// Christofides-style construction: MST + greedy minimum-weight matching on
/// odd-degree vertices + Euler tour + shortcutting. The greedy matching
/// forfeits the 1.5-approximation proof but behaves close to it in
/// practice.
pub fn christofides_like<C: CostMatrix>(cost: &C) -> Tour {
    let n = cost.n();
    if n <= 3 {
        return Tour::identity(n);
    }
    let parent = prim_mst(cost);
    // Multigraph adjacency of MST edges.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for v in 1..n {
        adj[v].push(parent[v]);
        adj[parent[v]].push(v);
    }
    // Odd-degree vertices; there is always an even number of them.
    let mut odd: Vec<usize> = (0..n).filter(|&v| adj[v].len() % 2 == 1).collect();
    // Greedy matching: repeatedly match the globally closest odd pair.
    while !odd.is_empty() {
        let mut best = (0usize, 1usize);
        let mut best_d = f64::INFINITY;
        for i in 0..odd.len() {
            for j in (i + 1)..odd.len() {
                let d = cost.cost(odd[i], odd[j]);
                if d < best_d {
                    best_d = d;
                    best = (i, j);
                }
            }
        }
        let (i, j) = best;
        let (u, v) = (odd[i], odd[j]);
        adj[u].push(v);
        adj[v].push(u);
        // Remove j first (it is the larger index).
        odd.swap_remove(j);
        odd.swap_remove(i);
    }
    // Hierholzer's algorithm for an Eulerian circuit from the depot.
    let mut used: Vec<Vec<bool>> = adj.iter().map(|a| vec![false; a.len()]).collect();
    let mut next_edge = vec![0usize; n];
    let mut circuit = Vec::new();
    let mut stack = vec![0usize];
    while let Some(&u) = stack.last() {
        // Advance past used edges.
        while next_edge[u] < adj[u].len() && used[u][next_edge[u]] {
            next_edge[u] += 1;
        }
        if next_edge[u] == adj[u].len() {
            circuit.push(u);
            stack.pop();
        } else {
            let idx = next_edge[u];
            let v = adj[u][idx];
            used[u][idx] = true;
            // Mark the reverse edge used.
            let ridx = adj[v]
                .iter()
                .enumerate()
                .position(|(k, &w)| w == u && !used[v][k])
                .expect("multigraph reverse edge");
            used[v][ridx] = true;
            stack.push(v);
        }
    }
    // Shortcut repeated vertices.
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for &v in &circuit {
        if !seen[v] {
            seen[v] = true;
            order.push(v);
        }
    }
    debug_assert_eq!(order.len(), n);
    Tour::from_order_unchecked(order).normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{EuclideanCost, MatrixCost};
    use mdg_geom::Point;

    fn ring(n: usize, radius: f64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let a = std::f64::consts::TAU * i as f64 / n as f64;
                Point::new(radius * a.cos(), radius * a.sin())
            })
            .collect()
    }

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect()
    }

    fn assert_valid_tour(t: &Tour, n: usize) {
        assert_eq!(t.len(), n);
        let mut sorted = t.order().to_vec();
        sorted.sort_unstable();
        assert!(sorted.iter().copied().eq(0..n), "must be a permutation");
    }

    #[test]
    fn all_constructors_produce_permutations() {
        let pts = random_points(25, 7);
        let cost = MatrixCost::from_points(&pts);
        for (name, t) in [
            ("nn", nearest_neighbor(&cost)),
            ("greedy", greedy_edge(&cost)),
            ("ci", cheapest_insertion(&cost)),
            ("mst", mst_2approx(&cost)),
            ("christo", christofides_like(&cost)),
        ] {
            assert_valid_tour(&t, 25);
            assert!(t.length(&cost) > 0.0, "{name} produced a zero-length tour");
        }
    }

    #[test]
    fn ring_is_solved_optimally_by_all() {
        // On a convex ring the optimal tour is the ring itself.
        let pts = ring(12, 50.0);
        let cost = MatrixCost::from_points(&pts);
        let opt = Tour::identity(12).length(&cost);
        for t in [
            nearest_neighbor(&cost),
            greedy_edge(&cost),
            cheapest_insertion(&cost),
            christofides_like(&cost),
        ] {
            assert!(
                (t.length(&cost) - opt).abs() < 1e-6,
                "ring tour should be optimal, got {} vs {}",
                t.length(&cost),
                opt
            );
        }
    }

    #[test]
    fn mst_2approx_respects_bound_vs_hull() {
        // Hull perimeter lower-bounds OPT, so MST tour ≤ 2·OPT implies
        // it is at most twice any upper bound; cross-check with cheapest
        // insertion instead: mst ≤ 2 × (best known).
        let pts = random_points(40, 3);
        let cost = MatrixCost::from_points(&pts);
        let mst_len = mst_2approx(&cost).length(&cost);
        let ci_len = cheapest_insertion(&cost).length(&cost);
        assert!(mst_len <= 2.0 * ci_len + 1e-9);
    }

    #[test]
    fn constructors_start_at_depot() {
        let pts = random_points(15, 11);
        let cost = MatrixCost::from_points(&pts);
        assert_eq!(nearest_neighbor(&cost).order()[0], 0);
        assert_eq!(cheapest_insertion(&cost).order()[0], 0);
        assert_eq!(mst_2approx(&cost).order()[0], 0);
        assert_eq!(christofides_like(&cost).order()[0], 0);
        assert_eq!(greedy_edge(&cost).order()[0], 0);
    }

    #[test]
    fn tiny_instances() {
        for n in 0..=3usize {
            let pts = ring(n.max(1), 10.0)[..n].to_vec();
            let cost = EuclideanCost::new(&pts);
            for t in [
                nearest_neighbor(&cost),
                greedy_edge(&cost),
                cheapest_insertion(&cost),
                mst_2approx(&cost),
                christofides_like(&cost),
            ] {
                assert_valid_tour(&t, n);
            }
        }
    }

    #[test]
    fn nn_greedy_choice_on_line() {
        // Cities on a line: NN from the depot sweeps right then is forced
        // back; order is deterministic.
        let pts: Vec<Point> = (0..5).map(|i| Point::new(i as f64, 0.0)).collect();
        let cost = EuclideanCost::new(&pts);
        let t = nearest_neighbor(&cost);
        assert_eq!(t.order(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn prim_mst_total_weight_on_line() {
        let pts: Vec<Point> = (0..4).map(|i| Point::new(i as f64 * 2.0, 0.0)).collect();
        let cost = EuclideanCost::new(&pts);
        let parent = prim_mst(&cost);
        let weight: f64 = (1..4).map(|v| cost.cost(v, parent[v])).sum();
        assert!((weight - 6.0).abs() < 1e-12, "chain of three 2 m edges");
    }
}
