//! # mdg-tour — TSP construction, improvement, exact solving and splitting
//!
//! The tour subproblem of the single-hop data gathering problem (SHDGP):
//! once polling points are chosen, the mobile collector needs a short
//! closed tour through the sink (the *depot*, always index `0`) and every
//! polling point.
//!
//! The toolbox provides:
//!
//! * **Construction heuristics** ([`construct`]): nearest neighbor,
//!   greedy edge, cheapest insertion, MST double-tree 2-approximation and
//!   a Christofides-style MST + greedy-matching construction.
//! * **Improvement heuristics** ([`mod@improve`]): 2-opt and Or-opt local
//!   search, composed by [`improve::improve`]; plus the neighbor-list
//!   variants ([`neighbors`]) — k-nearest-neighbor candidate moves with
//!   don't-look bits — that scale the same local search to 10⁵-city
//!   instances.
//! * **Exact solvers** ([`exact`]): Held–Karp dynamic programming for up to
//!   [`exact::HELD_KARP_MAX`] cities (used by the optimality-gap tables in
//!   place of the paper's CPLEX runs) and a brute-force permutation solver
//!   for cross-checking in tests.
//! * **Tour splitting** ([`split`]): partitioning one tour into `k`
//!   depot-anchored sub-tours (the multi-collector extension), including
//!   the minimum number of collectors satisfying a length deadline.
//!
//! All algorithms are generic over a [`CostMatrix`], so they work on raw
//! Euclidean point sets as well as precomputed matrices.
//!
//! ## Conventions
//!
//! * A [`Tour`] is a permutation of `0..n` interpreted as a *closed* tour.
//! * Index `0` is the depot (the data sink). Constructors all start tours
//!   there and [`Tour::normalize`] rotates/orients any permutation into the
//!   canonical depot-first form.

pub mod construct;
pub mod cost;
pub mod exact;
pub mod improve;
pub mod lower_bound;
pub mod neighbors;
pub mod splice;
pub mod split;
pub mod three_opt;
pub mod tour;

pub use construct::{
    cheapest_insertion, cheapest_insertion_reference, christofides_like, greedy_edge, mst_2approx,
    nearest_neighbor,
};
pub use cost::{CostMatrix, EuclideanCost, MatrixCost};
pub use exact::held_karp;
pub use improve::{improve, or_opt, two_opt, ImproveConfig};
pub use lower_bound::held_karp_lower_bound;
pub use neighbors::{
    improve_neighbors, or_opt_neighbors_seeded, two_opt_neighbors, two_opt_neighbors_seeded,
    NeighborLists,
};
pub use splice::{cheapest_insertion_position, splice_point};
pub use split::{min_collectors_for_bound, split_into_k, SplitTour};
pub use three_opt::three_opt;
pub use tour::Tour;

/// Plans a good closed tour over `n` cities (depot = 0): cheapest insertion
/// followed by 2-opt + Or-opt local search. This is the default pipeline
/// used by the SHDG planner.
///
/// ```
/// use mdg_geom::Point;
/// use mdg_tour::{plan_tour, EuclideanCost};
///
/// let pts = [
///     Point::new(0.0, 0.0),  // depot
///     Point::new(10.0, 0.0),
///     Point::new(10.0, 10.0),
///     Point::new(0.0, 10.0),
/// ];
/// let cost = EuclideanCost::new(&pts);
/// let tour = plan_tour(&cost);
/// assert_eq!(tour.order()[0], 0, "tours start at the depot");
/// assert!((tour.length(&cost) - 40.0).abs() < 1e-9, "the square is optimal");
/// ```
pub fn plan_tour<C: CostMatrix + Sync>(cost: &C) -> Tour {
    let t = cheapest_insertion(cost);
    improve(cost, t, &ImproveConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdg_geom::Point;

    #[test]
    fn plan_tour_on_square_is_optimal() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ];
        let cost = EuclideanCost::new(&pts);
        let t = plan_tour(&cost);
        assert!((t.length(&cost) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn plan_tour_tiny_instances() {
        for n in 1..=3usize {
            let pts: Vec<Point> = (0..n).map(|i| Point::new(i as f64, 0.0)).collect();
            let cost = EuclideanCost::new(&pts);
            let t = plan_tour(&cost);
            assert_eq!(t.order().len(), n);
        }
    }
}
