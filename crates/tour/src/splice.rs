//! Incremental tour splicing: cheapest insertion of a new vertex into an
//! existing closed tour.
//!
//! This is the plan-repair entry point: after node failures invalidate
//! polling points, replacements are spliced into the surviving tour
//! without re-solving the whole TSP (a 2-opt touch-up afterwards polishes
//! the splice; see [`mod@crate::improve`]).

use mdg_geom::Point;

/// Finds the cheapest place to insert `p` into the closed tour `cycle`
/// (visited in order, wrapping from the last point back to the first).
///
/// Returns `(index, detour)`: inserting `p` before `cycle[index]` — with
/// `index == cycle.len()` meaning on the closing edge — lengthens the tour
/// by `detour` meters, the minimum over all edges. The returned index is
/// never `0`, preserving the depot-first convention.
///
/// # Panics
/// Panics if `cycle` is empty.
pub fn cheapest_insertion_position(cycle: &[Point], p: Point) -> (usize, f64) {
    assert!(!cycle.is_empty(), "cannot splice into an empty tour");
    let n = cycle.len();
    if n < PAR_SCAN_THRESHOLD {
        return scan_edges(cycle, p, 0, n);
    }
    // Fixed-size blocks scanned independently, then folded in block order
    // with the same strict `<` as the serial loop: each block's winner is
    // its earliest cheapest edge, and the in-order fold keeps the earliest
    // across blocks, so the result is bitwise identical to the serial scan
    // at any thread count.
    let parts = mdg_par::par_chunks(n, PAR_SCAN_BLOCK, |range| {
        scan_edges(cycle, p, range.start, range.end)
    });
    let mut best_idx = n;
    let mut best_detour = f64::INFINITY;
    for (idx, detour) in parts {
        if detour < best_detour {
            best_detour = detour;
            best_idx = idx;
        }
    }
    (best_idx, best_detour)
}

/// Below this cycle length the scan stays serial: the pool hand-off costs
/// more than the arithmetic it would spread.
const PAR_SCAN_THRESHOLD: usize = 8192;
/// Fixed block size so the block boundaries — and hence the fold order —
/// do not depend on the thread count.
const PAR_SCAN_BLOCK: usize = 8192;

/// Serial scan of edges `lo..hi` of `cycle` (edge `i` runs from stop `i`
/// to stop `i+1`, the last edge wrapping to the first stop). Returns the
/// earliest cheapest insertion slot exactly like the public function.
fn scan_edges(cycle: &[Point], p: Point, lo: usize, hi: usize) -> (usize, f64) {
    let n = cycle.len();
    let mut best_idx = n;
    let mut best_detour = f64::INFINITY;
    for i in lo..hi {
        let a = cycle[i];
        let b = cycle[(i + 1) % n];
        let detour = a.dist(p) + p.dist(b) - a.dist(b);
        if detour < best_detour {
            best_detour = detour;
            best_idx = i + 1;
        }
    }
    (best_idx, best_detour)
}

/// Splices `p` into `cycle` at its cheapest position and returns the
/// insertion index (see [`cheapest_insertion_position`]).
pub fn splice_point(cycle: &mut Vec<Point>, p: Point) -> usize {
    let (idx, _) = cheapest_insertion_position(cycle, p);
    cycle.insert(idx, p);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdg_geom::closed_tour_length;

    #[test]
    fn inserts_on_the_nearest_edge() {
        // Unit square; a point just outside the right edge.
        let cycle = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ];
        let (idx, detour) = cheapest_insertion_position(&cycle, Point::new(11.0, 5.0));
        assert_eq!(idx, 2, "between (10,0) and (10,10)");
        assert!(detour > 0.0 && detour < 1.0, "small detour, got {detour}");
    }

    #[test]
    fn splice_matches_reported_detour() {
        let mut cycle = vec![
            Point::new(0.0, 0.0),
            Point::new(30.0, 0.0),
            Point::new(30.0, 30.0),
        ];
        let before = closed_tour_length(&cycle);
        let p = Point::new(15.0, -2.0);
        let (_, detour) = cheapest_insertion_position(&cycle, p);
        splice_point(&mut cycle, p);
        let after = closed_tour_length(&cycle);
        assert!((after - before - detour).abs() < 1e-9);
    }

    #[test]
    fn point_on_an_edge_is_free() {
        let cycle = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let (idx, detour) = cheapest_insertion_position(&cycle, Point::new(5.0, 0.0));
        assert!(detour.abs() < 1e-12);
        assert!(idx == 1 || idx == 2);
    }

    #[test]
    fn singleton_cycle_out_and_back() {
        let cycle = vec![Point::new(0.0, 0.0)];
        let (idx, detour) = cheapest_insertion_position(&cycle, Point::new(3.0, 4.0));
        assert_eq!(idx, 1);
        assert!((detour - 10.0).abs() < 1e-12, "out and back = 2 × 5");
    }

    #[test]
    fn duplicate_of_a_cycle_point_is_free_and_adjacent() {
        // Splicing a point co-located with an existing stop must cost
        // nothing and land on one of that stop's incident edges.
        let cycle = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ];
        for (k, &dup) in cycle.iter().enumerate() {
            let (idx, detour) = cheapest_insertion_position(&cycle, dup);
            assert!(detour.abs() < 1e-12, "duplicate of stop {k} costs {detour}");
            assert!(idx >= 1 && idx <= cycle.len());
            assert!(
                idx == k || idx == k + 1 || (k == 0 && idx == cycle.len()),
                "stop {k}: insertion at {idx} is not adjacent"
            );
        }
    }

    #[test]
    fn all_colocated_cycle_accepts_another_duplicate() {
        // Degenerate geometry: every stop (and the new point) at one spot.
        let mut cycle = vec![Point::new(5.0, 5.0); 3];
        let p = Point::new(5.0, 5.0);
        let (idx, detour) = cheapest_insertion_position(&cycle, p);
        assert_eq!(idx, 1, "earliest edge wins all-zero ties");
        assert!(detour.abs() < 1e-12);
        let at = splice_point(&mut cycle, p);
        assert_eq!(at, 1);
        assert_eq!(cycle.len(), 4);
    }

    #[test]
    fn two_point_cycle_inserts_on_the_cheaper_side() {
        let cycle = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        // Nearer the second point: both edges are (a,b) and (b,a), so the
        // detour is the same either way; the earliest edge must win.
        let (idx, detour) = cheapest_insertion_position(&cycle, Point::new(20.0, 0.0));
        assert_eq!(idx, 1, "tie between the two edges resolves earliest");
        assert!((detour - 20.0).abs() < 1e-12, "2·d(b,p) past the segment");
        // Off-axis point: still one of the two valid slots, detour exact.
        let p = Point::new(5.0, 5.0);
        let (idx, detour) = cheapest_insertion_position(&cycle, p);
        assert!(idx == 1 || idx == 2);
        let expect = cycle[0].dist(p) + p.dist(cycle[1]) - cycle[0].dist(cycle[1]);
        assert!((detour - expect).abs() < 1e-12);
    }

    #[test]
    fn singleton_cycle_with_duplicate_point() {
        let mut cycle = vec![Point::new(7.0, 7.0)];
        let (idx, detour) = cheapest_insertion_position(&cycle, Point::new(7.0, 7.0));
        assert_eq!((idx, detour), (1, 0.0));
        splice_point(&mut cycle, Point::new(7.0, 7.0));
        assert_eq!(cycle.len(), 2);
    }

    #[test]
    fn parallel_scan_matches_serial_above_threshold() {
        // A ring with deliberate exact ties (regular polygon: every edge
        // equidistant from the center point) plus jittered points, large
        // enough to cross PAR_SCAN_THRESHOLD. The blocked scan must agree
        // bitwise with the serial reference at several thread counts.
        let n = PAR_SCAN_THRESHOLD + PAR_SCAN_BLOCK / 2 + 7;
        let cycle: Vec<Point> = (0..n)
            .map(|i| {
                let ang = i as f64 / n as f64 * std::f64::consts::TAU;
                let r = 1000.0 + ((i * 2654435761) % 97) as f64 * 0.01;
                Point::new(r * ang.cos(), r * ang.sin())
            })
            .collect();
        let probes = [
            Point::new(0.0, 0.0),
            Point::new(1001.0, 0.0),
            Point::new(-3000.0, 42.0),
            cycle[n / 3],
        ];
        for p in probes {
            let serial = scan_edges(&cycle, p, 0, n);
            for threads in [1usize, 2, 4] {
                mdg_par::set_threads(threads);
                let par = cheapest_insertion_position(&cycle, p);
                assert_eq!(par.0, serial.0, "threads={threads} p={p:?}");
                assert_eq!(par.1.to_bits(), serial.1.to_bits(), "threads={threads}");
            }
        }
        mdg_par::set_threads(0);
    }

    #[test]
    fn depot_position_never_usurped() {
        let cycle = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
        ];
        // A point nearest the closing edge (back to the depot).
        let (idx, _) = cheapest_insertion_position(&cycle, Point::new(2.0, 3.0));
        assert_eq!(idx, 3, "goes on the closing edge, not before the depot");
    }
}
