//! 3-opt local search.
//!
//! Removes three tour edges and reconnects the segments in the best of the
//! reconnection patterns. Strictly more powerful (and more expensive,
//! `O(n³)` per pass) than 2-opt; the planner's polling-point tours are
//! small enough (tens of points) that a 3-opt polish is cheap, and the A2
//! ablation measures what it buys.

use crate::cost::CostMatrix;
use crate::tour::Tour;

/// Evaluates the 3-opt reconnections for cut points `(i, j, k)` with
/// `1 ≤ i < j < k ≤ n`, applies the best improving one, and returns its
/// gain (0 when no reconnection improves).
///
/// Segment boundaries follow the classic formulation: the tour is cut
/// into `[0..i)`, `[i..j)`, `[j..k)` (and the wrap-around remainder).
fn try_move<C: CostMatrix>(
    cost: &C,
    order: &mut Vec<usize>,
    i: usize,
    j: usize,
    k: usize,
    min_gain: f64,
) -> f64 {
    let n = order.len();
    let (a, b) = (order[i - 1], order[i]);
    let (c, d) = (order[j - 1], order[j]);
    let (e, f) = (order[k - 1], order[k % n]);

    let d0 = cost.cost(a, b) + cost.cost(c, d) + cost.cost(e, f);
    let d1 = cost.cost(a, c) + cost.cost(b, d) + cost.cost(e, f); // reverse [i..j)
    let d2 = cost.cost(a, b) + cost.cost(c, e) + cost.cost(d, f); // reverse [j..k)
    let d3 = cost.cost(a, d) + cost.cost(e, b) + cost.cost(c, f); // swap segments
    let d4 = cost.cost(f, b) + cost.cost(c, d) + cost.cost(e, a); // reverse [i..k)

    if d0 - d1 > min_gain {
        order[i..j].reverse();
        d0 - d1
    } else if d0 - d2 > min_gain {
        order[j..k].reverse();
        d0 - d2
    } else if d0 - d4 > min_gain {
        order[i..k].reverse();
        d0 - d4
    } else if d0 - d3 > min_gain {
        // Reconnect as [0..i) + [j..k) + [i..j) + rest: segment exchange
        // without reversal.
        let mut swapped = Vec::with_capacity(k - i);
        swapped.extend_from_slice(&order[j..k]);
        swapped.extend_from_slice(&order[i..j]);
        order.splice(i..k, swapped);
        d0 - d3
    } else {
        0.0
    }
}

/// 3-opt local search until no improving move remains. Never lengthens the
/// tour. Returns the improved tour in canonical form.
pub fn three_opt<C: CostMatrix>(cost: &C, tour: Tour) -> Tour {
    let mut order = tour.into_order();
    let n = order.len();
    if n < 5 {
        return Tour::from_order_unchecked(order).normalized();
    }
    let min_gain = 1e-9;
    loop {
        let mut improved = false;
        'scan: for i in 1..n - 1 {
            for j in (i + 1)..n {
                for k in (j + 1)..=n {
                    if try_move(cost, &mut order, i, j, k, min_gain) > 0.0 {
                        improved = true;
                        break 'scan;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    Tour::from_order_unchecked(order).normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::nearest_neighbor;
    use crate::cost::MatrixCost;
    use crate::exact::held_karp;
    use crate::improve::two_opt;
    use mdg_geom::Point;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect()
    }

    #[test]
    fn never_lengthens_and_preserves_permutation() {
        for seed in 0..6u64 {
            let pts = random_points(25, seed);
            let cost = MatrixCost::from_points(&pts);
            let base = nearest_neighbor(&cost);
            let len0 = base.length(&cost);
            let improved = three_opt(&cost, base);
            assert!(improved.length(&cost) <= len0 + 1e-9, "seed {seed}");
            let mut sorted = improved.order().to_vec();
            sorted.sort_unstable();
            assert!(sorted.iter().copied().eq(0..25), "seed {seed}");
        }
    }

    #[test]
    fn at_least_as_good_as_two_opt_from_same_start() {
        for seed in 0..4u64 {
            let pts = random_points(20, seed + 100);
            let cost = MatrixCost::from_points(&pts);
            let base = nearest_neighbor(&cost);
            let two = two_opt(&cost, base.clone()).length(&cost);
            let three = three_opt(&cost, base).length(&cost);
            // 3-opt subsumes 2-opt moves; from the same start it cannot
            // land worse than ~the 2-opt local optimum quality class.
            assert!(
                three <= two + 1e-9,
                "seed {}: 3opt {three} vs 2opt {two}",
                seed + 100
            );
        }
    }

    #[test]
    fn never_beats_optimum() {
        for seed in 0..4u64 {
            let pts = random_points(10, seed + 7);
            let cost = MatrixCost::from_points(&pts);
            let (_, opt) = held_karp(&cost);
            let len = three_opt(&cost, nearest_neighbor(&cost)).length(&cost);
            assert!(len >= opt - 1e-9);
            // On tiny instances 3-opt usually *finds* the optimum.
            assert!(
                len <= 1.05 * opt + 1e-9,
                "seed {}: {len} vs {opt}",
                seed + 7
            );
        }
    }

    #[test]
    fn fixes_a_segment_exchange_instance() {
        // Order 0,3,4,1,2,5 on a line needs a segment exchange (pure
        // 2-opt also solves lines, but the d3 case must at least not
        // corrupt the tour).
        let pts: Vec<Point> = (0..6).map(|i| Point::new(i as f64, 0.0)).collect();
        let cost = MatrixCost::from_points(&pts);
        let bad = Tour::new(vec![0, 3, 4, 1, 2, 5]);
        let fixed = three_opt(&cost, bad);
        assert!(
            (fixed.length(&cost) - 10.0).abs() < 1e-9,
            "optimal line sweep"
        );
    }

    #[test]
    fn tiny_instances_untouched() {
        for n in 0..5usize {
            let pts = random_points(n.max(1), 3)[..n].to_vec();
            let cost = MatrixCost::from_points(&pts);
            let t = three_opt(&cost, Tour::identity(n));
            assert_eq!(t.len(), n);
        }
    }
}
