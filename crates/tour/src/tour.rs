//! The closed-tour representation.

use crate::cost::CostMatrix;

/// A closed tour: a permutation of `0..n` visited in order, returning from
/// the last city to the first.
///
/// Tours are usually kept in *canonical form* — depot (city `0`) first, and
/// oriented so that the second city has the smaller id of the two depot
/// neighbors — so that structurally identical tours compare equal. See
/// [`Tour::normalize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tour {
    order: Vec<usize>,
}

impl Tour {
    /// Creates a tour from a visiting order.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..order.len()`.
    pub fn new(order: Vec<usize>) -> Self {
        let mut seen = vec![false; order.len()];
        for &c in &order {
            assert!(c < order.len(), "city {c} out of range");
            assert!(!seen[c], "city {c} repeated");
            seen[c] = true;
        }
        Tour { order }
    }

    /// The identity tour `0, 1, …, n−1`.
    pub fn identity(n: usize) -> Self {
        Tour {
            order: (0..n).collect(),
        }
    }

    /// Creates a tour without validating (internal fast path).
    pub(crate) fn from_order_unchecked(order: Vec<usize>) -> Self {
        debug_assert!({
            let mut sorted = order.clone();
            sorted.sort_unstable();
            sorted.iter().copied().eq(0..order.len())
        });
        Tour { order }
    }

    /// Number of cities.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` for a zero-city tour.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The visiting order.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Consumes the tour, returning the order.
    pub fn into_order(self) -> Vec<usize> {
        self.order
    }

    /// Total closed-tour length under `cost`.
    pub fn length<C: CostMatrix>(&self, cost: &C) -> f64 {
        let n = self.order.len();
        if n < 2 {
            return 0.0;
        }
        let mut total = 0.0;
        for i in 0..n {
            total += cost.cost(self.order[i], self.order[(i + 1) % n]);
        }
        total
    }

    /// Rotates and possibly reverses the order into canonical form: city
    /// `0` first, and the successor of `0` is the smaller-id of `0`'s two
    /// tour neighbors. Closed-tour length is invariant under both
    /// operations.
    pub fn normalize(&mut self) {
        let n = self.order.len();
        if n == 0 {
            return;
        }
        let pos = self
            .order
            .iter()
            .position(|&c| c == 0)
            .expect("city 0 present");
        self.order.rotate_left(pos);
        if n >= 3 && self.order[1] > self.order[n - 1] {
            self.order[1..].reverse();
        }
    }

    /// Returns the canonical form of this tour.
    pub fn normalized(mut self) -> Self {
        self.normalize();
        self
    }

    /// Maps tour cities through `lookup` (e.g. from compact planner indices
    /// back to sensor ids). The result is a plain sequence, not a `Tour`,
    /// since the image need not be a permutation of a prefix.
    pub fn mapped<T: Copy>(&self, lookup: &[T]) -> Vec<T> {
        self.order.iter().map(|&c| lookup[c]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::EuclideanCost;
    use mdg_geom::Point;

    fn square() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ]
    }

    #[test]
    fn length_of_square_tours() {
        let pts = square();
        let cost = EuclideanCost::new(&pts);
        assert!((Tour::new(vec![0, 1, 2, 3]).length(&cost) - 4.0).abs() < 1e-12);
        // Crossing diagonals is longer.
        let crossing = Tour::new(vec![0, 2, 1, 3]).length(&cost);
        assert!(crossing > 4.0);
    }

    #[test]
    fn degenerate_lengths() {
        let pts = square();
        let cost = EuclideanCost::new(&pts);
        assert_eq!(Tour::new(vec![]).length(&cost), 0.0);
        assert_eq!(Tour::new(vec![0]).length(&cost), 0.0);
        // Two cities: out and back.
        let pts2 = vec![Point::new(0.0, 0.0), Point::new(3.0, 0.0)];
        let cost2 = EuclideanCost::new(&pts2);
        assert!((Tour::new(vec![0, 1]).length(&cost2) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_rotation_and_orientation() {
        let mut t = Tour::new(vec![2, 3, 0, 1]);
        t.normalize();
        assert_eq!(t.order(), &[0, 1, 2, 3]);
        // Reverse orientation normalizes to the same canonical order.
        let r = Tour::new(vec![0, 3, 2, 1]).normalized();
        assert_eq!(r.order(), &[0, 1, 2, 3]);
    }

    #[test]
    fn normalize_preserves_length() {
        let pts = square();
        let cost = EuclideanCost::new(&pts);
        let t = Tour::new(vec![2, 0, 3, 1]);
        let len = t.length(&cost);
        let n = t.normalized();
        assert!((n.length(&cost) - len).abs() < 1e-12);
        assert_eq!(n.order()[0], 0);
    }

    #[test]
    fn mapped_applies_lookup() {
        let t = Tour::new(vec![0, 2, 1]);
        let ids = [10usize, 20, 30];
        assert_eq!(t.mapped(&ids), vec![10, 30, 20]);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn repeated_city_panics() {
        Tour::new(vec![0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_city_panics() {
        Tour::new(vec![0, 5]);
    }
}
