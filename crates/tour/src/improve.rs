//! Local-search tour improvement: 2-opt and Or-opt.

use crate::cost::CostMatrix;
use crate::tour::Tour;

/// Limits for the improvement loop.
#[derive(Debug, Clone, Copy)]
pub struct ImproveConfig {
    /// Maximum full passes of each operator (safety valve; local optima are
    /// normally reached much earlier).
    pub max_passes: usize,
    /// Minimum improvement per move; moves below this are treated as noise
    /// and rejected, guaranteeing termination despite floating point.
    pub min_gain: f64,
    /// Maximum Or-opt segment length to relocate.
    pub max_segment: usize,
}

impl Default for ImproveConfig {
    fn default() -> Self {
        ImproveConfig {
            max_passes: 64,
            min_gain: 1e-9,
            max_segment: 3,
        }
    }
}

/// Candidate scans shorter than this run sequentially: the pool dispatch
/// overhead outweighs the arithmetic. The gate only affects *where* the
/// scan runs — [`mdg_par::par_find_first_map`] returns the same earliest
/// hit as the sequential scan — so the tour is identical either way.
const PAR_SCAN_MIN: usize = 128;

/// One first-improvement 2-opt pass; returns the total gain.
///
/// A 2-opt move removes edges `(order[i], order[i+1])` and
/// `(order[j], order[j+1])` and reverses the segment between them.
///
/// Moves are scanned in lexicographic `(i, j)` order and the first
/// improving one is applied immediately; the scan then **continues from
/// the same `i`** (whose successor edge the reversal just replaced) rather
/// than restarting the whole pass from `i = 0`. Sweeps repeat until one
/// full sweep accepts no move, so the result is still a 2-opt local
/// optimum; the quadratic restart cost per accepted move is gone.
///
/// Candidate moves for a given `i` are *evaluated* in parallel (the scan
/// picks the earliest improving `j`, exactly as the sequential loop does)
/// while every *application* stays on the caller thread, so the move
/// sequence — and the final tour — is bit-identical at any thread count.
fn two_opt_pass<C: CostMatrix + Sync>(cost: &C, order: &mut [usize], min_gain: f64) -> f64 {
    let n = order.len();
    let mut total_gain = 0.0;
    if n < 4 {
        return 0.0;
    }
    let mut moves = 0u64;
    let mut improved = true;
    while improved {
        improved = false;
        for i in 0..n - 1 {
            let a = order[i];
            // After an applied move, continue from the same i: the reversal
            // replaced the successor edge of `a`, so re-read it and rescan.
            loop {
                let b = order[i + 1];
                let d_ab = cost.cost(a, b);
                let hit = {
                    let eval = |j: usize| {
                        // Skip the move that would touch the same edge
                        // twice (wraps to i == 0 and j == n-1).
                        if i == 0 && j == n - 1 {
                            return None;
                        }
                        let c = order[j];
                        let d = order[(j + 1) % n];
                        let gain = d_ab + cost.cost(c, d) - cost.cost(a, c) - cost.cost(b, d);
                        (gain > min_gain).then_some(gain)
                    };
                    let len = n - (i + 2);
                    if len >= PAR_SCAN_MIN {
                        mdg_par::par_find_first_map(len, |idx| eval(i + 2 + idx))
                            .map(|(idx, gain)| (i + 2 + idx, gain))
                    } else {
                        (i + 2..n).find_map(|j| eval(j).map(|gain| (j, gain)))
                    }
                };
                let Some((j, gain)) = hit else { break };
                order[i + 1..=j].reverse();
                total_gain += gain;
                moves += 1;
                improved = true;
            }
        }
    }
    mdg_obs::counter("improve/two_opt_moves").add(moves);
    total_gain
}

/// 2-opt local search until no improving move remains. Never lengthens the
/// tour.
pub fn two_opt<C: CostMatrix + Sync>(cost: &C, tour: Tour) -> Tour {
    let mut order = tour.into_order();
    two_opt_pass(cost, &mut order, ImproveConfig::default().min_gain);
    Tour::from_order_unchecked(order).normalized()
}

/// One Or-opt pass: relocates segments of length `1..=max_segment` to a
/// better position (possibly reversed). Returns the total gain.
///
/// Like [`two_opt_pass`], insertion positions are *evaluated* in parallel
/// (earliest improving position wins, as in the sequential scan) and
/// applied sequentially, keeping the result thread-count-independent.
fn or_opt_pass<C: CostMatrix + Sync>(
    cost: &C,
    order: &mut Vec<usize>,
    max_segment: usize,
    min_gain: f64,
) -> f64 {
    let n = order.len();
    let mut total_gain = 0.0;
    if n < 4 {
        return 0.0;
    }
    let mut moves = 0u64;
    let mut improved = true;
    while improved {
        improved = false;
        'moves: for seg_len in 1..=max_segment.min(n.saturating_sub(2)) {
            for start in 0..n {
                // Segment occupies positions start..start+seg_len (no wrap
                // for simplicity; rotations expose wrapped segments across
                // passes).
                if start + seg_len >= n {
                    continue;
                }
                let prev = order[(start + n - 1) % n];
                let first = order[start];
                let last = order[start + seg_len - 1];
                let next = order[(start + seg_len) % n];
                if prev == last || next == first {
                    continue;
                }
                let removal_gain =
                    cost.cost(prev, first) + cost.cost(last, next) - cost.cost(prev, next);
                if removal_gain <= min_gain {
                    continue;
                }
                // Try reinserting between every other consecutive pair,
                // taking the earliest improving position.
                let hit = {
                    let eval = |pos: usize| {
                        // Insertion edge must be outside the removed
                        // segment's neighborhood: positions start-1 (mod n,
                        // the edge into the segment) through start+seg_len
                        // are excluded.
                        let before = (start + n - 1) % n;
                        if pos == before || (pos >= start && pos <= start + seg_len) {
                            return None;
                        }
                        let ins_a = order[pos];
                        let ins_b = order[(pos + 1) % n];
                        let base = cost.cost(ins_a, ins_b);
                        let fwd = cost.cost(ins_a, first) + cost.cost(last, ins_b) - base;
                        let rev = cost.cost(ins_a, last) + cost.cost(first, ins_b) - base;
                        let (ins_cost, reversed) = if fwd <= rev {
                            (fwd, false)
                        } else {
                            (rev, true)
                        };
                        let gain = removal_gain - ins_cost;
                        (gain > min_gain).then_some((gain, reversed))
                    };
                    if n >= PAR_SCAN_MIN {
                        mdg_par::par_find_first_map(n, eval)
                    } else {
                        (0..n).find_map(|pos| eval(pos).map(|m| (pos, m)))
                    }
                };
                if let Some((pos, (gain, reversed))) = hit {
                    // Execute: remove the segment, then insert.
                    let ins_a = order[pos];
                    let mut seg: Vec<usize> = order.drain(start..start + seg_len).collect();
                    if reversed {
                        seg.reverse();
                    }
                    // Find the insertion anchor after removal.
                    let anchor = order
                        .iter()
                        .position(|&c| c == ins_a)
                        .expect("anchor survives removal");
                    let at = anchor + 1;
                    for (k, c) in seg.into_iter().enumerate() {
                        order.insert(at + k, c);
                    }
                    total_gain += gain;
                    moves += 1;
                    improved = true;
                    continue 'moves;
                }
            }
        }
    }
    mdg_obs::counter("improve/or_opt_moves").add(moves);
    total_gain
}

/// Or-opt local search (segment relocation) until no improving move
/// remains. Never lengthens the tour.
pub fn or_opt<C: CostMatrix + Sync>(cost: &C, tour: Tour) -> Tour {
    let mut order = tour.into_order();
    let cfg = ImproveConfig::default();
    or_opt_pass(cost, &mut order, cfg.max_segment, cfg.min_gain);
    Tour::from_order_unchecked(order).normalized()
}

/// Alternates 2-opt and Or-opt passes until neither improves (or
/// `max_passes` is hit). The standard polishing step of the planner.
pub fn improve<C: CostMatrix + Sync>(cost: &C, tour: Tour, cfg: &ImproveConfig) -> Tour {
    let mut order = tour.into_order();
    let mut sp = mdg_obs::span("improve");
    sp.add_items(order.len() as u64);
    for _ in 0..cfg.max_passes {
        let g1 = two_opt_pass(cost, &mut order, cfg.min_gain);
        let g2 = or_opt_pass(cost, &mut order, cfg.max_segment, cfg.min_gain);
        if g1 + g2 <= cfg.min_gain {
            // Local optimum for this rotation. Or-opt skips wrapped
            // segments, so the returned (normalized) rotation could still
            // admit a move; converge on the normalized rotation too so the
            // result is a true fixed point of this function.
            order = Tour::from_order_unchecked(order).normalized().into_order();
            let g3 = two_opt_pass(cost, &mut order, cfg.min_gain);
            let g4 = or_opt_pass(cost, &mut order, cfg.max_segment, cfg.min_gain);
            if g3 + g4 <= cfg.min_gain {
                break;
            }
        }
    }
    Tour::from_order_unchecked(order).normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::nearest_neighbor;
    use crate::cost::MatrixCost;
    use mdg_geom::Point;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect()
    }

    #[test]
    fn two_opt_uncrosses_square() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ];
        let cost = MatrixCost::from_points(&pts);
        let crossed = Tour::new(vec![0, 1, 2, 3]); // figure-eight
        let fixed = two_opt(&cost, crossed);
        assert!((fixed.length(&cost) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn improvements_never_lengthen() {
        for seed in 0..5u64 {
            let pts = random_points(30, seed);
            let cost = MatrixCost::from_points(&pts);
            let t0 = nearest_neighbor(&cost);
            let len0 = t0.length(&cost);
            let t1 = two_opt(&cost, t0.clone());
            assert!(t1.length(&cost) <= len0 + 1e-9, "2-opt (seed {seed})");
            let t2 = or_opt(&cost, t0.clone());
            assert!(t2.length(&cost) <= len0 + 1e-9, "or-opt (seed {seed})");
            let t3 = improve(&cost, t0, &ImproveConfig::default());
            assert!(
                t3.length(&cost) <= t1.length(&cost) + 1e-9,
                "combined ≤ 2-opt"
            );
        }
    }

    #[test]
    fn improve_preserves_permutation() {
        let pts = random_points(40, 99);
        let cost = MatrixCost::from_points(&pts);
        let t = improve(&cost, nearest_neighbor(&cost), &ImproveConfig::default());
        let mut sorted = t.order().to_vec();
        sorted.sort_unstable();
        assert!(sorted.iter().copied().eq(0..40));
    }

    #[test]
    fn or_opt_relocates_outlier() {
        // A city badly placed in the order gets relocated by Or-opt alone.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(0.5, 0.1), // belongs near the depot
            Point::new(20.0, 0.0),
            Point::new(30.0, 0.0),
        ];
        let cost = MatrixCost::from_points(&pts);
        let bad = Tour::new(vec![0, 1, 2, 3, 4]);
        let better = or_opt(&cost, bad.clone());
        assert!(better.length(&cost) < bad.length(&cost) - 1.0);
    }

    #[test]
    fn tiny_tours_are_untouched() {
        let pts = random_points(3, 0);
        let cost = MatrixCost::from_points(&pts);
        let t = Tour::identity(3);
        let len = t.length(&cost);
        let improved = improve(&cost, t, &ImproveConfig::default());
        assert!(
            (improved.length(&cost) - len).abs() < 1e-9,
            "n=3 has a unique tour"
        );
    }

    #[test]
    fn idempotent_at_local_optimum() {
        let pts = random_points(25, 5);
        let cost = MatrixCost::from_points(&pts);
        let cfg = ImproveConfig::default();
        let once = improve(&cost, nearest_neighbor(&cost), &cfg);
        let twice = improve(&cost, once.clone(), &cfg);
        assert!((twice.length(&cost) - once.length(&cost)).abs() < 1e-9);
    }
}
