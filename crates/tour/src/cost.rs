//! Cost abstractions for tour algorithms.

use mdg_geom::{DistMatrix, Point};

/// A symmetric, non-negative cost function over cities `0..n`.
///
/// Implementations must satisfy `cost(i, j) == cost(j, i)` and
/// `cost(i, i) == 0`; the algorithms in this crate rely on both.
pub trait CostMatrix {
    /// Number of cities.
    fn n(&self) -> usize;
    /// Cost between two cities.
    fn cost(&self, i: usize, j: usize) -> f64;
}

/// Euclidean costs computed on the fly from a point slice. Zero setup cost;
/// `O(1)` per query with a `sqrt`. Preferred for one-shot planning.
#[derive(Debug, Clone, Copy)]
pub struct EuclideanCost<'a> {
    points: &'a [Point],
}

impl<'a> EuclideanCost<'a> {
    /// Wraps `points` as a cost matrix.
    pub fn new(points: &'a [Point]) -> Self {
        EuclideanCost { points }
    }

    /// The underlying points.
    pub fn points(&self) -> &'a [Point] {
        self.points
    }
}

impl CostMatrix for EuclideanCost<'_> {
    #[inline]
    fn n(&self) -> usize {
        self.points.len()
    }

    #[inline]
    fn cost(&self, i: usize, j: usize) -> f64 {
        self.points[i].dist(self.points[j])
    }
}

/// Precomputed dense costs. Preferred when an algorithm makes `Ω(n²)`
/// queries (2-opt passes, Held–Karp).
#[derive(Debug, Clone)]
pub struct MatrixCost {
    matrix: DistMatrix,
}

impl MatrixCost {
    /// Precomputes all pairwise Euclidean distances of `points`.
    pub fn from_points(points: &[Point]) -> Self {
        MatrixCost {
            matrix: DistMatrix::from_points(points),
        }
    }

    /// Wraps an existing distance matrix.
    pub fn from_matrix(matrix: DistMatrix) -> Self {
        MatrixCost { matrix }
    }
}

impl CostMatrix for MatrixCost {
    #[inline]
    fn n(&self) -> usize {
        self.matrix.n()
    }

    #[inline]
    fn cost(&self, i: usize, j: usize) -> f64 {
        self.matrix.get(i, j)
    }
}

impl CostMatrix for DistMatrix {
    #[inline]
    fn n(&self) -> usize {
        DistMatrix::n(self)
    }

    #[inline]
    fn cost(&self, i: usize, j: usize) -> f64 {
        self.get(i, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 4.0),
            Point::new(6.0, 8.0),
        ]
    }

    #[test]
    fn euclidean_and_matrix_agree() {
        let points = pts();
        let e = EuclideanCost::new(&points);
        let m = MatrixCost::from_points(&points);
        assert_eq!(e.n(), 3);
        assert_eq!(m.n(), 3);
        for i in 0..3 {
            for j in 0..3 {
                assert!((e.cost(i, j) - m.cost(i, j)).abs() < 1e-12);
                assert!((e.cost(i, j) - e.cost(j, i)).abs() < 1e-12, "symmetry");
            }
            assert_eq!(e.cost(i, i), 0.0);
        }
        assert!((e.cost(0, 1) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distmatrix_is_a_cost_matrix() {
        let m = DistMatrix::from_points(&pts());
        let c: &dyn CostMatrix = &m;
        assert_eq!(c.n(), 3);
        assert!((c.cost(0, 2) - 10.0).abs() < 1e-12);
    }
}
