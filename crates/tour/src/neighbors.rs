//! Neighbor-list local search: 2-opt and Or-opt restricted to k-nearest-
//! neighbor candidate moves, with don't-look bits.
//!
//! Full 2-opt examines all `O(n²)` edge pairs per sweep, which caps the
//! planner at a few thousand stops. The standard remedy (Bentley, "Fast
//! algorithms for geometric traveling salesman problems") is to only try
//! moves that create an edge to one of a city's `k` nearest neighbors:
//! since improving 2-opt moves must create at least one edge shorter than
//! an edge they remove, candidate lists sorted by distance plus the
//! `d(a,c) ≥ d(a,b)` prune lose almost nothing while cutting the sweep to
//! `O(n·k)`. Don't-look bits skip cities whose neighborhood has not
//! changed since they were last scanned, and segment reversals always flip
//! the shorter arc of the cyclic order, so a single move costs `O(n/2)`
//! worst case instead of `O(n)`.
//!
//! The entry point is [`improve_neighbors`], the large-instance analogue of
//! [`improve`](crate::improve::improve); [`NeighborLists`] is reusable
//! across calls on the same point set.

use crate::improve::ImproveConfig;
use crate::tour::Tour;
use mdg_geom::{Point, SpatialGrid};
use std::collections::VecDeque;

/// Per-city k-nearest-neighbor candidate lists, built once from a
/// [`SpatialGrid`] over the city coordinates and reused by every
/// neighbor-list pass.
///
/// Lists are sorted by ascending distance (ties by index), which the 2-opt
/// scan relies on for its early-exit prune.
#[derive(Debug, Clone)]
pub struct NeighborLists {
    /// Per-city list length: `min(k, n - 1)`.
    stride: usize,
    /// Flattened `n × stride` neighbor indices.
    flat: Vec<u32>,
}

impl NeighborLists {
    /// Builds `k`-nearest-neighbor lists for `points`. The grid cell is
    /// sized to the mean point spacing so the expected query cost is
    /// `O(k)` per city.
    pub fn build(points: &[Point], k: usize) -> Self {
        let n = points.len();
        let stride = k.min(n.saturating_sub(1));
        if stride == 0 {
            return NeighborLists {
                stride,
                flat: Vec::new(),
            };
        }
        let mut sp = mdg_obs::span("knn_build");
        sp.add_items(n as u64);
        let bb = mdg_geom::Aabb::from_points(points).expect("non-empty point set");
        let area = (bb.width() * bb.height()).max(1e-12);
        let cell = (area / n as f64).sqrt().max(1e-9);
        let grid = SpatialGrid::build(points, cell);
        // Each city's list is an independent grid query, so the k-NN
        // builds parallelize trivially; every block writes its cities'
        // rows straight into the (exactly sized) output, so the result is
        // identical to the sequential build and the only allocation is
        // `flat` itself. Query scratch comes from the worker's pool.
        let mut flat = vec![0u32; n * stride];
        const CITY_BLOCK: usize = 512;
        mdg_par::par_chunks_mut(&mut flat, CITY_BLOCK * stride, |start, rows| {
            debug_assert_eq!(start % stride, 0);
            debug_assert_eq!(rows.len() % stride, 0);
            let mut hits: Vec<(f64, u32)> = mdg_par::scratch::take();
            let mut knn: Vec<u32> = mdg_par::scratch::take_cap(stride);
            for (c, row) in rows.chunks_exact_mut(stride).enumerate() {
                let i = start / stride + c;
                grid.k_nearest_into(points[i], stride, Some(i as u32), &mut hits, &mut knn);
                debug_assert_eq!(knn.len(), stride);
                row.copy_from_slice(&knn);
            }
            mdg_par::scratch::put(hits);
            mdg_par::scratch::put(knn);
        });
        NeighborLists { stride, flat }
    }

    /// The candidate list of city `i`, sorted by ascending distance.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.flat[i * self.stride..(i + 1) * self.stride]
    }

    /// Neighbors kept per city.
    pub fn k(&self) -> usize {
        self.stride
    }
}

/// Builds the initial work queue and queued-bit vector from `seeds`
/// (`None` = every city, in tour order), drawing both buffers from the
/// thread's scratch pool — the passes run once per tile per delta in the
/// hierarchical planner, so their working set is worth reusing. Callers
/// return both via [`release_queue`] when the pass ends.
fn seed_queue(order: &[usize], seeds: Option<&[usize]>) -> (VecDeque<u32>, Vec<bool>) {
    let n = order.len();
    let mut queue = mdg_par::scratch::take_deque_u32();
    let mut queued: Vec<bool> = mdg_par::scratch::take_cap(n);
    queued.resize(n, false);
    match seeds {
        None => {
            for &c in order {
                queued[c] = true;
                queue.push_back(c as u32);
            }
        }
        Some(cities) => {
            for &c in cities {
                if c < n && !queued[c] {
                    queued[c] = true;
                    queue.push_back(c as u32);
                }
            }
        }
    }
    (queue, queued)
}

/// Returns the buffers from [`seed_queue`] to the thread's scratch pool.
fn release_queue(queue: VecDeque<u32>, queued: Vec<bool>) {
    mdg_par::scratch::put_deque_u32(queue);
    mdg_par::scratch::put(queued);
}

/// Takes a position vector (`pos[city] = index in order`) from the
/// thread's scratch pool, sized and filled for `order`.
fn take_pos(order: &[usize]) -> Vec<u32> {
    let mut pos: Vec<u32> = mdg_par::scratch::take_cap(order.len());
    pos.resize(order.len(), 0);
    for (p, &c) in order.iter().enumerate() {
        pos[c] = p as u32;
    }
    pos
}

/// Reverses the cyclic segment running forward from position `from` to
/// position `to` (inclusive), flipping whichever arc is shorter — for a
/// symmetric cost the two choices yield the same cyclic tour.
fn reverse_cyclic(order: &mut [usize], pos: &mut [u32], from: usize, to: usize) {
    let n = order.len();
    let len_fwd = (to + n - from) % n + 1;
    let (mut i, mut j, len) = if 2 * len_fwd <= n {
        (from, to, len_fwd)
    } else {
        ((to + 1) % n, (from + n - 1) % n, n - len_fwd)
    };
    for _ in 0..len / 2 {
        order.swap(i, j);
        pos[order[i]] = i as u32;
        pos[order[j]] = j as u32;
        i = if i + 1 == n { 0 } else { i + 1 };
        j = if j == 0 { n - 1 } else { j - 1 };
    }
}

/// Queue-driven neighbor-list 2-opt: processes cities off a work queue,
/// and whenever a move is applied, wakes the four affected cities. Returns
/// the total gain.
///
/// `seeds` selects the initial queue: `None` enqueues every city (a full
/// sweep); `Some(cities)` starts with only those cities' don't-look bits
/// cleared, so the search stays local to their neighborhoods — other
/// cities are examined only once a move wakes them.
fn two_opt_neighbors_pass(
    points: &[Point],
    nl: &NeighborLists,
    order: &mut [usize],
    pos: &mut [u32],
    min_gain: f64,
    seeds: Option<&[usize]>,
) -> f64 {
    let n = order.len();
    let mut total_gain = 0.0;
    if n < 4 || nl.k() == 0 {
        return 0.0;
    }
    let mut moves = 0u64;
    // The queue holds cities with their don't-look bit cleared; a city is
    // re-examined only after a move touches its tour neighborhood.
    let (mut queue, mut queued) = seed_queue(order, seeds);
    while let Some(a) = queue.pop_front() {
        let a = a as usize;
        queued[a] = false;
        let mut moved = true;
        while moved {
            moved = false;
            // Scan both tour directions: `b` is the successor of `a` in the
            // chosen orientation, and the move replaces edges (a,b),(c,d)
            // with (a,c),(b,d) where d succeeds c in the same orientation.
            for fwd in [true, false] {
                let pa = pos[a] as usize;
                let b = if fwd {
                    order[(pa + 1) % n]
                } else {
                    order[(pa + n - 1) % n]
                };
                let d_ab = points[a].dist(points[b]);
                for &cu in nl.neighbors(a) {
                    let c = cu as usize;
                    let d_ac = points[a].dist(points[c]);
                    if d_ac >= d_ab {
                        // Candidates are sorted by distance: no move rooted
                        // at `a` further down the list can gain.
                        break;
                    }
                    let pc = pos[c] as usize;
                    let d = if fwd {
                        order[(pc + 1) % n]
                    } else {
                        order[(pc + n - 1) % n]
                    };
                    if c == b || d == a {
                        continue; // Degenerate: shares an edge with (a,b).
                    }
                    let gain = d_ab + points[c].dist(points[d]) - d_ac - points[b].dist(points[d]);
                    if gain > min_gain {
                        if fwd {
                            reverse_cyclic(order, pos, (pa + 1) % n, pc);
                        } else {
                            reverse_cyclic(order, pos, pa, (pc + n - 1) % n);
                        }
                        total_gain += gain;
                        moves += 1;
                        for city in [a, b, c, d] {
                            if !queued[city] {
                                queued[city] = true;
                                queue.push_back(city as u32);
                            }
                        }
                        moved = true;
                        break;
                    }
                }
                if moved {
                    break;
                }
            }
        }
    }
    release_queue(queue, queued);
    mdg_obs::counter("improve/two_opt_moves").add(moves);
    total_gain
}

/// Queue-driven neighbor-list Or-opt: relocates segments of length
/// `1..=max_segment` (possibly reversed) to an insertion edge adjacent to
/// a k-nearest neighbor of one of the segment's endpoints. Returns the
/// total gain.
///
/// `seeds` selects the initial queue exactly as in
/// [`two_opt_neighbors_pass`]: `None` enqueues every city, `Some(cities)`
/// only those (out-of-range and duplicate entries ignored).
fn or_opt_neighbors_pass(
    points: &[Point],
    nl: &NeighborLists,
    order: &mut Vec<usize>,
    pos: &mut [u32],
    max_segment: usize,
    min_gain: f64,
    seeds: Option<&[usize]>,
) -> f64 {
    let n = order.len();
    let mut total_gain = 0.0;
    if n < 4 || nl.k() == 0 {
        return 0.0;
    }
    let max_segment = max_segment.min(n - 2).max(1);
    let (mut queue, mut queued) = seed_queue(order, seeds);
    let mut moves = 0u64;
    'cities: while let Some(first) = queue.pop_front() {
        let first = first as usize;
        queued[first] = false;
        for seg_len in 1..=max_segment {
            let start = pos[first] as usize;
            // Like the dense pass, skip segments that wrap position 0;
            // alternation with 2-opt re-exposes them under new rotations.
            if start + seg_len >= n || start == 0 {
                continue;
            }
            let prev = order[start - 1];
            let last = order[start + seg_len - 1];
            let next = order[(start + seg_len) % n];
            let removal_gain = points[prev].dist(points[first]) + points[last].dist(points[next])
                - points[prev].dist(points[next]);
            if removal_gain <= min_gain {
                continue;
            }
            // Insertion anchors: cities whose successor edge we would
            // split, drawn from the endpoints' candidate lists.
            let anchors = nl.neighbors(first).iter().chain(nl.neighbors(last).iter());
            for &eu in anchors {
                let e = eu as usize;
                let pe = pos[e] as usize;
                // The anchor edge must lie outside [prev .. next).
                if pe + 1 >= start && pe <= start + seg_len {
                    continue;
                }
                let f = order[(pe + 1) % n];
                let base = points[e].dist(points[f]);
                let fw = points[e].dist(points[first]) + points[last].dist(points[f]) - base;
                let rv = points[e].dist(points[last]) + points[first].dist(points[f]) - base;
                let (ins_cost, reversed) = if fw <= rv { (fw, false) } else { (rv, true) };
                let gain = removal_gain - ins_cost;
                if gain > min_gain {
                    let mut seg: Vec<usize> = mdg_par::scratch::take();
                    seg.extend(order.drain(start..start + seg_len));
                    if reversed {
                        seg.reverse();
                    }
                    let anchor = order
                        .iter()
                        .position(|&c| c == e)
                        .expect("anchor survives removal");
                    for (k, &c) in seg.iter().enumerate() {
                        order.insert(anchor + 1 + k, c);
                    }
                    mdg_par::scratch::put(seg);
                    for (p, &c) in order.iter().enumerate() {
                        pos[c] = p as u32;
                    }
                    total_gain += gain;
                    moves += 1;
                    for city in [prev, first, last, next, e, f] {
                        if !queued[city] {
                            queued[city] = true;
                            queue.push_back(city as u32);
                        }
                    }
                    // Re-examine this city from scratch.
                    if !queued[first] {
                        queued[first] = true;
                        queue.push_back(first as u32);
                    }
                    continue 'cities;
                }
            }
        }
    }
    release_queue(queue, queued);
    mdg_obs::counter("improve/or_opt_moves").add(moves);
    total_gain
}

/// Neighbor-list 2-opt local search over `points` (city `i` at
/// `points[i]`): the `O(n·k)`-per-sweep analogue of
/// [`two_opt`](crate::improve::two_opt). Never lengthens the tour.
pub fn two_opt_neighbors(points: &[Point], tour: Tour, nl: &NeighborLists, min_gain: f64) -> Tour {
    let mut order = tour.into_order();
    let mut pos = take_pos(&order);
    two_opt_neighbors_pass(points, nl, &mut order, &mut pos, min_gain, None);
    mdg_par::scratch::put(pos);
    Tour::from_order_unchecked(order).normalized()
}

/// Seeded neighbor-list 2-opt: like [`two_opt_neighbors`], but the work
/// queue starts from `seeds` (city indices) instead of every city, so the
/// search only examines those cities' neighborhoods — plus whatever a
/// successful move wakes up transitively.
///
/// This is the hierarchical stitcher's touch-up primitive: after per-tile
/// sub-tours are concatenated, only the cross-tile seam edges can be bad,
/// so seeding the seam vertices polishes the seams at a cost proportional
/// to the seams, not the tour. Out-of-range and duplicate seeds are
/// ignored; an empty seed list returns the tour unchanged (normalized).
pub fn two_opt_neighbors_seeded(
    points: &[Point],
    tour: Tour,
    nl: &NeighborLists,
    min_gain: f64,
    seeds: &[usize],
) -> Tour {
    let mut order = tour.into_order();
    let mut pos = take_pos(&order);
    two_opt_neighbors_pass(points, nl, &mut order, &mut pos, min_gain, Some(seeds));
    mdg_par::scratch::put(pos);
    Tour::from_order_unchecked(order).normalized()
}

/// Seeded neighbor-list Or-opt: like the Or-opt half of
/// [`improve_neighbors`], but the work queue starts from `seeds` (city
/// indices) instead of every city, so segment relocations are only tried
/// around those cities — plus whatever a successful move wakes up.
///
/// Companion to [`two_opt_neighbors_seeded`] for seam polishing in the
/// hierarchical stitcher: 2-opt uncrosses seam edges, Or-opt then pulls
/// stray 1–3 stop segments across a seam when the tile boundary split them
/// badly. Out-of-range and duplicate seeds are ignored; an empty seed list
/// returns the tour unchanged (normalized). Never lengthens the tour.
pub fn or_opt_neighbors_seeded(
    points: &[Point],
    tour: Tour,
    nl: &NeighborLists,
    max_segment: usize,
    min_gain: f64,
    seeds: &[usize],
) -> Tour {
    let mut order = tour.into_order();
    let mut pos = take_pos(&order);
    or_opt_neighbors_pass(
        points,
        nl,
        &mut order,
        &mut pos,
        max_segment,
        min_gain,
        Some(seeds),
    );
    mdg_par::scratch::put(pos);
    Tour::from_order_unchecked(order).normalized()
}

/// Neighbor-list analogue of [`improve`](crate::improve::improve):
/// alternates candidate-list 2-opt and Or-opt until neither gains (or
/// `max_passes` is hit). This is the planner's polishing step for large
/// stop counts, where the dense passes are unaffordable.
///
/// ```
/// use mdg_geom::Point;
/// use mdg_tour::{improve_neighbors, EuclideanCost, ImproveConfig, NeighborLists, Tour};
///
/// let pts = vec![
///     Point::new(0.0, 0.0),
///     Point::new(1.0, 1.0),
///     Point::new(1.0, 0.0),
///     Point::new(0.0, 1.0),
/// ];
/// let nl = NeighborLists::build(&pts, 3);
/// let t = improve_neighbors(&pts, Tour::new(vec![0, 1, 2, 3]), &ImproveConfig::default(), &nl);
/// let cost = EuclideanCost::new(&pts);
/// assert!((t.length(&cost) - 4.0).abs() < 1e-9, "uncrossed square is optimal");
/// ```
pub fn improve_neighbors(
    points: &[Point],
    tour: Tour,
    cfg: &ImproveConfig,
    nl: &NeighborLists,
) -> Tour {
    let mut order = tour.into_order();
    let n = order.len();
    let mut sp = mdg_obs::span("improve");
    sp.add_items(n as u64);
    let mut pos = take_pos(&order);
    for _ in 0..cfg.max_passes {
        let g1 = two_opt_neighbors_pass(points, nl, &mut order, &mut pos, cfg.min_gain, None);
        let g2 = or_opt_neighbors_pass(
            points,
            nl,
            &mut order,
            &mut pos,
            cfg.max_segment,
            cfg.min_gain,
            None,
        );
        if g1 + g2 <= cfg.min_gain {
            break;
        }
    }
    mdg_par::scratch::put(pos);
    Tour::from_order_unchecked(order).normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::nearest_neighbor;
    use crate::cost::EuclideanCost;
    use crate::improve::{improve, two_opt};
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect()
    }

    #[test]
    fn lists_are_sorted_and_exclude_self() {
        let pts = random_points(50, 1);
        let nl = NeighborLists::build(&pts, 8);
        for (i, &p) in pts.iter().enumerate() {
            let ns = nl.neighbors(i);
            assert_eq!(ns.len(), 8);
            assert!(!ns.contains(&(i as u32)));
            for w in ns.windows(2) {
                assert!(
                    pts[w[0] as usize].dist(p) <= pts[w[1] as usize].dist(p),
                    "list must be sorted by distance"
                );
            }
        }
    }

    #[test]
    fn uncrosses_square() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ];
        let nl = NeighborLists::build(&pts, 3);
        let fixed = two_opt_neighbors(&pts, Tour::new(vec![0, 1, 2, 3]), &nl, 1e-9);
        let cost = EuclideanCost::new(&pts);
        assert!((fixed.length(&cost) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn never_lengthens_and_preserves_permutation() {
        for seed in 0..10u64 {
            let pts = random_points(60, seed);
            let cost = EuclideanCost::new(&pts);
            let nl = NeighborLists::build(&pts, 10);
            let t0 = nearest_neighbor(&cost);
            let len0 = t0.length(&cost);
            let t1 = improve_neighbors(&pts, t0, &ImproveConfig::default(), &nl);
            assert!(t1.length(&cost) <= len0 + 1e-9, "seed {seed}");
            let mut sorted = t1.order().to_vec();
            sorted.sort_unstable();
            assert!(sorted.iter().copied().eq(0..60), "seed {seed}");
        }
    }

    #[test]
    fn full_lists_track_dense_improve_quality() {
        // With k = n-1 the candidate lists are complete; the neighbor-list
        // search must land within a whisker of the dense one.
        for seed in [3u64, 17, 42] {
            let pts = random_points(40, seed);
            let cost = EuclideanCost::new(&pts);
            let nl = NeighborLists::build(&pts, 39);
            let t0 = nearest_neighbor(&cost);
            let dense = improve(&cost, t0.clone(), &ImproveConfig::default());
            let sparse = improve_neighbors(&pts, t0, &ImproveConfig::default(), &nl);
            assert!(
                sparse.length(&cost) <= dense.length(&cost) * 1.05 + 1e-9,
                "seed {seed}: sparse {} vs dense {}",
                sparse.length(&cost),
                dense.length(&cost)
            );
        }
    }

    #[test]
    fn nl_two_opt_not_longer_than_dense_two_opt() {
        for seed in 0..20u64 {
            let pts = random_points(80, seed);
            let cost = EuclideanCost::new(&pts);
            let nl = NeighborLists::build(&pts, 12);
            let t0 = nearest_neighbor(&cost);
            let dense = two_opt(&cost, t0.clone()).length(&cost);
            let sparse = improve_neighbors(&pts, t0, &ImproveConfig::default(), &nl).length(&cost);
            assert!(
                sparse <= dense + 1e-9,
                "seed {seed}: NL improve {sparse} vs dense 2-opt {dense}"
            );
        }
    }

    #[test]
    fn reverse_cyclic_matches_plain_reverse() {
        // Interior segment, wrapped segment, and whole-tour cases.
        let base: Vec<usize> = (0..7).collect();
        for (from, to) in [(1usize, 4usize), (5, 1), (0, 6), (3, 3)] {
            let mut order = base.clone();
            let mut pos = vec![0u32; 7];
            for (p, &c) in order.iter().enumerate() {
                pos[c] = p as u32;
            }
            reverse_cyclic(&mut order, &mut pos, from, to);
            // pos stays consistent.
            for (p, &c) in order.iter().enumerate() {
                assert_eq!(pos[c], p as u32);
            }
            // Check against a rotate-reverse-rotate reference.
            let n = 7;
            let len = (to + n - from) % n + 1;
            let mut reference = base.clone();
            let seg: Vec<usize> = (0..len).map(|o| reference[(from + o) % n]).collect();
            for (o, &c) in seg.iter().rev().enumerate() {
                reference[(from + o) % n] = c;
            }
            // The two may differ by reversing the complement: compare as
            // cyclic tours (same undirected edge multiset).
            let edges = |ord: &[usize]| {
                let mut es: Vec<(usize, usize)> = (0..n)
                    .map(|i| {
                        let (a, b) = (ord[i], ord[(i + 1) % n]);
                        (a.min(b), a.max(b))
                    })
                    .collect();
                es.sort_unstable();
                es
            };
            assert_eq!(edges(&order), edges(&reference), "from={from} to={to}");
        }
    }

    #[test]
    fn seeded_with_all_cities_matches_full_pass() {
        for seed in 0..10u64 {
            let pts = random_points(70, seed);
            let nl = NeighborLists::build(&pts, 10);
            let t0 = nearest_neighbor(&EuclideanCost::new(&pts));
            // Seed every city in tour order — exactly the full pass's
            // initial queue — so the runs are move-for-move identical.
            let all: Vec<usize> = t0.order().to_vec();
            let full = two_opt_neighbors(&pts, t0.clone(), &nl, 1e-9);
            let seeded = two_opt_neighbors_seeded(&pts, t0, &nl, 1e-9, &all);
            assert_eq!(full.order(), seeded.order(), "seed {seed}");
        }
    }

    #[test]
    fn empty_seeds_leave_the_tour_unchanged() {
        let pts = random_points(30, 5);
        let nl = NeighborLists::build(&pts, 8);
        let t0 = Tour::identity(30);
        let t1 = two_opt_neighbors_seeded(&pts, t0.clone(), &nl, 1e-9, &[]);
        assert_eq!(t1.order(), t0.normalized().order());
    }

    #[test]
    fn seeding_the_crossing_uncrosses_it_but_out_of_range_seeds_are_ignored() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ];
        let nl = NeighborLists::build(&pts, 3);
        let cost = EuclideanCost::new(&pts);
        // Seeding any vertex of the crossing edge pair fixes the square;
        // indices past n are silently skipped rather than panicking.
        let fixed =
            two_opt_neighbors_seeded(&pts, Tour::new(vec![0, 1, 2, 3]), &nl, 1e-9, &[0, 99, 0]);
        assert!((fixed.length(&cost) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn seeded_never_lengthens_and_preserves_permutation() {
        for seed in 0..10u64 {
            let pts = random_points(50, seed);
            let cost = EuclideanCost::new(&pts);
            let nl = NeighborLists::build(&pts, 8);
            let t0 = Tour::identity(50);
            let len0 = t0.length(&cost);
            let t1 = two_opt_neighbors_seeded(&pts, t0, &nl, 1e-9, &[0, 10, 20, 30, 40]);
            assert!(t1.length(&cost) <= len0 + 1e-9, "seed {seed}");
            let mut sorted = t1.order().to_vec();
            sorted.sort_unstable();
            assert!(sorted.iter().copied().eq(0..50), "seed {seed}");
        }
    }

    #[test]
    fn or_opt_seeded_with_all_cities_matches_full_pass() {
        for seed in 0..10u64 {
            let pts = random_points(70, seed);
            let nl = NeighborLists::build(&pts, 10);
            let t0 = nearest_neighbor(&EuclideanCost::new(&pts));
            let all: Vec<usize> = t0.order().to_vec();
            let mut order_full = t0.clone().into_order();
            let mut pos_full = vec![0u32; 70];
            for (p, &c) in order_full.iter().enumerate() {
                pos_full[c] = p as u32;
            }
            or_opt_neighbors_pass(&pts, &nl, &mut order_full, &mut pos_full, 3, 1e-9, None);
            let full = Tour::from_order_unchecked(order_full).normalized();
            let seeded = or_opt_neighbors_seeded(&pts, t0, &nl, 3, 1e-9, &all);
            assert_eq!(full.order(), seeded.order(), "seed {seed}");
        }
    }

    #[test]
    fn or_opt_empty_seeds_leave_the_tour_unchanged() {
        let pts = random_points(30, 5);
        let nl = NeighborLists::build(&pts, 8);
        let t0 = Tour::identity(30);
        let t1 = or_opt_neighbors_seeded(&pts, t0.clone(), &nl, 3, 1e-9, &[]);
        assert_eq!(t1.order(), t0.normalized().order());
    }

    #[test]
    fn or_opt_seeded_never_lengthens_and_preserves_permutation() {
        for seed in 0..10u64 {
            let pts = random_points(50, seed);
            let cost = EuclideanCost::new(&pts);
            let nl = NeighborLists::build(&pts, 8);
            let t0 = nearest_neighbor(&cost);
            let len0 = t0.length(&cost);
            let t1 = or_opt_neighbors_seeded(&pts, t0, &nl, 3, 1e-9, &[0, 7, 99, 23, 7]);
            assert!(t1.length(&cost) <= len0 + 1e-9, "seed {seed}");
            let mut sorted = t1.order().to_vec();
            sorted.sort_unstable();
            assert!(sorted.iter().copied().eq(0..50), "seed {seed}");
        }
    }

    #[test]
    fn tiny_instances_are_untouched() {
        for n in 1..4usize {
            let pts = random_points(n, 0);
            let nl = NeighborLists::build(&pts, 10);
            let t = improve_neighbors(&pts, Tour::identity(n), &ImproveConfig::default(), &nl);
            assert_eq!(t.len(), n);
        }
    }
}
