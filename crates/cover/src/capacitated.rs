//! Capacity-bounded covering: polling points with buffer limits.
//!
//! A collector pausing at a polling point must buffer every affiliated
//! sensor's packet before moving on; sensor-side polling points (storage
//! nodes) face the same limit. The capacitated variant bounds the number
//! of sensors any single polling point may serve, which both respects
//! buffers and smooths per-stop pause times.

use crate::bitset::BitSet;
use crate::instance::CoverageInstance;

/// A capacity-feasible cover: selected candidates plus an assignment that
/// never exceeds the per-point capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacitatedCover {
    /// Selected candidate indices, in selection order.
    pub selected: Vec<usize>,
    /// `assignment[target] = index into selected`.
    pub assignment: Vec<usize>,
}

impl CapacitatedCover {
    /// Number of targets assigned to each selected candidate.
    pub fn loads(&self) -> Vec<usize> {
        let mut loads = vec![0usize; self.selected.len()];
        for &k in &self.assignment {
            loads[k] += 1;
        }
        loads
    }

    /// The largest per-point load.
    pub fn max_load(&self) -> usize {
        self.loads().into_iter().max().unwrap_or(0)
    }
}

/// Greedy capacitated covering: repeatedly select the candidate that can
/// absorb the most still-unassigned targets (capped at `cap`), breaking
/// ties by the smallest `tie_break` value, and assign it its `cap` nearest
/// unassigned coverable targets.
///
/// Returns `None` if some target is uncoverable by any candidate
/// (never happens with sensor-site candidates and `cap ≥ 1`).
///
/// # Panics
/// Panics if `cap == 0`.
pub fn capacitated_greedy_cover<F>(
    inst: &CoverageInstance,
    cap: usize,
    tie_break: F,
) -> Option<CapacitatedCover>
where
    F: Fn(usize) -> f64,
{
    assert!(cap > 0, "capacity must be at least 1");
    let n = inst.n_targets();
    let mut assigned = BitSet::new(n);
    let mut assignment = vec![usize::MAX; n];
    let mut selected: Vec<usize> = Vec::new();
    let mut remaining = n;

    while remaining > 0 {
        // Pick the candidate with the largest capped gain.
        let mut best = usize::MAX;
        let mut best_gain = 0usize;
        let mut best_tie = f64::INFINITY;
        for (c, cand) in inst.candidates.iter().enumerate() {
            if selected.contains(&c) {
                continue; // Each point is selected (and filled) once.
            }
            let gain = cand.covers.count_and_not(&assigned).min(cap);
            if gain == 0 {
                continue;
            }
            if gain > best_gain {
                best = c;
                best_gain = gain;
                best_tie = tie_break(c);
            } else if gain == best_gain {
                let t = tie_break(c);
                if t < best_tie {
                    best = c;
                    best_tie = t;
                }
            }
        }
        if best == usize::MAX {
            return None;
        }
        // Assign its nearest `cap` unassigned coverable targets.
        let mut candidates: Vec<usize> = inst.candidates[best]
            .covers
            .iter_ones()
            .filter(|&t| !assigned.get(t))
            .collect();
        candidates.sort_by(|&a, &b| {
            inst.candidates[best]
                .pos
                .dist_sq(inst.targets[a])
                .partial_cmp(&inst.candidates[best].pos.dist_sq(inst.targets[b]))
                .unwrap()
        });
        let k = selected.len();
        selected.push(best);
        for &t in candidates.iter().take(cap) {
            assigned.set(t);
            assignment[t] = k;
            remaining -= 1;
        }
    }
    Some(CapacitatedCover {
        selected,
        assignment,
    })
}

/// Verifies that `cover` is capacity-feasible for `inst`: every target
/// assigned to a selected candidate that covers it, no candidate above
/// `cap`.
pub fn is_capacity_feasible(inst: &CoverageInstance, cover: &CapacitatedCover, cap: usize) -> bool {
    if cover.assignment.len() != inst.n_targets() {
        return false;
    }
    let mut loads = vec![0usize; cover.selected.len()];
    for (t, &k) in cover.assignment.iter().enumerate() {
        let Some(&c) = cover.selected.get(k) else {
            return false;
        };
        if !inst.candidates[c].covers.get(t) {
            return false;
        }
        loads[k] += 1;
    }
    loads.into_iter().all(|l| l <= cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdg_geom::Point;
    use rand::{Rng, SeedableRng};

    fn line(xs: &[f64]) -> Vec<Point> {
        xs.iter().map(|&x| Point::new(x, 0.0)).collect()
    }

    #[test]
    fn capacity_one_selects_one_point_per_sensor() {
        let sensors = line(&[0.0, 5.0, 10.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 20.0);
        let cover = capacitated_greedy_cover(&inst, 1, |_| 0.0).unwrap();
        assert_eq!(cover.selected.len(), 3);
        assert!(is_capacity_feasible(&inst, &cover, 1));
        assert_eq!(cover.max_load(), 1);
    }

    #[test]
    fn large_capacity_matches_uncapacitated_behavior() {
        let sensors = line(&[0.0, 10.0, 20.0, 60.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 12.0);
        let cover = capacitated_greedy_cover(&inst, 100, |_| 0.0).unwrap();
        assert!(is_capacity_feasible(&inst, &cover, 100));
        // Same count as the uncapacitated greedy: 2 points.
        let plain = crate::greedy::greedy_cover(&inst, |_| 0.0).unwrap();
        assert_eq!(cover.selected.len(), plain.len());
    }

    #[test]
    fn capacity_forces_extra_points() {
        // Five sensors all coverable by one central point; cap 2 needs ≥ 3
        // points.
        let sensors = line(&[8.0, 9.0, 10.0, 11.0, 12.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 30.0);
        let unbounded = capacitated_greedy_cover(&inst, 100, |_| 0.0).unwrap();
        assert_eq!(unbounded.selected.len(), 1);
        let bounded = capacitated_greedy_cover(&inst, 2, |_| 0.0).unwrap();
        assert!(bounded.selected.len() >= 3);
        assert!(is_capacity_feasible(&inst, &bounded, 2));
        assert!(bounded.max_load() <= 2);
    }

    #[test]
    fn assignment_prefers_nearby_targets() {
        // A central point takes its 2 nearest of 3 coverable sensors.
        let sensors = line(&[0.0, 1.0, 9.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 10.0);
        let cover = capacitated_greedy_cover(&inst, 2, |_| 0.0).unwrap();
        // First selected point gets exactly two targets, chosen nearest.
        let loads = cover.loads();
        assert!(loads.iter().all(|&l| l <= 2));
        assert!(is_capacity_feasible(&inst, &cover, 2));
    }

    #[test]
    fn random_instances_are_always_feasible() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for trial in 0..10 {
            let sensors: Vec<Point> = (0..60)
                .map(|_| Point::new(rng.gen_range(0.0..150.0), rng.gen_range(0.0..150.0)))
                .collect();
            let inst = CoverageInstance::sensor_sites(&sensors, 30.0);
            for cap in [1, 3, 8, 100] {
                let cover = capacitated_greedy_cover(&inst, cap, |_| 0.0)
                    .unwrap_or_else(|| panic!("trial {trial} cap {cap} infeasible"));
                assert!(
                    is_capacity_feasible(&inst, &cover, cap),
                    "trial {trial} cap {cap}"
                );
                // Tighter capacity never uses fewer points.
                assert!(cover.selected.len() >= sensors.len().div_ceil(cap.max(1)).min(1));
            }
        }
    }

    #[test]
    fn infeasible_instance_returns_none() {
        let sensors = vec![Point::new(33.0, 33.0)];
        let inst =
            CoverageInstance::grid_candidates(&sensors, &mdg_geom::Aabb::square(100.0), 50.0, 5.0);
        assert_eq!(capacitated_greedy_cover(&inst, 4, |_| 0.0), None);
    }

    #[test]
    fn empty_instance() {
        let inst = CoverageInstance::sensor_sites(&[], 10.0);
        let cover = capacitated_greedy_cover(&inst, 3, |_| 0.0).unwrap();
        assert!(cover.selected.is_empty());
        assert!(cover.assignment.is_empty());
        assert_eq!(cover.max_load(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let inst = CoverageInstance::sensor_sites(&line(&[0.0]), 10.0);
        capacitated_greedy_cover(&inst, 0, |_| 0.0);
    }
}
