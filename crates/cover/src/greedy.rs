//! Greedy maximum-coverage polling-point selection.

use crate::bitset::BitSet;
use crate::instance::CoverageInstance;

/// Greedy set cover: repeatedly select the candidate covering the most
/// still-uncovered targets. Ties are broken by the *smallest* value of
/// `tie_break(candidate_index)` — the SHDG planner passes distance-to-sink
/// so the polling points pull toward the sink, and the tour-aware variant
/// passes the marginal tour-insertion cost.
///
/// Returns the selected candidate indices in selection order, or `None` if
/// the instance is infeasible (some target uncovered by every candidate).
///
/// The classic `ln n + 1` approximation guarantee for minimum set cover
/// applies regardless of the tie-breaker.
///
/// ```
/// use mdg_cover::{greedy_cover, CoverageInstance};
/// use mdg_geom::Point;
///
/// // Three sensors in a 25 m row: the middle one covers all at R = 12.
/// let sensors = [Point::new(0.0, 0.0), Point::new(10.0, 0.0), Point::new(20.0, 0.0)];
/// let inst = CoverageInstance::sensor_sites(&sensors, 12.0);
/// let cover = greedy_cover(&inst, |_| 0.0).unwrap();
/// assert_eq!(cover, vec![1]);
/// assert!(inst.is_cover(&cover));
/// ```
pub fn greedy_cover<F>(inst: &CoverageInstance, tie_break: F) -> Option<Vec<usize>>
where
    F: Fn(usize) -> f64,
{
    let n = inst.n_targets();
    let mut covered = BitSet::new(n);
    let mut selected = Vec::new();
    let mut remaining = n;

    while remaining > 0 {
        let mut best = usize::MAX;
        let mut best_gain = 0usize;
        let mut best_tie = f64::INFINITY;
        for (c, cand) in inst.candidates.iter().enumerate() {
            let gain = cand.covers.count_and_not(&covered);
            if gain == 0 {
                continue;
            }
            if gain > best_gain {
                best = c;
                best_gain = gain;
                best_tie = tie_break(c);
            } else if gain == best_gain {
                let t = tie_break(c);
                if t < best_tie {
                    best = c;
                    best_tie = t;
                }
            }
        }
        if best == usize::MAX {
            return None; // Remaining targets are uncoverable.
        }
        covered.union_with(&inst.candidates[best].covers);
        selected.push(best);
        remaining = n - covered.count();
    }
    Some(selected)
}

/// Greedy cover of a **subset** of targets using a **subset** of
/// candidates — the incremental-repair entry point. After node failures,
/// the runtime re-covers the orphaned sensors (`targets`) using only
/// candidates anchored at live nodes (`allowed`), leaving the rest of the
/// plan untouched.
///
/// Returns selected candidate indices (into `inst.candidates`, drawn from
/// `allowed`) in selection order, or `None` if some requested target is
/// covered by no allowed candidate. Targets outside `targets` are ignored
/// entirely: they neither need covering nor contribute to gains.
///
/// ```
/// use mdg_cover::{greedy_cover_restricted, CoverageInstance};
/// use mdg_geom::Point;
///
/// let sensors = [Point::new(0.0, 0.0), Point::new(10.0, 0.0), Point::new(20.0, 0.0)];
/// let inst = CoverageInstance::sensor_sites(&sensors, 12.0);
/// // Re-cover sensor 0 without using candidate 1 (its anchor died).
/// let sel = greedy_cover_restricted(&inst, &[0], &[0, 2], |_| 0.0).unwrap();
/// assert_eq!(sel, vec![0]);
/// ```
pub fn greedy_cover_restricted<F>(
    inst: &CoverageInstance,
    targets: &[usize],
    allowed: &[usize],
    tie_break: F,
) -> Option<Vec<usize>>
where
    F: Fn(usize) -> f64,
{
    let n = inst.n_targets();
    // Treat everything outside `targets` as pre-covered, then run the
    // standard greedy loop over the allowed candidates.
    let wanted = BitSet::from_indices(n, targets);
    let mut covered = BitSet::new(n);
    for t in 0..n {
        if !wanted.get(t) {
            covered.set(t);
        }
    }
    let mut selected = Vec::new();
    let mut remaining = wanted.count();

    while remaining > 0 {
        let mut best = usize::MAX;
        let mut best_gain = 0usize;
        let mut best_tie = f64::INFINITY;
        for &c in allowed {
            let gain = inst.candidates[c].covers.count_and_not(&covered);
            if gain == 0 {
                continue;
            }
            if gain > best_gain {
                best = c;
                best_gain = gain;
                best_tie = tie_break(c);
            } else if gain == best_gain {
                let t = tie_break(c);
                if t < best_tie {
                    best = c;
                    best_tie = t;
                }
            }
        }
        if best == usize::MAX {
            return None; // Some requested target is unreachable.
        }
        covered.union_with(&inst.candidates[best].covers);
        selected.push(best);
        remaining -= best_gain;
    }
    Some(selected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdg_geom::Point;

    fn line(xs: &[f64]) -> Vec<Point> {
        xs.iter().map(|&x| Point::new(x, 0.0)).collect()
    }

    #[test]
    fn covers_all_targets() {
        let sensors = line(&[0.0, 10.0, 20.0, 30.0, 40.0, 100.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 12.0);
        let sel = greedy_cover(&inst, |_| 0.0).unwrap();
        assert!(inst.is_cover(&sel));
        // Greedy picks a middle sensor (covers 3) and then fills in:
        // strictly fewer polling points than sensors.
        assert!(sel.len() < sensors.len());
    }

    #[test]
    fn greedy_picks_max_gain_first() {
        // At R=12, candidates 1 (covers {0,1,2}) and 2 (covers {1,2,3})
        // are the two gain-3 picks; the first selection must be one of
        // them.
        let sensors = line(&[0.0, 10.0, 20.0, 30.0, 80.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 12.0);
        let sel = greedy_cover(&inst, |_| 0.0).unwrap();
        assert!(
            sel[0] == 1 || sel[0] == 2,
            "first selection must be a max-coverage candidate, got {}",
            sel[0]
        );
        assert_eq!(inst.candidates[sel[0]].covers.count(), 3);
    }

    #[test]
    fn tie_break_steers_selection() {
        // Sensors 0 and 3 each cover exactly {self, middle neighbor}:
        // symmetric pairs; tie-break decides.
        let sensors = line(&[0.0, 10.0, 30.0, 40.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 11.0);
        // Prefer high x.
        let sel_hi = greedy_cover(&inst, |c| -sensors[c].x).unwrap();
        // Prefer low x.
        let sel_lo = greedy_cover(&inst, |c| sensors[c].x).unwrap();
        assert_ne!(sel_hi[0], sel_lo[0], "tie-break must change the first pick");
        assert!(inst.is_cover(&sel_hi));
        assert!(inst.is_cover(&sel_lo));
    }

    #[test]
    fn infeasible_instance_returns_none() {
        // Grid candidates too coarse to reach the lone sensor.
        let sensors = vec![Point::new(33.0, 33.0)];
        let inst =
            CoverageInstance::grid_candidates(&sensors, &mdg_geom::Aabb::square(100.0), 50.0, 5.0);
        assert_eq!(greedy_cover(&inst, |_| 0.0), None);
    }

    #[test]
    fn empty_instance_needs_nothing() {
        let inst = CoverageInstance::sensor_sites(&[], 10.0);
        assert_eq!(greedy_cover(&inst, |_| 0.0).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn isolated_sensors_are_their_own_polling_points() {
        let sensors = line(&[0.0, 100.0, 200.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 10.0);
        let mut sel = greedy_cover(&inst, |_| 0.0).unwrap();
        sel.sort_unstable();
        assert_eq!(sel, vec![0, 1, 2]);
    }

    #[test]
    fn restricted_cover_ignores_forbidden_candidates() {
        let sensors = line(&[0.0, 10.0, 20.0, 30.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 12.0);
        // Orphans {1, 2}; candidate 1 and 2 forbidden (anchors dead).
        let sel = greedy_cover_restricted(&inst, &[1, 2], &[0, 3], |_| 0.0).unwrap();
        let mut sorted = sel.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 3], "0 reaches 1, 3 reaches 2");
    }

    #[test]
    fn restricted_cover_reports_unreachable_targets() {
        let sensors = line(&[0.0, 10.0, 50.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 12.0);
        assert_eq!(
            greedy_cover_restricted(&inst, &[2], &[0, 1], |_| 0.0),
            None,
            "sensor 2 is out of range of every allowed candidate"
        );
    }

    #[test]
    fn restricted_with_no_targets_selects_nothing() {
        let sensors = line(&[0.0, 10.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 12.0);
        assert_eq!(
            greedy_cover_restricted(&inst, &[], &[0, 1], |_| 0.0).unwrap(),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn restricted_matches_full_greedy_when_unrestricted() {
        let sensors = line(&[0.0, 10.0, 20.0, 30.0, 40.0, 100.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 12.0);
        let all_targets: Vec<usize> = (0..sensors.len()).collect();
        let all_cands: Vec<usize> = (0..inst.n_candidates()).collect();
        let full = greedy_cover(&inst, |c| c as f64).unwrap();
        let restricted =
            greedy_cover_restricted(&inst, &all_targets, &all_cands, |c| c as f64).unwrap();
        assert_eq!(full, restricted);
    }

    #[test]
    fn selection_has_no_duplicates() {
        let sensors = line(&[0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 7.0);
        let sel = greedy_cover(&inst, |_| 0.0).unwrap();
        let mut dedup = sel.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), sel.len());
    }
}
