//! Greedy maximum-coverage polling-point selection.
//!
//! Two implementations of the same selection rule live here:
//!
//! * [`greedy_cover`] / [`greedy_cover_restricted`] — **lazy-greedy**
//!   (submodular) selection backed by a max-heap of stale marginal gains.
//!   Because coverage gain is submodular (a candidate's gain never grows as
//!   the covered set grows), a heap entry's recorded gain is an upper bound
//!   on its true gain; entries are re-evaluated only when they surface at
//!   the top of the heap. This is the classic Minoux accelerated greedy:
//!   `O(candidates · log candidates)` heap traffic plus a handful of gain
//!   re-evaluations per selection, instead of a full candidate rescan per
//!   selection.
//! * [`greedy_cover_reference`] / [`greedy_cover_restricted_reference`] —
//!   the original full-rescan implementations, retained as the executable
//!   specification. The equivalence suite in `tests/equivalence.rs` checks
//!   that the lazy versions reproduce their selection order **exactly**,
//!   tie-breaker included.
//!
//! The tie-breaking contract (shared by both): select the candidate with
//! the largest marginal gain; among equal gains the smallest
//! `tie_break(candidate)` wins; among equal `(gain, tie)` the smallest
//! candidate index wins. `tie_break` must be a pure function of the
//! candidate index for the duration of the call (both callers in this
//! workspace pass closures over immutable data); the lazy version memoizes
//! it and only evaluates it for candidates that are max-gain contenders,
//! which also makes expensive tie-breakers (e.g. tour-insertion probes)
//! cheap.

use crate::bitset::BitSet;
use crate::instance::CoverageInstance;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A heap entry: a candidate and its (possibly stale) marginal gain.
/// Ordered so the max-heap pops the largest gain first; equal gains pop in
/// ascending candidate order for determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GainEntry {
    gain: usize,
    cand: usize,
}

impl Ord for GainEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .cmp(&other.gain)
            .then_with(|| other.cand.cmp(&self.cand))
    }
}

impl PartialOrd for GainEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Normalizes a tie value so `-0.0` and `0.0` compare equal under
/// `total_cmp`, matching the reference's `<` semantics.
#[inline]
fn norm_tie(t: f64) -> f64 {
    if t == 0.0 {
        0.0
    } else {
        t
    }
}

/// One lazy-greedy selection step. Pops heap entries, re-evaluating stale
/// gains, until the set of *verified* max-gain contenders is complete; then
/// picks the contender minimizing `(tie, index)` and pushes the rest back.
///
/// Returns `None` when no candidate has positive gain (uncovered targets
/// remain but nothing covers them).
fn lazy_select<F>(
    heap: &mut BinaryHeap<GainEntry>,
    covered: &BitSet,
    inst: &CoverageInstance,
    ties: &mut [Option<f64>],
    tie_break: &F,
    reevals: &mut u64,
) -> Option<(usize, usize)>
where
    F: Fn(usize) -> f64,
{
    let mut contenders: Vec<usize> = Vec::new();
    let mut gmax = 0usize;
    while let Some(&top) = heap.peek() {
        if !contenders.is_empty() && top.gain < gmax {
            break;
        }
        heap.pop();
        *reevals += 1;
        let gain = inst.candidates[top.cand].covers.count_and_not(covered);
        if gain == 0 {
            continue; // Fully covered already; drop the candidate for good.
        }
        if gain == top.gain {
            // Verified: the recorded gain is current. Since it topped the
            // heap, no other candidate's true gain can exceed it.
            gmax = gain;
            contenders.push(top.cand);
        } else {
            debug_assert!(gain < top.gain, "coverage gain is submodular");
            heap.push(GainEntry {
                gain,
                cand: top.cand,
            });
        }
    }
    let mut iter = contenders.iter().copied();
    let mut best = iter.next()?;
    let mut best_tie = norm_tie(*ties[best].get_or_insert_with(|| tie_break(best)));
    for c in iter {
        let t = norm_tie(*ties[c].get_or_insert_with(|| tie_break(c)));
        // Contenders were pushed in heap-pop order (ascending candidate
        // index among equal gains is NOT guaranteed across re-pushes), so
        // compare on (tie, index) explicitly.
        if t.total_cmp(&best_tie) == Ordering::Less
            || (t.total_cmp(&best_tie) == Ordering::Equal && c < best)
        {
            best = c;
            best_tie = t;
        }
    }
    // Losers keep their verified gain and go back on the heap.
    for &c in contenders.iter().filter(|&&c| c != best) {
        heap.push(GainEntry {
            gain: gmax,
            cand: c,
        });
    }
    Some((best, gmax))
}

/// Greedy set cover: repeatedly select the candidate covering the most
/// still-uncovered targets. Ties are broken by the *smallest* value of
/// `tie_break(candidate_index)` — the SHDG planner passes distance-to-sink
/// so the polling points pull toward the sink, and the tour-aware variant
/// passes the marginal tour-insertion cost.
///
/// Returns the selected candidate indices in selection order, or `None` if
/// the instance is infeasible (some target uncovered by every candidate).
///
/// This is the lazy-greedy (accelerated) implementation; it returns the
/// exact same selection sequence as [`greedy_cover_reference`] for any
/// pure, non-`NaN` tie-breaker, at a fraction of the cost on large
/// instances.
///
/// The classic `ln n + 1` approximation guarantee for minimum set cover
/// applies regardless of the tie-breaker.
///
/// ```
/// use mdg_cover::{greedy_cover, CoverageInstance};
/// use mdg_geom::Point;
///
/// // Three sensors in a 25 m row: the middle one covers all at R = 12.
/// let sensors = [Point::new(0.0, 0.0), Point::new(10.0, 0.0), Point::new(20.0, 0.0)];
/// let inst = CoverageInstance::sensor_sites(&sensors, 12.0);
/// let cover = greedy_cover(&inst, |_| 0.0).unwrap();
/// assert_eq!(cover, vec![1]);
/// assert!(inst.is_cover(&cover));
/// ```
pub fn greedy_cover<F>(inst: &CoverageInstance, tie_break: F) -> Option<Vec<usize>>
where
    F: Fn(usize) -> f64,
{
    let n = inst.n_targets();
    let mut sp = mdg_obs::span("lazy_greedy");
    sp.add_items(inst.n_candidates() as u64);
    let mut reevals = 0u64;
    let mut covered = BitSet::new(n);
    let mut selected = Vec::new();
    let mut remaining = n;
    let mut ties: Vec<Option<f64>> = vec![None; inst.n_candidates()];
    // Seed the heap with initial gains computed in parallel. `GainEntry`'s
    // ordering is total (gain, then candidate index), so the heap's pop
    // sequence — and with it the whole selection — does not depend on the
    // order entries were produced in.
    let mut heap = BinaryHeap::from(mdg_par::par_map(inst.n_candidates(), |c| GainEntry {
        gain: inst.candidates[c].covers.count(),
        cand: c,
    }));

    while remaining > 0 {
        let Some((best, _)) = lazy_select(
            &mut heap,
            &covered,
            inst,
            &mut ties,
            &tie_break,
            &mut reevals,
        ) else {
            mdg_obs::counter("lazy_greedy/reevals").add(reevals);
            return None;
        };
        covered.union_with(&inst.candidates[best].covers);
        selected.push(best);
        remaining = n - covered.count();
    }
    mdg_obs::counter("lazy_greedy/reevals").add(reevals);
    Some(selected)
}

/// Greedy cover of a **subset** of targets using a **subset** of
/// candidates — the incremental-repair entry point. After node failures,
/// the runtime re-covers the orphaned sensors (`targets`) using only
/// candidates anchored at live nodes (`allowed`), leaving the rest of the
/// plan untouched.
///
/// Returns selected candidate indices (into `inst.candidates`, drawn from
/// `allowed`) in selection order, or `None` if some requested target is
/// covered by no allowed candidate. Targets outside `targets` are ignored
/// entirely: they neither need covering nor contribute to gains.
///
/// Lazy-greedy; selection-order-identical to
/// [`greedy_cover_restricted_reference`].
///
/// ```
/// use mdg_cover::{greedy_cover_restricted, CoverageInstance};
/// use mdg_geom::Point;
///
/// let sensors = [Point::new(0.0, 0.0), Point::new(10.0, 0.0), Point::new(20.0, 0.0)];
/// let inst = CoverageInstance::sensor_sites(&sensors, 12.0);
/// // Re-cover sensor 0 without using candidate 1 (its anchor died).
/// let sel = greedy_cover_restricted(&inst, &[0], &[0, 2], |_| 0.0).unwrap();
/// assert_eq!(sel, vec![0]);
/// ```
pub fn greedy_cover_restricted<F>(
    inst: &CoverageInstance,
    targets: &[usize],
    allowed: &[usize],
    tie_break: F,
) -> Option<Vec<usize>>
where
    F: Fn(usize) -> f64,
{
    let n = inst.n_targets();
    let mut sp = mdg_obs::span("lazy_greedy");
    sp.add_items(allowed.len() as u64);
    let mut reevals = 0u64;
    // Treat everything outside `targets` as pre-covered, then run the
    // standard lazy-greedy loop over the allowed candidates.
    let wanted = BitSet::from_indices(n, targets);
    let mut covered = BitSet::new(n);
    for t in 0..n {
        if !wanted.get(t) {
            covered.set(t);
        }
    }
    let mut selected = Vec::new();
    let mut remaining = wanted.count();
    let mut ties: Vec<Option<f64>> = vec![None; inst.n_candidates()];
    // Parallel seeding; see `greedy_cover` for why the heap's pop order is
    // unaffected.
    let mut heap = BinaryHeap::from(mdg_par::par_map(allowed.len(), |k| {
        let c = allowed[k];
        GainEntry {
            gain: inst.candidates[c].covers.count_and_not(&covered),
            cand: c,
        }
    }));

    while remaining > 0 {
        let Some((best, gain)) = lazy_select(
            &mut heap,
            &covered,
            inst,
            &mut ties,
            &tie_break,
            &mut reevals,
        ) else {
            mdg_obs::counter("lazy_greedy/reevals").add(reevals);
            return None; // Some requested target is unreachable.
        };
        covered.union_with(&inst.candidates[best].covers);
        selected.push(best);
        remaining -= gain;
    }
    mdg_obs::counter("lazy_greedy/reevals").add(reevals);
    Some(selected)
}

/// Reference full-rescan greedy cover (the original implementation): every
/// selection step scans all candidates. `O(selections · candidates ·
/// targets/64)`. Kept as the executable specification that
/// [`greedy_cover`] is verified against, and for benchmarking the speedup.
pub fn greedy_cover_reference<F>(inst: &CoverageInstance, tie_break: F) -> Option<Vec<usize>>
where
    F: Fn(usize) -> f64,
{
    let n = inst.n_targets();
    let mut covered = BitSet::new(n);
    let mut selected = Vec::new();
    let mut remaining = n;

    while remaining > 0 {
        let mut best = usize::MAX;
        let mut best_gain = 0usize;
        let mut best_tie = f64::INFINITY;
        for (c, cand) in inst.candidates.iter().enumerate() {
            let gain = cand.covers.count_and_not(&covered);
            if gain == 0 {
                continue;
            }
            if gain > best_gain {
                best = c;
                best_gain = gain;
                best_tie = tie_break(c);
            } else if gain == best_gain {
                let t = tie_break(c);
                if t < best_tie {
                    best = c;
                    best_tie = t;
                }
            }
        }
        if best == usize::MAX {
            return None; // Remaining targets are uncoverable.
        }
        covered.union_with(&inst.candidates[best].covers);
        selected.push(best);
        remaining = n - covered.count();
    }
    Some(selected)
}

/// Reference full-rescan restricted greedy cover; see
/// [`greedy_cover_reference`].
pub fn greedy_cover_restricted_reference<F>(
    inst: &CoverageInstance,
    targets: &[usize],
    allowed: &[usize],
    tie_break: F,
) -> Option<Vec<usize>>
where
    F: Fn(usize) -> f64,
{
    let n = inst.n_targets();
    let wanted = BitSet::from_indices(n, targets);
    let mut covered = BitSet::new(n);
    for t in 0..n {
        if !wanted.get(t) {
            covered.set(t);
        }
    }
    let mut selected = Vec::new();
    let mut remaining = wanted.count();

    while remaining > 0 {
        let mut best = usize::MAX;
        let mut best_gain = 0usize;
        let mut best_tie = f64::INFINITY;
        for &c in allowed {
            let gain = inst.candidates[c].covers.count_and_not(&covered);
            if gain == 0 {
                continue;
            }
            if gain > best_gain {
                best = c;
                best_gain = gain;
                best_tie = tie_break(c);
            } else if gain == best_gain {
                let t = tie_break(c);
                if t < best_tie {
                    best = c;
                    best_tie = t;
                }
            }
        }
        if best == usize::MAX {
            return None; // Some requested target is unreachable.
        }
        covered.union_with(&inst.candidates[best].covers);
        selected.push(best);
        remaining -= best_gain;
    }
    Some(selected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdg_geom::Point;

    fn line(xs: &[f64]) -> Vec<Point> {
        xs.iter().map(|&x| Point::new(x, 0.0)).collect()
    }

    #[test]
    fn covers_all_targets() {
        let sensors = line(&[0.0, 10.0, 20.0, 30.0, 40.0, 100.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 12.0);
        let sel = greedy_cover(&inst, |_| 0.0).unwrap();
        assert!(inst.is_cover(&sel));
        // Greedy picks a middle sensor (covers 3) and then fills in:
        // strictly fewer polling points than sensors.
        assert!(sel.len() < sensors.len());
    }

    #[test]
    fn greedy_picks_max_gain_first() {
        // At R=12, candidates 1 (covers {0,1,2}) and 2 (covers {1,2,3})
        // are the two gain-3 picks; the first selection must be one of
        // them.
        let sensors = line(&[0.0, 10.0, 20.0, 30.0, 80.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 12.0);
        let sel = greedy_cover(&inst, |_| 0.0).unwrap();
        assert!(
            sel[0] == 1 || sel[0] == 2,
            "first selection must be a max-coverage candidate, got {}",
            sel[0]
        );
        assert_eq!(inst.candidates[sel[0]].covers.count(), 3);
    }

    #[test]
    fn tie_break_steers_selection() {
        // Sensors 0 and 3 each cover exactly {self, middle neighbor}:
        // symmetric pairs; tie-break decides.
        let sensors = line(&[0.0, 10.0, 30.0, 40.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 11.0);
        // Prefer high x.
        let sel_hi = greedy_cover(&inst, |c| -sensors[c].x).unwrap();
        // Prefer low x.
        let sel_lo = greedy_cover(&inst, |c| sensors[c].x).unwrap();
        assert_ne!(sel_hi[0], sel_lo[0], "tie-break must change the first pick");
        assert!(inst.is_cover(&sel_hi));
        assert!(inst.is_cover(&sel_lo));
    }

    #[test]
    fn infeasible_instance_returns_none() {
        // Grid candidates too coarse to reach the lone sensor.
        let sensors = vec![Point::new(33.0, 33.0)];
        let inst =
            CoverageInstance::grid_candidates(&sensors, &mdg_geom::Aabb::square(100.0), 50.0, 5.0);
        assert_eq!(greedy_cover(&inst, |_| 0.0), None);
        assert_eq!(greedy_cover_reference(&inst, |_| 0.0), None);
    }

    #[test]
    fn empty_instance_needs_nothing() {
        let inst = CoverageInstance::sensor_sites(&[], 10.0);
        assert_eq!(greedy_cover(&inst, |_| 0.0).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn isolated_sensors_are_their_own_polling_points() {
        let sensors = line(&[0.0, 100.0, 200.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 10.0);
        let mut sel = greedy_cover(&inst, |_| 0.0).unwrap();
        sel.sort_unstable();
        assert_eq!(sel, vec![0, 1, 2]);
    }

    #[test]
    fn restricted_cover_ignores_forbidden_candidates() {
        let sensors = line(&[0.0, 10.0, 20.0, 30.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 12.0);
        // Orphans {1, 2}; candidate 1 and 2 forbidden (anchors dead).
        let sel = greedy_cover_restricted(&inst, &[1, 2], &[0, 3], |_| 0.0).unwrap();
        let mut sorted = sel.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 3], "0 reaches 1, 3 reaches 2");
    }

    #[test]
    fn restricted_cover_reports_unreachable_targets() {
        let sensors = line(&[0.0, 10.0, 50.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 12.0);
        assert_eq!(
            greedy_cover_restricted(&inst, &[2], &[0, 1], |_| 0.0),
            None,
            "sensor 2 is out of range of every allowed candidate"
        );
    }

    #[test]
    fn restricted_with_no_targets_selects_nothing() {
        let sensors = line(&[0.0, 10.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 12.0);
        assert_eq!(
            greedy_cover_restricted(&inst, &[], &[0, 1], |_| 0.0).unwrap(),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn restricted_matches_full_greedy_when_unrestricted() {
        let sensors = line(&[0.0, 10.0, 20.0, 30.0, 40.0, 100.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 12.0);
        let all_targets: Vec<usize> = (0..sensors.len()).collect();
        let all_cands: Vec<usize> = (0..inst.n_candidates()).collect();
        let full = greedy_cover(&inst, |c| c as f64).unwrap();
        let restricted =
            greedy_cover_restricted(&inst, &all_targets, &all_cands, |c| c as f64).unwrap();
        assert_eq!(full, restricted);
    }

    #[test]
    fn selection_has_no_duplicates() {
        let sensors = line(&[0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 7.0);
        let sel = greedy_cover(&inst, |_| 0.0).unwrap();
        let mut dedup = sel.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), sel.len());
    }

    #[test]
    fn lazy_matches_reference_on_lines() {
        // Dense overlap with many exact gain ties; constant tie-breaker
        // forces the index tie-path.
        let sensors = line(&[0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 90.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 11.0);
        for tie in [0.0f64, 1.0] {
            let lazy = greedy_cover(&inst, |_| tie).unwrap();
            let slow = greedy_cover_reference(&inst, |_| tie).unwrap();
            assert_eq!(lazy, slow);
        }
        let lazy = greedy_cover(&inst, |c| sensors[c].x).unwrap();
        let slow = greedy_cover_reference(&inst, |c| sensors[c].x).unwrap();
        assert_eq!(lazy, slow);
    }

    #[test]
    fn negative_zero_tie_matches_reference() {
        // A -0.0 tie value must compare equal to 0.0, exactly as the
        // reference's `<` does — the earlier index must win.
        let sensors = line(&[0.0, 10.0, 30.0, 40.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 11.0);
        let tie = |c: usize| if c >= 2 { -0.0 } else { 0.0 };
        assert_eq!(
            greedy_cover(&inst, tie).unwrap(),
            greedy_cover_reference(&inst, tie).unwrap()
        );
    }
}
