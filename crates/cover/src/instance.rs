//! Coverage instances: targets, candidate polling points and who covers
//! whom.

use crate::bitset::BitSet;
use mdg_geom::{Aabb, Point, SpatialGrid};

/// A candidate polling point.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Where the mobile collector would pause.
    pub pos: Point,
    /// Targets within transmission range of this position.
    pub covers: BitSet,
}

/// A set-cover instance: `n_targets` sensors and a list of candidate
/// polling points, each covering the sensors within radio range of it.
#[derive(Debug, Clone)]
pub struct CoverageInstance {
    /// Target (sensor) positions; bit `i` of every candidate's `covers`
    /// refers to `targets[i]`.
    pub targets: Vec<Point>,
    /// Candidate polling points.
    pub candidates: Vec<Candidate>,
    /// The transmission range that defined coverage.
    pub range: f64,
}

impl CoverageInstance {
    /// Number of targets.
    pub fn n_targets(&self) -> usize {
        self.targets.len()
    }

    /// Number of candidates.
    pub fn n_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// **Sensor-site candidates** (the paper's default): every sensor
    /// position is a candidate polling point; pausing at a sensor collects
    /// from it (distance 0) and every sensor within `range`.
    pub fn sensor_sites(sensors: &[Point], range: f64) -> Self {
        assert!(range > 0.0 && range.is_finite(), "range must be positive");
        let n = sensors.len();
        let mut candidates = Vec::with_capacity(n);
        if n == 0 {
            return CoverageInstance {
                targets: Vec::new(),
                candidates,
                range,
            };
        }
        let grid = SpatialGrid::build(sensors, range);
        // Candidates are independent: each is a pure function of its own
        // position, so the parallel build is bit-identical at any thread
        // count.
        candidates = mdg_par::par_map(n, |i| {
            let pos = sensors[i];
            let mut covers = BitSet::new(n);
            grid.for_each_within(pos, range, |j| covers.set(j as usize));
            Candidate { pos, covers }
        });
        CoverageInstance {
            targets: sensors.to_vec(),
            candidates,
            range,
        }
    }

    /// **Sensor sites, restricted to a subset**: the instance over
    /// `sensors[subset[0]], sensors[subset[1]], …` with sensor-site
    /// candidates, using *local* indices — target and candidate `i` both
    /// refer to `sensors[subset[i]]`. This is the per-tile building block
    /// of hierarchical planning: the full-field instance is quadratic in
    /// `n`, but a tile's instance only pays for the tile.
    ///
    /// Coverage is computed within the subset only; a sensor just outside
    /// the subset does not appear, even if it is within range. Each sensor
    /// still covers itself, so the instance is always feasible.
    ///
    /// # Panics
    /// Panics if `range` is not strictly positive and finite, or if any
    /// subset index is out of bounds.
    pub fn sensor_sites_subset(sensors: &[Point], subset: &[u32], range: f64) -> Self {
        assert!(range > 0.0 && range.is_finite(), "range must be positive");
        let local: Vec<Point> = subset.iter().map(|&g| sensors[g as usize]).collect();
        CoverageInstance::sensor_sites(&local, range)
    }

    /// **Grid candidates**: candidate polling points on a square lattice of
    /// the given `spacing` over `field` ("predefined positions" on a grid,
    /// the SHDG variant used in the comparison experiments). Grid points
    /// covering no sensor are dropped.
    pub fn grid_candidates(sensors: &[Point], field: &Aabb, spacing: f64, range: f64) -> Self {
        assert!(
            spacing > 0.0 && spacing.is_finite(),
            "spacing must be positive"
        );
        assert!(range > 0.0 && range.is_finite(), "range must be positive");
        let n = sensors.len();
        let mut candidates = Vec::new();
        if n == 0 {
            return CoverageInstance {
                targets: Vec::new(),
                candidates,
                range,
            };
        }
        let grid = SpatialGrid::build(sensors, range);
        let nx = (field.width() / spacing).floor() as usize + 1;
        let ny = (field.height() / spacing).floor() as usize + 1;
        // Evaluate lattice points in parallel, then filter sequentially so
        // empty-cover candidates drop out in the same row-major order as
        // the sequential loop.
        let cells = mdg_par::par_map(nx * ny, |cell| {
            let (gy, gx) = (cell / nx, cell % nx);
            let pos = Point::new(
                (field.min.x + gx as f64 * spacing).min(field.max.x),
                (field.min.y + gy as f64 * spacing).min(field.max.y),
            );
            let mut covers = BitSet::new(n);
            grid.for_each_within(pos, range, |j| covers.set(j as usize));
            (!covers.none()).then_some(Candidate { pos, covers })
        });
        candidates.extend(cells.into_iter().flatten());
        CoverageInstance {
            targets: sensors.to_vec(),
            candidates,
            range,
        }
    }

    /// Targets not covered by *any* candidate (possible with grid
    /// candidates and coarse spacing; impossible with sensor-site
    /// candidates, where each sensor covers itself).
    pub fn uncoverable_targets(&self) -> Vec<usize> {
        let mut covered = BitSet::new(self.n_targets());
        for c in &self.candidates {
            covered.union_with(&c.covers);
        }
        (0..self.n_targets()).filter(|&t| !covered.get(t)).collect()
    }

    /// Returns `true` if every target is covered by some candidate.
    pub fn is_feasible(&self) -> bool {
        self.uncoverable_targets().is_empty()
    }

    /// Returns `true` if the candidate subset `selected` covers all
    /// targets.
    pub fn is_cover(&self, selected: &[usize]) -> bool {
        let mut covered = BitSet::new(self.n_targets());
        for &s in selected {
            covered.union_with(&self.candidates[s].covers);
        }
        covered.all()
    }

    /// Assigns each target to the **nearest** selected candidate that
    /// covers it (ties to the lowest index in `selected`). Returns
    /// `assignment[t] = index into selected`, or `None` if `selected` is
    /// not a cover.
    ///
    /// Large selections are answered through a [`SpatialGrid`] over the
    /// selected positions — `O(local density)` per target instead of
    /// `O(selected)` — with a per-target linear fallback that keeps the
    /// result exact even for hand-built instances whose `covers` bits
    /// extend beyond geometric range.
    pub fn assign(&self, selected: &[usize]) -> Option<Vec<usize>> {
        let mut assignment = vec![usize::MAX; self.n_targets()];
        let grid = if selected.len() > 32 {
            let pts: Vec<Point> = selected.iter().map(|&s| self.candidates[s].pos).collect();
            Some(SpatialGrid::build(&pts, self.range))
        } else {
            None
        };
        for (t, &tp) in self.targets.iter().enumerate() {
            let mut best = usize::MAX;
            let mut best_d = f64::INFINITY;
            if let Some(grid) = &grid {
                // Coverage is the in-range predicate for both constructors,
                // so the grid visits every covering candidate; min over
                // (dist², index) reproduces the linear scan's strict-<
                // tie rule.
                grid.for_each_within(tp, self.range, |k| {
                    let k = k as usize;
                    if self.candidates[selected[k]].covers.get(t) {
                        let d = self.candidates[selected[k]].pos.dist_sq(tp);
                        if d < best_d || (d == best_d && k < best) {
                            best_d = d;
                            best = k;
                        }
                    }
                });
            }
            if best == usize::MAX {
                for (k, &s) in selected.iter().enumerate() {
                    if self.candidates[s].covers.get(t) {
                        let d = self.candidates[s].pos.dist_sq(tp);
                        if d < best_d {
                            best_d = d;
                            best = k;
                        }
                    }
                }
            }
            if best == usize::MAX {
                return None;
            }
            assignment[t] = best;
        }
        Some(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_sensors() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(20.0, 0.0),
            Point::new(60.0, 0.0),
        ]
    }

    #[test]
    fn sensor_sites_cover_themselves() {
        let inst = CoverageInstance::sensor_sites(&line_sensors(), 12.0);
        assert_eq!(inst.n_candidates(), 4);
        assert!(inst.is_feasible());
        for (i, c) in inst.candidates.iter().enumerate() {
            assert!(c.covers.get(i), "candidate {i} must cover its own sensor");
        }
        // Candidate 1 (x=10) covers sensors 0, 1, 2 at R=12.
        let c1: Vec<usize> = inst.candidates[1].covers.iter_ones().collect();
        assert_eq!(c1, vec![0, 1, 2]);
        // The isolated sensor is covered only by itself.
        let c3: Vec<usize> = inst.candidates[3].covers.iter_ones().collect();
        assert_eq!(c3, vec![3]);
    }

    #[test]
    fn coverage_is_symmetric_for_sensor_sites() {
        let sensors = line_sensors();
        let inst = CoverageInstance::sensor_sites(&sensors, 15.0);
        for i in 0..sensors.len() {
            for j in 0..sensors.len() {
                assert_eq!(
                    inst.candidates[i].covers.get(j),
                    inst.candidates[j].covers.get(i),
                    "symmetry ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn is_cover_and_assignment() {
        let inst = CoverageInstance::sensor_sites(&line_sensors(), 12.0);
        assert!(
            inst.is_cover(&[1, 3]),
            "x=10 covers 0..=2, x=60 covers itself"
        );
        assert!(!inst.is_cover(&[1]), "sensor 3 uncovered");
        assert!(!inst.is_cover(&[]));
        let assign = inst.assign(&[1, 3]).unwrap();
        assert_eq!(assign, vec![0, 0, 0, 1]);
        assert!(inst.assign(&[1]).is_none());
    }

    #[test]
    fn assignment_picks_nearest() {
        let inst = CoverageInstance::sensor_sites(&line_sensors(), 12.0);
        // Sensors 0 and 2 both covered by candidates 0,1 and 1,2 resp.
        let assign = inst.assign(&[0, 1, 2, 3]).unwrap();
        assert_eq!(
            assign,
            vec![0, 1, 2, 3],
            "each sensor assigned to itself (distance 0)"
        );
    }

    #[test]
    fn grid_candidates_cover_with_fine_spacing() {
        let sensors = line_sensors();
        let field = Aabb::square(70.0);
        let inst = CoverageInstance::grid_candidates(&sensors, &field, 5.0, 12.0);
        assert!(inst.is_feasible());
        assert!(inst.n_candidates() > 0);
        // Every retained grid candidate covers at least one sensor.
        for c in &inst.candidates {
            assert!(!c.covers.none());
            assert!(field.contains(c.pos));
        }
    }

    #[test]
    fn grid_candidates_may_be_infeasible_when_sparse() {
        // One sensor, a tiny range, and a huge spacing: the lattice point
        // nearest the sensor may still be out of range.
        let sensors = vec![Point::new(33.0, 33.0)];
        let field = Aabb::square(100.0);
        let inst = CoverageInstance::grid_candidates(&sensors, &field, 50.0, 5.0);
        assert!(!inst.is_feasible());
        assert_eq!(inst.uncoverable_targets(), vec![0]);
    }

    #[test]
    fn empty_instance() {
        let inst = CoverageInstance::sensor_sites(&[], 10.0);
        assert_eq!(inst.n_targets(), 0);
        assert!(inst.is_feasible());
        assert!(inst.is_cover(&[]), "empty cover suffices for zero targets");
        assert_eq!(inst.assign(&[]).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn sensor_sites_subset_matches_full_instance_on_isolated_cluster() {
        // Two clusters farther apart than the range: restricting to one
        // cluster reproduces exactly that cluster's coverage structure.
        let sensors = vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(200.0, 200.0),
            Point::new(8.0, 0.0),
        ];
        let subset = [0u32, 1, 3];
        let inst = CoverageInstance::sensor_sites_subset(&sensors, &subset, 10.0);
        assert_eq!(inst.n_targets(), 3);
        assert_eq!(inst.n_candidates(), 3);
        assert!(inst.is_feasible(), "sensor sites always cover themselves");
        for (i, &g) in subset.iter().enumerate() {
            assert_eq!(inst.candidates[i].pos, sensors[g as usize]);
            assert!(inst.candidates[i].covers.get(i), "self-coverage");
        }
        // Local candidate 1 (global sensor 1 at x=5) reaches both cluster
        // mates; the far-away sensor 2 is simply absent from the instance.
        assert_eq!(
            inst.candidates[1].covers.iter_ones().collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn sensor_sites_subset_empty_subset_is_feasible() {
        let sensors = vec![Point::new(1.0, 1.0)];
        let inst = CoverageInstance::sensor_sites_subset(&sensors, &[], 10.0);
        assert_eq!(inst.n_targets(), 0);
        assert!(inst.is_feasible());
    }
}
