//! Exact minimum set cover by branch and bound.
//!
//! Used for the small-instance optimality-gap experiments in place of the
//! paper's CPLEX runs. The search branches on the hardest uncovered target
//! (fewest covering candidates), bounds with a greedy-packing lower bound,
//! and prunes dominated candidates up front.

use crate::bitset::BitSet;
use crate::instance::CoverageInstance;

/// Node budget for the branch-and-bound search (safety valve for
/// adversarial instances; all experiment instances finish far below it).
const DEFAULT_NODE_BUDGET: u64 = 20_000_000;

/// Finds a minimum-cardinality cover exactly. Returns `None` if the
/// instance is infeasible, or if the node budget is exhausted before the
/// search completes (never observed at experiment sizes; the budget is a
/// protection against pathological inputs).
pub fn exact_min_cover(inst: &CoverageInstance) -> Option<Vec<usize>> {
    exact_min_cover_with_budget(inst, DEFAULT_NODE_BUDGET)
}

/// [`exact_min_cover`] with an explicit node budget.
pub fn exact_min_cover_with_budget(
    inst: &CoverageInstance,
    node_budget: u64,
) -> Option<Vec<usize>> {
    let n = inst.n_targets();
    if n == 0 {
        return Some(Vec::new());
    }
    if !inst.is_feasible() {
        return None;
    }
    // Drop dominated candidates: c is dominated by c' if covers(c) ⊆
    // covers(c') (and c' has equal-or-larger coverage; strict subset or
    // identical with lower index). Some optimal solution avoids dominated
    // candidates, shrinking the branching factor considerably on dense
    // instances.
    let mut alive: Vec<usize> = Vec::new();
    'outer: for (c, cand) in inst.candidates.iter().enumerate() {
        if cand.covers.none() {
            continue;
        }
        for (c2, cand2) in inst.candidates.iter().enumerate() {
            if c2 == c {
                continue;
            }
            let subset = cand.covers.is_subset(&cand2.covers);
            let equal = subset && cand2.covers.is_subset(&cand.covers);
            if (subset && !equal) || (equal && c2 < c) {
                continue 'outer;
            }
        }
        alive.push(c);
    }

    // Upper bound: greedy.
    let greedy = crate::greedy::greedy_cover(inst, |_| 0.0)?;
    let mut best_len = greedy.len();
    let mut best = greedy;

    // Per-target list of alive candidates covering it.
    let mut coverers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &c in &alive {
        for t in inst.candidates[c].covers.iter_ones() {
            coverers[t].push(c);
        }
    }
    // Feasibility can rely on dominated candidates only if domination
    // removed every coverer of a target — impossible: the dominator also
    // covers it. So every target still has coverers.
    debug_assert!(coverers.iter().all(|cs| !cs.is_empty()));

    let max_cover_size = alive
        .iter()
        .map(|&c| inst.candidates[c].covers.count())
        .max()
        .unwrap_or(1)
        .max(1);

    struct Search<'a> {
        inst: &'a CoverageInstance,
        coverers: Vec<Vec<usize>>,
        max_cover_size: usize,
        best_len: usize,
        best: Vec<usize>,
        nodes: u64,
        budget: u64,
        exhausted: bool,
    }

    impl Search<'_> {
        fn recurse(&mut self, covered: &BitSet, chosen: &mut Vec<usize>) {
            self.nodes += 1;
            if self.nodes > self.budget {
                self.exhausted = true;
                return;
            }
            let n = self.inst.n_targets();
            let uncovered = n - covered.count();
            if uncovered == 0 {
                if chosen.len() < self.best_len {
                    self.best_len = chosen.len();
                    self.best = chosen.clone();
                }
                return;
            }
            // Lower bound: each future candidate covers ≤ max_cover_size.
            let lb = chosen.len() + uncovered.div_ceil(self.max_cover_size);
            if lb >= self.best_len {
                return;
            }
            // Branch on the uncovered target with the fewest coverers.
            let target = (0..n)
                .filter(|&t| !covered.get(t))
                .min_by_key(|&t| self.coverers[t].len())
                .expect("some target uncovered");
            // Clone the list to avoid borrowing issues.
            let options = self.coverers[target].clone();
            for c in options {
                if self.exhausted {
                    return;
                }
                let gain = self.inst.candidates[c].covers.count_and_not(covered);
                if gain == 0 {
                    continue;
                }
                let mut next = covered.clone();
                next.union_with(&self.inst.candidates[c].covers);
                chosen.push(c);
                self.recurse(&next, chosen);
                chosen.pop();
            }
        }
    }

    let mut search = Search {
        inst,
        coverers,
        max_cover_size,
        best_len,
        best: std::mem::take(&mut best),
        nodes: 0,
        budget: node_budget,
        exhausted: false,
    };
    let covered = BitSet::new(n);
    let mut chosen = Vec::new();
    search.recurse(&covered, &mut chosen);
    if search.exhausted {
        return None;
    }
    best_len = search.best_len;
    debug_assert!(inst.is_cover(&search.best));
    debug_assert_eq!(search.best.len(), best_len);
    Some(search.best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_cover;
    use mdg_geom::Point;
    use rand::{Rng, SeedableRng};

    fn line(xs: &[f64]) -> Vec<Point> {
        xs.iter().map(|&x| Point::new(x, 0.0)).collect()
    }

    #[test]
    fn single_point_optimum() {
        let sensors = line(&[0.0, 10.0, 20.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 12.0);
        let opt = exact_min_cover(&inst).unwrap();
        assert_eq!(opt, vec![1]);
    }

    #[test]
    fn exact_never_exceeds_greedy() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for trial in 0..10 {
            let sensors: Vec<Point> = (0..20)
                .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
                .collect();
            let inst = CoverageInstance::sensor_sites(&sensors, 25.0);
            let greedy = greedy_cover(&inst, |_| 0.0).unwrap();
            let opt = exact_min_cover(&inst).unwrap();
            assert!(inst.is_cover(&opt), "trial {trial}");
            assert!(
                opt.len() <= greedy.len(),
                "trial {trial}: exact must be ≤ greedy"
            );
        }
    }

    #[test]
    fn exact_matches_brute_force_on_tiny_instances() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for trial in 0..8 {
            let sensors: Vec<Point> = (0..9)
                .map(|_| Point::new(rng.gen_range(0.0..60.0), rng.gen_range(0.0..60.0)))
                .collect();
            let inst = CoverageInstance::sensor_sites(&sensors, 20.0);
            let opt = exact_min_cover(&inst).unwrap().len();
            // Brute force over all subsets of candidates.
            let m = inst.n_candidates();
            let mut brute = usize::MAX;
            for mask in 0u32..(1 << m) {
                let subset: Vec<usize> = (0..m).filter(|&c| mask & (1 << c) != 0).collect();
                if subset.len() < brute && inst.is_cover(&subset) {
                    brute = subset.len();
                }
            }
            assert_eq!(opt, brute, "trial {trial}");
        }
    }

    #[test]
    fn infeasible_returns_none() {
        let sensors = vec![Point::new(33.0, 33.0)];
        let inst =
            CoverageInstance::grid_candidates(&sensors, &mdg_geom::Aabb::square(100.0), 50.0, 5.0);
        assert_eq!(exact_min_cover(&inst), None);
    }

    #[test]
    fn empty_instance() {
        let inst = CoverageInstance::sensor_sites(&[], 10.0);
        assert_eq!(exact_min_cover(&inst).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn isolated_sensors_need_one_each() {
        let sensors = line(&[0.0, 100.0, 200.0, 300.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 10.0);
        assert_eq!(exact_min_cover(&inst).unwrap().len(), 4);
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let sensors: Vec<Point> = (0..40)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        let inst = CoverageInstance::sensor_sites(&sensors, 20.0);
        // Budget of 1 node cannot complete (but greedy still seeds best —
        // we deliberately report None rather than an unproven answer).
        assert_eq!(exact_min_cover_with_budget(&inst, 1), None);
    }
}
