//! A compact dynamic bitset over `0..len`.
//!
//! Coverage sets are dense over a few hundred sensors; `u64` blocks give
//! word-parallel union/subset/count operations that dominate the greedy
//! cover inner loop.

/// A fixed-length bitset backed by `u64` blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    blocks: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An all-zero bitset of `len` bits.
    pub fn new(len: usize) -> Self {
        BitSet {
            blocks: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of addressable bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the bitset addresses zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.blocks[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.blocks[i / 64] &= !(1u64 << (i % 64));
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        (self.blocks[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Returns `true` if no bit is set.
    pub fn none(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Returns `true` if every bit in `0..len` is set.
    pub fn all(&self) -> bool {
        self.count() == self.len
    }

    /// `self |= other`.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// `self &= !other` (set difference).
    pub fn subtract(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !b;
        }
    }

    /// Number of bits set in `self & !other` — how many of `self`'s bits
    /// are *not* already in `other`. The greedy-cover marginal gain.
    pub fn count_and_not(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.len, other.len);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// Returns `true` if every set bit of `self` is also set in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().enumerate().flat_map(|(bi, &block)| {
            let mut bits = block;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(bi * 64 + tz)
                }
            })
        })
    }

    /// Builds a bitset from set-bit indices.
    pub fn from_indices(len: usize, indices: &[usize]) -> Self {
        let mut bs = BitSet::new(len);
        for &i in indices {
            bs.set(i);
        }
        bs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut bs = BitSet::new(130);
        assert_eq!(bs.len(), 130);
        assert!(bs.none());
        bs.set(0);
        bs.set(64);
        bs.set(129);
        assert!(bs.get(0) && bs.get(64) && bs.get(129));
        assert!(!bs.get(1) && !bs.get(65));
        assert_eq!(bs.count(), 3);
        bs.clear(64);
        assert!(!bs.get(64));
        assert_eq!(bs.count(), 2);
    }

    #[test]
    fn union_and_subtract() {
        let a0 = BitSet::from_indices(100, &[1, 50, 99]);
        let b = BitSet::from_indices(100, &[50, 51]);
        let mut a = a0.clone();
        a.union_with(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![1, 50, 51, 99]);
        a.subtract(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![1, 99]);
    }

    #[test]
    fn count_and_not_is_marginal_gain() {
        let covered = BitSet::from_indices(64, &[0, 1, 2]);
        let candidate = BitSet::from_indices(64, &[2, 3, 4]);
        assert_eq!(candidate.count_and_not(&covered), 2, "bits 3 and 4 are new");
        assert_eq!(covered.count_and_not(&candidate), 2);
        assert_eq!(candidate.count_and_not(&candidate), 0);
    }

    #[test]
    fn subset_relation() {
        let small = BitSet::from_indices(70, &[3, 66]);
        let big = BitSet::from_indices(70, &[3, 10, 66]);
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(small.is_subset(&small));
        assert!(
            BitSet::new(70).is_subset(&small),
            "empty set is a subset of everything"
        );
    }

    #[test]
    fn all_and_none() {
        let mut bs = BitSet::new(3);
        assert!(bs.none());
        assert!(!bs.all());
        bs.set(0);
        bs.set(1);
        bs.set(2);
        assert!(bs.all());
        // A 0-length bitset is vacuously all-set and none-set.
        let empty = BitSet::new(0);
        assert!(empty.all());
        assert!(empty.none());
        assert!(empty.is_empty());
    }

    #[test]
    fn iter_ones_order() {
        let bs = BitSet::from_indices(200, &[199, 0, 63, 64, 127, 128]);
        assert_eq!(
            bs.iter_ones().collect::<Vec<_>>(),
            vec![0, 63, 64, 127, 128, 199]
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_set_panics() {
        BitSet::new(10).set(10);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_union_panics() {
        let mut a = BitSet::new(10);
        a.union_with(&BitSet::new(11));
    }
}
