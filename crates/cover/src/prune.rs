//! Reverse-delete pruning of redundant polling points.

use crate::bitset::BitSet;
use crate::instance::CoverageInstance;

/// Removes redundant candidates from a cover: a selected candidate is
/// dropped if the remaining selections still cover everything. Candidates
/// are considered for removal in *descending* `priority` order, so callers
/// remove the most expensive points first (the SHDG planner passes each
/// point's marginal tour cost).
///
/// The result is a minimal cover (no proper subset of it is a cover),
/// though not necessarily a minimum one.
///
/// # Panics
/// Panics if `selected` is not a cover of the instance.
pub fn prune_cover<F>(inst: &CoverageInstance, selected: &[usize], priority: F) -> Vec<usize>
where
    F: Fn(usize) -> f64,
{
    assert!(
        inst.is_cover(selected),
        "prune_cover requires a valid cover"
    );
    let n = inst.n_targets();
    let mut keep: Vec<usize> = selected.to_vec();
    // Try removals most-expensive-first.
    let mut order: Vec<usize> = selected.to_vec();
    order.sort_by(|&a, &b| priority(b).partial_cmp(&priority(a)).unwrap());

    // Multiplicity of coverage per target across kept candidates.
    let mut cover_count = vec![0u32; n];
    for &s in &keep {
        for t in inst.candidates[s].covers.iter_ones() {
            cover_count[t] += 1;
        }
    }

    for cand in order {
        // Removable iff every target it covers is covered at least twice.
        let removable = inst.candidates[cand]
            .covers
            .iter_ones()
            .all(|t| cover_count[t] >= 2);
        if removable {
            for t in inst.candidates[cand].covers.iter_ones() {
                cover_count[t] -= 1;
            }
            keep.retain(|&s| s != cand);
        }
    }
    debug_assert!(inst.is_cover(&keep));
    keep
}

/// Returns `true` if `selected` is a *minimal* cover: removing any single
/// member breaks coverage. (Vacuously true for an empty selection over
/// zero targets.)
pub fn is_minimal_cover(inst: &CoverageInstance, selected: &[usize]) -> bool {
    if !inst.is_cover(selected) {
        return false;
    }
    let n = inst.n_targets();
    let mut cover_count = vec![0u32; n];
    for &s in selected {
        for t in inst.candidates[s].covers.iter_ones() {
            cover_count[t] += 1;
        }
    }
    // Minimal iff every member uniquely covers some target (a member
    // covering nothing therefore also fails this test).
    selected.iter().all(|&s| {
        inst.candidates[s]
            .covers
            .iter_ones()
            .any(|t| cover_count[t] == 1)
    })
}

/// Union coverage of a selection (utility shared by tests and the planner).
pub fn union_coverage(inst: &CoverageInstance, selected: &[usize]) -> BitSet {
    let mut covered = BitSet::new(inst.n_targets());
    for &s in selected {
        covered.union_with(&inst.candidates[s].covers);
    }
    covered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_cover;
    use mdg_geom::Point;

    fn line(xs: &[f64]) -> Vec<Point> {
        xs.iter().map(|&x| Point::new(x, 0.0)).collect()
    }

    #[test]
    fn removes_redundant_point() {
        // Sensors at 0,10,20; R=12. Candidate 1 covers everything; the
        // selection {0, 1, 2} contains two redundant points.
        let sensors = line(&[0.0, 10.0, 20.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 12.0);
        let pruned = prune_cover(&inst, &[0, 1, 2], |c| c as f64);
        assert!(inst.is_cover(&pruned));
        assert_eq!(
            pruned,
            vec![1],
            "only the all-covering middle point survives"
        );
    }

    #[test]
    fn priority_orders_removals() {
        // Symmetric: candidates 0 and 2 each redundant given 1; removing
        // the highest-priority first.
        let sensors = line(&[0.0, 10.0, 20.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 25.0);
        // All candidates cover all sensors. Keep the one with the LOWEST
        // priority value.
        let pruned = prune_cover(&inst, &[0, 1, 2], |c| [5.0, 1.0, 3.0][c]);
        assert_eq!(pruned, vec![1]);
        let pruned2 = prune_cover(&inst, &[0, 1, 2], |c| [0.0, 9.0, 3.0][c]);
        assert_eq!(pruned2, vec![0]);
    }

    #[test]
    fn pruned_cover_is_minimal() {
        let sensors = line(&[0.0, 7.0, 14.0, 21.0, 28.0, 35.0, 80.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 8.0);
        let sel = greedy_cover(&inst, |_| 0.0).unwrap();
        let pruned = prune_cover(&inst, &sel, |_| 0.0);
        assert!(inst.is_cover(&pruned));
        assert!(is_minimal_cover(&inst, &pruned));
        assert!(pruned.len() <= sel.len());
    }

    #[test]
    fn already_minimal_is_untouched() {
        let sensors = line(&[0.0, 100.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 10.0);
        let pruned = prune_cover(&inst, &[0, 1], |_| 0.0);
        assert_eq!(pruned.len(), 2);
    }

    #[test]
    fn union_coverage_counts() {
        let sensors = line(&[0.0, 10.0, 50.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 12.0);
        let u = union_coverage(&inst, &[0]);
        assert_eq!(u.iter_ones().collect::<Vec<_>>(), vec![0, 1]);
        let all = union_coverage(&inst, &[0, 2]);
        assert!(all.all());
    }

    #[test]
    fn minimality_detects_redundancy() {
        let sensors = line(&[0.0, 10.0, 20.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 12.0);
        assert!(!is_minimal_cover(&inst, &[0, 1, 2]));
        assert!(is_minimal_cover(&inst, &[1]));
        assert!(!is_minimal_cover(&inst, &[0]), "not even a cover");
    }

    #[test]
    #[should_panic(expected = "requires a valid cover")]
    fn pruning_non_cover_panics() {
        let sensors = line(&[0.0, 100.0]);
        let inst = CoverageInstance::sensor_sites(&sensors, 10.0);
        prune_cover(&inst, &[0], |_| 0.0);
    }
}
