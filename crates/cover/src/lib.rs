//! # mdg-cover — polling-point coverage instances and set-cover solvers
//!
//! The covering subproblem of the single-hop data gathering problem: choose
//! a set of *polling points* such that **every sensor is within the radio
//! transmission range of at least one chosen point** — then (in `mdg-core`)
//! a tour visits exactly the chosen points.
//!
//! This crate provides:
//!
//! * [`BitSet`]: a compact dynamic bitset used to represent coverage sets.
//! * [`CoverageInstance`]: targets (sensors), candidate polling points
//!   (sensor sites or grid positions, per the paper's "predefined
//!   positions"), and their coverage relation.
//! * [`greedy_cover`]: the classic greedy max-coverage heuristic with a
//!   caller-supplied tie-breaker (the planner breaks ties toward the sink).
//! * [`prune_cover`]: reverse-delete removal of redundant selections.
//! * [`exact::exact_min_cover`]: branch-and-bound minimum set cover for the
//!   optimality-gap experiments (substituting the paper's CPLEX runs).

pub mod bitset;
pub mod capacitated;
pub mod exact;
pub mod greedy;
pub mod instance;
pub mod prune;

pub use bitset::BitSet;
pub use capacitated::{capacitated_greedy_cover, CapacitatedCover};
pub use exact::exact_min_cover;
pub use greedy::{greedy_cover, greedy_cover_restricted};
pub use instance::{Candidate, CoverageInstance};
pub use prune::prune_cover;
