//! Property-based tests for coverage instances and set-cover solvers.

use mdg_cover::{exact_min_cover, greedy_cover, prune_cover, BitSet, CoverageInstance};
use mdg_geom::Point;
use proptest::prelude::*;

fn arb_sensors() -> impl Strategy<Value = (Vec<Point>, f64)> {
    (
        proptest::collection::vec(
            (0.0..150.0f64, 0.0..150.0f64).prop_map(|(x, y)| Point::new(x, y)),
            1..40,
        ),
        15.0..60.0f64,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sensor_site_instances_are_always_feasible((sensors, range) in arb_sensors()) {
        let inst = CoverageInstance::sensor_sites(&sensors, range);
        prop_assert!(inst.is_feasible());
        // Each candidate covers its own sensor.
        for (i, c) in inst.candidates.iter().enumerate() {
            prop_assert!(c.covers.get(i));
        }
    }

    #[test]
    fn greedy_always_covers((sensors, range) in arb_sensors()) {
        let inst = CoverageInstance::sensor_sites(&sensors, range);
        let sel = greedy_cover(&inst, |_| 0.0).unwrap();
        prop_assert!(inst.is_cover(&sel));
        // Assignment exists and respects range.
        let assign = inst.assign(&sel).unwrap();
        for (t, &k) in assign.iter().enumerate() {
            let pp = inst.candidates[sel[k]].pos;
            prop_assert!(pp.dist(sensors[t]) <= range + 1e-9,
                "target {} assigned out of range", t);
        }
    }

    #[test]
    fn greedy_selection_gains_are_monotone_nonincreasing((sensors, range) in arb_sensors()) {
        let inst = CoverageInstance::sensor_sites(&sensors, range);
        let sel = greedy_cover(&inst, |_| 0.0).unwrap();
        let mut covered = BitSet::new(inst.n_targets());
        let mut prev_gain = usize::MAX;
        for &s in &sel {
            let gain = inst.candidates[s].covers.count_and_not(&covered);
            prop_assert!(gain >= 1, "every greedy pick covers something new");
            prop_assert!(gain <= prev_gain, "greedy gains are non-increasing");
            prev_gain = gain;
            covered.union_with(&inst.candidates[s].covers);
        }
    }

    #[test]
    fn prune_keeps_cover_and_shrinks((sensors, range) in arb_sensors()) {
        let inst = CoverageInstance::sensor_sites(&sensors, range);
        let sel = greedy_cover(&inst, |_| 0.0).unwrap();
        let pruned = prune_cover(&inst, &sel, |c| sensors[c].x);
        prop_assert!(inst.is_cover(&pruned));
        prop_assert!(pruned.len() <= sel.len());
        prop_assert!(mdg_cover::prune::is_minimal_cover(&inst, &pruned));
    }

    #[test]
    fn exact_is_optimal_lower_bound((sensors, range) in arb_sensors()) {
        // Keep the exact search cheap: only run on smaller instances.
        if sensors.len() > 22 { return Ok(()); }
        let inst = CoverageInstance::sensor_sites(&sensors, range);
        let greedy = greedy_cover(&inst, |_| 0.0).unwrap();
        let pruned = prune_cover(&inst, &greedy, |_| 0.0);
        if let Some(opt) = exact_min_cover(&inst) {
            prop_assert!(inst.is_cover(&opt));
            prop_assert!(opt.len() <= greedy.len());
            prop_assert!(opt.len() <= pruned.len());
            // Greedy's ln(n)+1 approximation guarantee.
            let bound = (sensors.len() as f64).ln() + 1.0;
            prop_assert!((greedy.len() as f64) <= bound * opt.len() as f64 + 1e-9);
        }
    }

    #[test]
    fn grid_candidates_all_cover_something((sensors, range) in arb_sensors()) {
        let field = mdg_geom::Aabb::square(150.0);
        let inst = CoverageInstance::grid_candidates(&sensors, &field, range / 2.0, range);
        for c in &inst.candidates {
            prop_assert!(!c.covers.none());
        }
        // With spacing ≤ range/√2 the lattice always covers every sensor
        // inside the field (nearest lattice point is within range).
        let fine = CoverageInstance::grid_candidates(&sensors, &field, range / 2.0, range);
        prop_assert!(fine.is_feasible());
    }
}
