//! Seeded equivalence suite: the lazy-greedy (max-heap of stale gains)
//! cover must return the *exact same selections, in the same order* as the
//! naive full-rescan greedy it replaced, for any tie-breaker.
//!
//! The suite sweeps > 100 seeded instances across sizes, ranges and four
//! tie-breaker families chosen to stress the tie-resolution path: the
//! planner's real distance-to-sink breaker, a constant (every candidate
//! tied), a coarsely quantized distance (many multi-way ties, including
//! exact `-0.0` vs `0.0` bucket values), and a negated coordinate
//! (descending preference).

use mdg_cover::greedy::{greedy_cover_reference, greedy_cover_restricted_reference};
use mdg_cover::{greedy_cover, greedy_cover_restricted, CoverageInstance};
use mdg_geom::Point;
use mdg_net::DeploymentConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Instance `i` of the sweep: uniform field whose size, density and range
/// all vary with the index.
fn instance(i: usize) -> (CoverageInstance, Vec<Point>, Point) {
    let n = 10 + (i * 7) % 151; // 10..=160 sensors
    let side = 60.0 + (i % 9) as f64 * 20.0; // 60..=220 m
    let range = 12.0 + (i % 11) as f64 * 4.0; // 12..=52 m
    let dep = DeploymentConfig::uniform(n, side).generate(1000 + i as u64);
    let inst = CoverageInstance::sensor_sites(&dep.sensors, range);
    (inst, dep.sensors, dep.sink)
}

/// The four tie-breaker families, by index.
fn tie_break(mode: usize, sensors: &[Point], sink: Point, c: usize) -> f64 {
    match mode {
        0 => sensors[c].dist(sink),                  // the planner's breaker
        1 => 0.0,                                    // everything tied
        2 => (sensors[c].dist(sink) / 25.0).floor(), // coarse buckets
        _ => -sensors[c].x,                          // descending, signed zeros
    }
}

#[test]
fn lazy_matches_reference_on_120_seeded_instances() {
    let mut checked = 0usize;
    for i in 0..120 {
        let (inst, sensors, sink) = instance(i);
        let mode = i % 4;
        let tb = |c: usize| tie_break(mode, &sensors, sink, c);
        let lazy = greedy_cover(&inst, tb);
        let naive = greedy_cover_reference(&inst, tb);
        assert_eq!(
            lazy,
            naive,
            "instance {i} (n = {}, mode {mode}): lazy-greedy diverged from reference",
            inst.n_targets()
        );
        assert!(inst.is_cover(&lazy.unwrap()));
        checked += 1;
    }
    assert!(checked >= 100, "suite must cover at least 100 instances");
}

#[test]
fn restricted_lazy_matches_reference_on_seeded_instances() {
    let mut rng = StdRng::seed_from_u64(7);
    for i in 0..60 {
        let (inst, sensors, sink) = instance(i + 500);
        let n = inst.n_targets();
        // Random non-empty target subset; `allowed` is every candidate
        // covering at least one chosen target plus some random extras.
        let targets: Vec<usize> = (0..n).filter(|_| rng.gen_bool(0.4)).collect();
        if targets.is_empty() {
            continue;
        }
        let allowed: Vec<usize> = (0..inst.n_candidates())
            .filter(|&c| {
                targets.iter().any(|&t| inst.candidates[c].covers.get(t)) || rng.gen_bool(0.2)
            })
            .collect();
        let mode = i % 4;
        let tb = |c: usize| tie_break(mode, &sensors, sink, c);
        let lazy = greedy_cover_restricted(&inst, &targets, &allowed, tb);
        let naive = greedy_cover_restricted_reference(&inst, &targets, &allowed, tb);
        assert_eq!(
            lazy, naive,
            "restricted instance {i} (n = {n}, mode {mode}): lazy diverged from reference"
        );
    }
}

#[test]
fn restricted_infeasible_subsets_agree_on_none() {
    // `allowed` misses a target entirely: both variants must return None.
    let sensors = vec![
        Point::new(0.0, 0.0),
        Point::new(50.0, 0.0),
        Point::new(100.0, 0.0),
    ];
    let inst = CoverageInstance::sensor_sites(&sensors, 10.0);
    let lazy = greedy_cover_restricted(&inst, &[0, 2], &[0], |_| 0.0);
    let naive = greedy_cover_restricted_reference(&inst, &[0, 2], &[0], |_| 0.0);
    assert_eq!(lazy, None);
    assert_eq!(lazy, naive);
}
