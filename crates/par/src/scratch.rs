//! Reusable scratch arenas: capacity that survives the call.
//!
//! The planner's hot paths (per-tile cover→prune→tour, insertion-cache
//! slabs, k-NN builds, 2-opt/Or-opt move buffers) are *re-solved*
//! constantly — per tile, per delta, per request — and historically
//! rebuilt their entire working set from the allocator each time. This
//! module gives every thread a [`Scratch`] pool of typed `Vec`s:
//! [`take`] pops a previously returned buffer (length-cleared, capacity
//! intact) and [`put`] returns it, so steady-state callers reuse
//! capacity instead of reallocating. `mdg-par` workers are persistent
//! named threads, so their pools live across `par_map`/`par_chunks`
//! calls; sequential paths use the calling thread's pool, and long-lived
//! owners (a retained `HierPlan`, a serve session) can hold an explicit
//! [`Scratch`] instead.
//!
//! # Determinism contract
//!
//! A pooled buffer is indistinguishable from a fresh one to any code
//! that only reads what it wrote: [`take`] always returns `len() == 0`,
//! and content beyond the length is **never trusted** — only capacity is
//! reused. That makes arenas invisible to the bit-identical-at-any-
//! thread-count invariant: switching pooling off ([`set_enabled`])
//! must not change any plan, and the workspace `scratch_poison` suite
//! enforces it adversarially by filling the spare capacity of every
//! returned buffer with sentinel bytes ([`set_poison`]) and re-running
//! the equivalence suites.
//!
//! # Why `TypeId`-keyed pools
//!
//! Hot paths pool many element types (`u32`, `f64`, `bool`, candidate
//! structs…). One generic pool keyed by `TypeId` keeps the API a single
//! `take::<T>()`/`put(v)` pair; after the first `put` of each type the
//! steady state performs no allocation at all (one `HashMap` probe and a
//! `Vec` pop/push).

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

static ENABLED: AtomicBool = AtomicBool::new(true);
static POISON: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

/// Globally enable or disable pooling (on by default). While off,
/// [`take`] returns fresh `Vec`s and [`put`] drops its argument — the
/// allocation behaviour the workspace had before arenas, used by the
/// equivalence suites to prove arenas never change results.
pub fn set_enabled(on: bool) {
    ENV_INIT.call_once(|| {});
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether pooling is currently on. The first query honors the
/// `MDG_SCRATCH` environment variable (`0`/`false` disables pooling), so
/// A/B measurements of the arenas need no code change; an explicit
/// [`set_enabled`] beforehand wins over the environment.
#[inline]
pub fn enabled() -> bool {
    ENV_INIT.call_once(|| {
        if let Ok(v) = std::env::var("MDG_SCRATCH") {
            if v == "0" || v.eq_ignore_ascii_case("false") {
                ENABLED.store(false, Ordering::Relaxed);
            }
        }
    });
    ENABLED.load(Ordering::Relaxed)
}

/// Adversarial testing aid: while on, every buffer returned to a pool
/// has its spare capacity filled with `0xA5` sentinel bytes, so any code
/// path that trusts stale contents (e.g. an unchecked `set_len`) yields
/// garbage instead of silently reading the previous call's data. Off by
/// default; flipped by the `scratch_poison` suite.
pub fn set_poison(on: bool) {
    POISON.store(on, Ordering::Relaxed);
}

/// Whether poisoning is currently on.
#[inline]
pub fn poison() -> bool {
    POISON.load(Ordering::Relaxed)
}

/// A pool of reusable typed buffers. Most callers use the thread-local
/// pool through the free functions [`take`]/[`put`]; long-lived owners
/// (retained plans, serve sessions) can embed their own `Scratch` so
/// buffer lifetime matches the owner, not the thread.
#[derive(Default)]
pub struct Scratch {
    /// `TypeId::of::<T>()` → `Vec<Vec<T>>` (boxed to erase `T`).
    pools: HashMap<TypeId, Box<dyn Any + Send>>,
    /// `VecDeque` scratch for the queue-driven local-search passes.
    deques_u32: Vec<VecDeque<u32>>,
}

impl Scratch {
    /// An empty pool.
    pub fn new() -> Self {
        Scratch::default()
    }

    fn pool_mut<T: Send + 'static>(&mut self) -> &mut Vec<Vec<T>> {
        self.pools
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(Vec::<Vec<T>>::new()))
            .downcast_mut::<Vec<Vec<T>>>()
            .expect("scratch pool type confusion")
    }

    /// Pop a pooled buffer of `T` (empty, with whatever capacity its
    /// last user grew it to), or a fresh `Vec` if the pool is empty or
    /// pooling is disabled.
    pub fn take<T: Send + 'static>(&mut self) -> Vec<T> {
        if !enabled() {
            return Vec::new();
        }
        match self.pool_mut::<T>().pop() {
            Some(v) => {
                debug_assert!(v.is_empty(), "pooled buffer stored non-empty");
                v
            }
            None => Vec::new(),
        }
    }

    /// [`Scratch::take`] plus `reserve(cap)`, for call sites that know
    /// their size up front.
    pub fn take_cap<T: Send + 'static>(&mut self, cap: usize) -> Vec<T> {
        let mut v = self.take();
        v.reserve(cap);
        v
    }

    /// Return a buffer to the pool (cleared; dropped when pooling is
    /// disabled). Zero-capacity buffers are dropped — pooling them would
    /// just grow the free list without saving an allocation.
    pub fn put<T: Send + 'static>(&mut self, mut v: Vec<T>) {
        if !enabled() || v.capacity() == 0 {
            return;
        }
        v.clear();
        if poison() {
            poison_spare(&mut v);
        }
        self.pool_mut::<T>().push(v);
    }

    /// Pop a pooled `VecDeque<u32>` (or a fresh one).
    pub fn take_deque_u32(&mut self) -> VecDeque<u32> {
        if !enabled() {
            return VecDeque::new();
        }
        self.deques_u32.pop().unwrap_or_default()
    }

    /// Return a `VecDeque<u32>` to the pool.
    pub fn put_deque_u32(&mut self, mut d: VecDeque<u32>) {
        if !enabled() || d.capacity() == 0 {
            return;
        }
        d.clear();
        self.deques_u32.push(d);
    }
}

/// Fill the spare (beyond-`len`) capacity of `v` with `0xA5` bytes.
fn poison_spare<T>(v: &mut Vec<T>) {
    let spare = v.spare_capacity_mut();
    if spare.is_empty() || std::mem::size_of::<T>() == 0 {
        return;
    }
    // SAFETY: `spare_capacity_mut` is exactly the allocated-but-
    // uninitialized tail; writing raw bytes there initializes nothing
    // logically (len is unchanged) and touches only owned memory.
    unsafe {
        std::ptr::write_bytes(
            spare.as_mut_ptr() as *mut u8,
            0xA5,
            std::mem::size_of_val(spare),
        );
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Take a buffer from the current thread's pool. See [`Scratch::take`].
pub fn take<T: Send + 'static>() -> Vec<T> {
    SCRATCH.with(|s| s.borrow_mut().take())
}

/// Take a buffer with at least `cap` capacity from the current thread's
/// pool. See [`Scratch::take_cap`].
pub fn take_cap<T: Send + 'static>(cap: usize) -> Vec<T> {
    SCRATCH.with(|s| s.borrow_mut().take_cap(cap))
}

/// Return a buffer to the current thread's pool. See [`Scratch::put`].
pub fn put<T: Send + 'static>(v: Vec<T>) {
    SCRATCH.with(|s| s.borrow_mut().put(v));
}

/// Take a `VecDeque<u32>` from the current thread's pool.
pub fn take_deque_u32() -> VecDeque<u32> {
    SCRATCH.with(|s| s.borrow_mut().take_deque_u32())
}

/// Return a `VecDeque<u32>` to the current thread's pool.
pub fn put_deque_u32(d: VecDeque<u32>) {
    SCRATCH.with(|s| s.borrow_mut().put_deque_u32(d));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Pooling flags are process-global; serialize tests that flip them.
    fn locked<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        set_poison(false);
        let r = f();
        set_enabled(true);
        set_poison(false);
        r
    }

    #[test]
    fn take_reuses_put_capacity() {
        locked(|| {
            let mut s = Scratch::new();
            let mut v: Vec<u64> = s.take();
            v.reserve(1000);
            let cap = v.capacity();
            let ptr = v.as_ptr();
            s.put(v);
            let v2: Vec<u64> = s.take();
            assert!(v2.is_empty());
            assert_eq!(v2.capacity(), cap);
            assert_eq!(v2.as_ptr(), ptr, "same allocation must come back");
        });
    }

    #[test]
    fn pools_are_per_type() {
        locked(|| {
            let mut s = Scratch::new();
            let mut a: Vec<u32> = s.take_cap(16);
            a.push(7);
            s.put(a);
            // A different type gets its own pool, not a transmuted buffer.
            let b: Vec<f64> = s.take();
            assert!(b.is_empty());
            assert_eq!(b.capacity(), 0);
            let a2: Vec<u32> = s.take();
            assert!(a2.is_empty());
            assert!(a2.capacity() >= 16);
        });
    }

    #[test]
    fn disabled_pooling_always_returns_fresh() {
        locked(|| {
            set_enabled(false);
            let mut s = Scratch::new();
            let v: Vec<u8> = s.take_cap(64);
            s.put(v);
            let v2: Vec<u8> = s.take();
            assert_eq!(v2.capacity(), 0, "disabled pool must not retain");
        });
    }

    #[test]
    fn poison_fills_spare_capacity() {
        locked(|| {
            set_poison(true);
            let mut s = Scratch::new();
            let mut v: Vec<u8> = s.take_cap(32);
            v.extend_from_slice(&[1, 2, 3]);
            s.put(v);
            let mut v2: Vec<u8> = s.take();
            assert!(v2.is_empty());
            // SAFETY (test only): read the poisoned tail as raw bytes.
            let spare = v2.spare_capacity_mut();
            let all_sentinel = spare.iter().all(|b| unsafe { b.as_ptr().read() } == 0xA5);
            assert!(all_sentinel, "spare capacity must be poisoned");
        });
    }

    #[test]
    fn thread_local_pool_round_trips() {
        locked(|| {
            let v: Vec<u16> = take_cap(128);
            let cap = v.capacity();
            put(v);
            let v2: Vec<u16> = take();
            assert!(v2.capacity() >= cap.min(128));
            put(v2);
            let d = take_deque_u32();
            put_deque_u32(d);
        });
    }
}
