//! # mdg-par — deterministic data parallelism on std threads
//!
//! The planner's hot loops (gain seeding, insertion-cache maintenance,
//! k-NN list construction, candidate-move evaluation) are embarrassingly
//! parallel *computations* feeding strictly sequential *decisions*. This
//! crate supplies the computation side: a persistent worker pool (no
//! crates.io dependencies — workers are plain `std::thread`s parked on a
//! condvar) behind order-preserving primitives whose results are
//! **bit-identical at any thread count**:
//!
//! * [`par_map`] — `f(i)` for `i in 0..n`, results in index order. Output
//!   is element-wise, so scheduling and chunking cannot affect it.
//! * [`par_chunks`] / [`par_chunks_mut`] — fixed-size blocks of an index
//!   range (or slice). Block boundaries are computed from `n` and `chunk`
//!   only — never from the thread count — so even order-sensitive
//!   per-block results (e.g. float accumulations) are reproducible.
//! * [`par_reduce`] — [`par_chunks`] followed by a **sequential** fold of
//!   the block results in block order; the reducer runs on the calling
//!   thread, which is where all selection and tie-breaking belongs.
//! * [`par_find_first_map`] — the smallest `i` with `f(i) = Some(..)`,
//!   mirroring a sequential first-improvement scan with bounded
//!   speculative evaluation.
//!
//! ## Thread-count control
//!
//! Effective parallelism is resolved per call as: programmatic override
//! ([`set_threads`], `0` = auto) → `MDG_THREADS` environment variable
//! (`0`/unset/unparsable = auto) → [`std::thread::available_parallelism`].
//! One thread means every primitive degrades to the plain sequential loop.
//!
//! ## Nesting and reentrancy
//!
//! One job runs at a time. A parallel call issued from inside another
//! parallel region (a worker task, or a second thread while the pool is
//! busy) silently runs sequentially inline — correct by the determinism
//! contract, and free of lock-ordering hazards. This is exactly what the
//! bench runner needs: it fans replicates out across the pool while each
//! replicate's planner calls collapse to their sequential fallbacks.
//!
//! ## Panics
//!
//! A panic inside a task is caught, the job is run to completion (other
//! tasks still execute), and the panic is re-raised on the calling thread
//! once all borrowed data is provably no longer referenced by any worker.

pub mod scratch;

use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard ceiling on the effective thread count (and the pool size); guards
/// against absurd `MDG_THREADS` values.
pub const MAX_THREADS: usize = 128;

/// Programmatic thread-count override; `0` means "not set" (defer to the
/// environment / hardware).
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the global thread count for all subsequent parallel calls in this
/// process. `0` restores automatic selection (`MDG_THREADS`, then hardware
/// parallelism). Values are clamped to `1..=`[`MAX_THREADS`].
///
/// Changing the count never changes any primitive's result — only how
/// many workers compute it.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n.min(MAX_THREADS), Ordering::Relaxed);
}

/// The effective thread count the next parallel call will use.
///
/// ```
/// mdg_par::set_threads(3);
/// assert_eq!(mdg_par::threads(), 3);
/// mdg_par::set_threads(0); // back to auto
/// assert!(mdg_par::threads() >= 1);
/// ```
pub fn threads() -> usize {
    let explicit = OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit.clamp(1, MAX_THREADS);
    }
    if let Ok(v) = std::env::var("MDG_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n.clamp(1, MAX_THREADS);
            }
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .clamp(1, MAX_THREADS)
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// Per-job shared state. Workers claim task indices off `next`; the caller
/// waits for `done == n_tasks`, at which point every claimed task has
/// finished and no worker will dereference the job's data pointer again
/// (a stale claim attempt only observes `next >= n_tasks` and bails).
struct JobCounters {
    next: AtomicUsize,
    n_tasks: usize,
    panicked: AtomicBool,
    done: Mutex<usize>,
    done_cv: Condvar,
}

/// A type-erased borrowed job: `call(data, i)` invokes the caller's task
/// closure for task `i`. `data` borrows the caller's stack frame; validity
/// is guaranteed by the completion protocol in [`JobCounters`].
#[derive(Clone)]
struct JobRef {
    call: unsafe fn(*const (), usize),
    data: *const (),
    ctr: Arc<JobCounters>,
}

// SAFETY: `data` always points at a closure that is `Sync` (enforced by
// the `F: Sync` bounds on every public entry point), shared by reference
// across workers; `call` is a plain fn pointer.
unsafe impl Send for JobRef {}

/// The broadcast slot workers watch. `epoch` increments per job so a
/// worker never runs the same job twice; `quota` bounds how many workers
/// join a job, enforcing the caller's requested thread count even when
/// the pool holds more (previously spawned) workers.
struct Slot {
    epoch: u64,
    job: Option<JobRef>,
    quota: usize,
}

struct Shared {
    slot: Mutex<Slot>,
    work_cv: Condvar,
}

struct Pool {
    shared: Arc<Shared>,
    /// Workers spawned so far (they are never joined; parked workers cost
    /// nothing and die with the process).
    spawned: Mutex<usize>,
}

thread_local! {
    /// True while this thread is executing tasks of some job — both on
    /// workers and on the submitting thread. Parallel calls made in that
    /// state run sequentially inline.
    static IN_PAR: Cell<bool> = const { Cell::new(false) };
}

/// Serializes job submission; `try_lock` failure (another thread mid-job)
/// downgrades the caller to the sequential path instead of blocking.
static SUBMIT: Mutex<()> = Mutex::new(());

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        shared: Arc::new(Shared {
            slot: Mutex::new(Slot {
                epoch: 0,
                job: None,
                quota: 0,
            }),
            work_cv: Condvar::new(),
        }),
        spawned: Mutex::new(0),
    })
}

/// Claims and runs tasks until the job's index counter is exhausted.
/// Panics inside a task are recorded and swallowed so the completion
/// protocol always terminates; the submitter re-raises them.
fn run_tasks(job: &JobRef) {
    let was_in_par = IN_PAR.with(|f| f.replace(true));
    loop {
        let i = job.ctr.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.ctr.n_tasks {
            break;
        }
        // SAFETY: `i < n_tasks` is claimed exactly once (fetch_add), and
        // the submitter keeps `data` alive until `done == n_tasks`, which
        // cannot happen before this task's increment below.
        if catch_unwind(AssertUnwindSafe(|| unsafe { (job.call)(job.data, i) })).is_err() {
            job.ctr.panicked.store(true, Ordering::Relaxed);
        }
        let mut done = job.ctr.done.lock().expect("job counter poisoned");
        *done += 1;
        if *done == job.ctr.n_tasks {
            job.ctr.done_cv.notify_all();
        }
    }
    IN_PAR.with(|f| f.set(was_in_par));
}

fn worker_main(shared: Arc<Shared>) {
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock().expect("pool slot poisoned");
            loop {
                if slot.epoch != last_epoch {
                    last_epoch = slot.epoch;
                    if slot.quota > 0 {
                        if let Some(job) = slot.job.clone() {
                            slot.quota -= 1;
                            break job;
                        }
                    }
                }
                slot = shared.work_cv.wait(slot).expect("pool slot poisoned");
            }
        };
        run_tasks(&job);
    }
}

impl Pool {
    /// Ensures at least `target` workers exist (best effort: spawn
    /// failures degrade parallelism, never correctness — the submitter
    /// always participates, so jobs finish even with zero workers).
    fn ensure_workers(&self, target: usize) {
        let mut spawned = self.spawned.lock().expect("pool spawn count poisoned");
        while *spawned < target.min(MAX_THREADS - 1) {
            let shared = Arc::clone(&self.shared);
            let res = std::thread::Builder::new()
                .name(format!("mdg-par-{}", *spawned))
                .spawn(move || worker_main(shared));
            if res.is_err() {
                break;
            }
            *spawned += 1;
        }
    }

    /// Runs `n_tasks` invocations of `call(data, i)` across the pool plus
    /// the calling thread, returning once all have finished. Caller must
    /// hold the `SUBMIT` lock and have `n_tasks > 0`.
    fn run(
        &self,
        n_tasks: usize,
        helpers: usize,
        call: unsafe fn(*const (), usize),
        data: *const (),
    ) {
        let ctr = Arc::new(JobCounters {
            next: AtomicUsize::new(0),
            n_tasks,
            panicked: AtomicBool::new(false),
            done: Mutex::new(0),
            done_cv: Condvar::new(),
        });
        let job = JobRef {
            call,
            data,
            ctr: Arc::clone(&ctr),
        };
        {
            let mut slot = self.shared.slot.lock().expect("pool slot poisoned");
            slot.epoch += 1;
            slot.quota = helpers;
            slot.job = Some(job.clone());
        }
        self.shared.work_cv.notify_all();
        run_tasks(&job);
        // Wait until every claimed task has finished; only then may the
        // borrowed `data` go out of scope.
        {
            let mut done = ctr.done.lock().expect("job counter poisoned");
            while *done < n_tasks {
                done = ctr.done_cv.wait(done).expect("job counter poisoned");
            }
        }
        {
            let mut slot = self.shared.slot.lock().expect("pool slot poisoned");
            slot.job = None;
            slot.quota = 0;
        }
        if ctr.panicked.load(Ordering::Relaxed) {
            panic!("mdg-par: a parallel task panicked");
        }
    }
}

/// Type-erasure trampoline: recovers the concrete closure behind the job's
/// data pointer and runs task `i`.
///
/// # Safety
/// `data` must point at a live `F` shared for the duration of the job.
unsafe fn call_task<F: Fn(usize) + Sync>(data: *const (), i: usize) {
    // SAFETY: per contract, `data` is a valid `*const F` for the job's
    // lifetime, and `F: Sync` permits shared access from any thread.
    let f = unsafe { &*(data as *const F) };
    f(i);
}

/// Executes `task(i)` for every `i in 0..n_tasks`, in parallel when the
/// effective thread count allows it and the pool is free, sequentially
/// otherwise. The task must tolerate any execution order (all callers in
/// this crate write disjoint, index-addressed outputs).
fn execute<F: Fn(usize) + Sync>(n_tasks: usize, task: &F) {
    if n_tasks == 0 {
        return;
    }
    let t = threads();
    if n_tasks == 1 || t <= 1 || IN_PAR.with(|f| f.get()) {
        for i in 0..n_tasks {
            task(i);
        }
        return;
    }
    let Ok(_guard) = SUBMIT.try_lock() else {
        // Another thread is mid-job; don't queue behind it (that thread
        // may itself be waiting on compute we'd block) — run inline.
        for i in 0..n_tasks {
            task(i);
        }
        return;
    };
    let helpers = (t - 1).min(n_tasks - 1);
    let p = pool();
    p.ensure_workers(helpers);
    p.run(
        n_tasks,
        helpers,
        call_task::<F>,
        task as *const F as *const (),
    );
}

// ---------------------------------------------------------------------------
// Public primitives
// ---------------------------------------------------------------------------

/// A raw pointer to an output buffer, shared across tasks that write
/// disjoint slots.
struct OutPtr<T>(*mut T);
// SAFETY: tasks address disjoint slots (each index claimed exactly once),
// and the completion protocol orders all writes before the caller reads.
unsafe impl<T: Send> Sync for OutPtr<T> {}

impl<T> OutPtr<T> {
    /// Writes `v` into slot `i`.
    ///
    /// # Safety
    /// `i` must be in bounds of the underlying buffer and owned
    /// exclusively by the calling task.
    unsafe fn write(&self, i: usize, v: T) {
        unsafe { self.0.add(i).write(v) }
    }

    /// Reborrows `len` slots starting at `start` as a mutable slice.
    ///
    /// # Safety
    /// The range must be in bounds and disjoint from every other task's
    /// range, and the underlying buffer must outlive the job.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        unsafe { std::slice::from_raw_parts_mut(self.0.add(start), len) }
    }
}

/// Splits `0..n` into blocks of `chunk` (last one possibly shorter).
/// Boundaries depend only on `n` and `chunk` — never on the thread count.
#[inline]
fn block(ci: usize, n: usize, chunk: usize) -> Range<usize> {
    let start = ci * chunk;
    start..((start + chunk).min(n))
}

#[inline]
fn n_blocks(n: usize, chunk: usize) -> usize {
    n.div_ceil(chunk)
}

/// Picks a block size for element-wise maps: enough blocks for load
/// balance, big enough to amortize claim overhead. Because [`par_map`]'s
/// output is element-wise, this MAY consult the thread count without
/// affecting results.
fn auto_chunk(n: usize) -> usize {
    (n.div_ceil(8 * threads())).max(1)
}

/// Applies `f` to every index in `0..n` and returns the results in index
/// order — a drop-in parallel `(0..n).map(f).collect()`.
///
/// ```
/// let squares = mdg_par::par_map(5, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<std::mem::MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: `MaybeUninit` needs no initialization; length is restored to
    // a fully-written state before the transmute below.
    unsafe { out.set_len(n) };
    let chunk = auto_chunk(n);
    let ptr = OutPtr(out.as_mut_ptr());
    execute(n_blocks(n, chunk), &|ci| {
        for i in block(ci, n, chunk) {
            let v = f(i);
            // SAFETY: `i` lies in this task's private block; blocks are
            // disjoint, so no other task touches this slot.
            unsafe { ptr.write(i, std::mem::MaybeUninit::new(v)) };
        }
    });
    // SAFETY: `execute` ran every block, so all `n` slots are initialized
    // (a task panic would have propagated above and skipped this).
    unsafe {
        let mut out = std::mem::ManuallyDrop::new(out);
        Vec::from_raw_parts(out.as_mut_ptr() as *mut T, n, out.capacity())
    }
}

/// Applies `f` to fixed blocks of `0..n` (each of size `chunk`, last one
/// truncated) and returns the per-block results in block order. Block
/// boundaries are a pure function of `n` and `chunk`, so order-sensitive
/// per-block computations (float sums, first-hit scans) are reproducible
/// at any thread count.
///
/// # Panics
/// Panics if `chunk == 0`.
///
/// ```
/// // Block-wise sums: boundaries are [0..3), [3..6), [6..8).
/// let sums = mdg_par::par_chunks(8, 3, |r| r.sum::<usize>());
/// assert_eq!(sums, vec![3, 12, 13]);
/// ```
pub fn par_chunks<R, F>(n: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let nb = n_blocks(n, chunk);
    let mut out: Vec<std::mem::MaybeUninit<R>> = Vec::with_capacity(nb);
    // SAFETY: as in `par_map`.
    unsafe { out.set_len(nb) };
    let ptr = OutPtr(out.as_mut_ptr());
    execute(nb, &|ci| {
        let v = f(block(ci, n, chunk));
        // SAFETY: one writer per block index.
        unsafe { ptr.write(ci, std::mem::MaybeUninit::new(v)) };
    });
    // SAFETY: all `nb` slots written by `execute`.
    unsafe {
        let mut out = std::mem::ManuallyDrop::new(out);
        Vec::from_raw_parts(out.as_mut_ptr() as *mut R, nb, out.capacity())
    }
}

/// Hands out fixed disjoint sub-slices of `data` (each `chunk` elements,
/// last one truncated) to parallel tasks as `f(block_start, block)`.
/// The in-place analogue of [`par_chunks`] for cache-update loops.
///
/// # Panics
/// Panics if `chunk == 0`.
///
/// ```
/// let mut v = vec![0usize; 10];
/// mdg_par::par_chunks_mut(&mut v, 4, |start, block| {
///     for (k, x) in block.iter_mut().enumerate() {
///         *x = start + k;
///     }
/// });
/// assert_eq!(v, (0..10).collect::<Vec<_>>());
/// ```
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let n = data.len();
    let ptr = OutPtr(data.as_mut_ptr());
    execute(n_blocks(n, chunk), &|ci| {
        let r = block(ci, n, chunk);
        // SAFETY: blocks are disjoint sub-ranges of `data`, one task per
        // block, and `data` outlives the job (execute blocks until done).
        let slice = unsafe { ptr.slice_mut(r.start, r.len()) };
        f(r.start, slice);
    });
}

/// Maps fixed blocks of `0..n` in parallel, then folds the block results
/// **sequentially in block order** on the calling thread. With the same
/// `chunk`, the result is identical at any thread count — even for
/// non-associative reducers (the parallel part only computes; the
/// order-sensitive part never leaves the caller). Returns `None` when
/// `n == 0`.
///
/// ```
/// // Deterministic argmax with first-wins ties, in parallel:
/// let xs = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3];
/// let best = mdg_par::par_reduce(
///     xs.len(),
///     4,
///     |r| r.map(|i| (i, xs[i])).max_by_key(|&(i, x)| (x, std::cmp::Reverse(i))).unwrap(),
///     |a, b| if b.1 > a.1 { b } else { a },
/// );
/// assert_eq!(best, Some((5, 9)));
/// ```
pub fn par_reduce<A, M, F>(n: usize, chunk: usize, map: M, mut fold: F) -> Option<A>
where
    A: Send,
    M: Fn(Range<usize>) -> A + Sync,
    F: FnMut(A, A) -> A,
{
    let mut blocks = par_chunks(n, chunk, map).into_iter();
    let first = blocks.next()?;
    Some(blocks.fold(first, &mut fold))
}

/// Returns `(i, f(i).unwrap())` for the **smallest** `i in 0..n` with
/// `f(i) = Some(..)`, or `None` if there is none — the parallel analogue
/// of a sequential first-improvement scan.
///
/// Indices are evaluated in parallel groups walked front to back, so the
/// scan stops early (within one group) of the first hit; speculative
/// evaluation past the hit is bounded by the group size and never affects
/// the result: the first group containing any hit necessarily contains
/// the globally smallest one.
pub fn par_find_first_map<R, F>(n: usize, f: F) -> Option<(usize, R)>
where
    R: Send,
    F: Fn(usize) -> Option<R> + Sync,
{
    let t = threads();
    if n == 0 {
        return None;
    }
    if t <= 1 || IN_PAR.with(|flag| flag.get()) {
        return (0..n).find_map(|i| f(i).map(|r| (i, r)));
    }
    // Group size balances early-exit (small groups) against per-job
    // overhead (large groups); any value yields the same result.
    let group = (t * 256).min(n);
    let mut start = 0;
    while start < n {
        let end = (start + group).min(n);
        let hits = par_map(end - start, |k| f(start + k));
        if let Some(k) = hits.iter().position(|h| h.is_some()) {
            let r = hits.into_iter().nth(k).flatten().expect("checked Some");
            return Some((start + k, r));
        }
        start = end;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that assert on the *value* of the global thread
    /// count (tests in one binary run concurrently). Tests that only rely
    /// on result-determinism don't need it.
    fn count_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Runs `f` under each thread count and asserts all results match.
    fn same_at_all_thread_counts<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) {
        let _guard = count_lock();
        let reference = {
            set_threads(1);
            f()
        };
        for t in [2, 3, 8] {
            set_threads(t);
            assert_eq!(f(), reference, "thread count {t} diverged");
        }
        set_threads(0);
    }

    #[test]
    fn map_is_order_preserving() {
        same_at_all_thread_counts(|| par_map(1000, |i| i * 3));
    }

    #[test]
    fn map_handles_empty_and_single() {
        assert_eq!(par_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn chunk_boundaries_are_thread_independent() {
        // Float accumulation per block: only fixed boundaries keep this
        // bit-identical.
        same_at_all_thread_counts(|| {
            par_chunks(10_000, 97, |r| r.map(|i| (i as f64).sqrt()).sum::<f64>())
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<u64>>()
        });
    }

    #[test]
    fn chunks_mut_writes_every_slot() {
        same_at_all_thread_counts(|| {
            let mut v = vec![0usize; 5000];
            par_chunks_mut(&mut v, 64, |start, block| {
                for (k, x) in block.iter_mut().enumerate() {
                    *x = (start + k) * 2;
                }
            });
            v
        });
    }

    #[test]
    fn reduce_folds_in_block_order() {
        // Non-associative fold (string concatenation of block ids).
        same_at_all_thread_counts(|| {
            par_reduce(
                2500,
                31,
                |r| format!("[{}..{})", r.start, r.end),
                |a, b| a + &b,
            )
        });
        assert_eq!(par_reduce(0, 4, |_| 0u32, |a, b| a + b), None);
    }

    #[test]
    fn find_first_matches_sequential_scan() {
        let pred = |i: usize| (i >= 777 && i.is_multiple_of(13)).then_some(i * 10);
        same_at_all_thread_counts(|| par_find_first_map(5000, pred));
        assert_eq!(par_find_first_map(5000, pred).map(|(i, _)| i), Some(780));
        assert_eq!(par_find_first_map(100, |_| None::<()>), None);
    }

    #[test]
    fn nested_calls_fall_back_and_complete() {
        let _guard = count_lock();
        set_threads(4);
        let outer = par_map(16, |i| par_map(50, move |j| i * j).iter().sum::<usize>());
        set_threads(0);
        let want: Vec<usize> = (0..16).map(|i| i * (0..50).sum::<usize>()).collect();
        assert_eq!(outer, want);
    }

    #[test]
    fn pool_survives_many_jobs() {
        let _guard = count_lock();
        set_threads(4);
        for round in 0..500 {
            let v = par_map(37, |i| i + round);
            assert_eq!(v[36], 36 + round);
        }
        set_threads(0);
    }

    #[test]
    fn concurrent_submitters_all_complete() {
        let _guard = count_lock();
        set_threads(4);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..6)
                .map(|k| {
                    scope.spawn(move || {
                        let v = par_map(2000, |i| i * k);
                        v.iter().sum::<usize>()
                    })
                })
                .collect();
            for (k, h) in handles.into_iter().enumerate() {
                let want = (0..2000).map(|i| i * k).sum::<usize>();
                assert_eq!(h.join().unwrap(), want);
            }
        });
        set_threads(0);
    }

    #[test]
    fn panics_propagate_after_completion() {
        let _guard = count_lock();
        set_threads(4);
        let hit = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map(100, |i| {
                hit.fetch_add(1, Ordering::Relaxed);
                if i == 31 {
                    panic!("boom");
                }
                i
            })
        }));
        set_threads(0);
        assert!(result.is_err(), "task panic must reach the caller");
        // The pool must remain usable afterwards.
        assert_eq!(par_map(10, |i| i)[9], 9);
    }

    #[test]
    fn threads_clamps_and_overrides() {
        let _guard = count_lock();
        set_threads(MAX_THREADS + 50);
        assert_eq!(threads(), MAX_THREADS);
        set_threads(2);
        assert_eq!(threads(), 2);
        set_threads(0);
        assert!(threads() >= 1);
    }

    #[test]
    fn non_send_free_types_move_correctly() {
        // Heap-owning results must land in the right slots without double
        // drops; run under the address of each element being distinct.
        same_at_all_thread_counts(|| par_map(300, |i| vec![i; i % 7]));
    }
}
