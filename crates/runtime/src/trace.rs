//! JSONL trace bundles: an optional self-describing header line followed
//! by one JSON object per completed round.
//!
//! Every field in a [`RoundRecord`] is a deterministic function of the
//! runtime's seed and configuration — wall-clock measurements live in
//! [`crate::runtime::RuntimeReport`] instead — so two runs with the same
//! seed produce **byte-identical** trace files. The determinism regression
//! test relies on this, and the counterfactual replay engine
//! ([`crate::replay`]) builds on it: a headered trace carries a
//! [`ReplayManifest`] with everything needed to re-run the recorded rounds
//! side-effect-free under an alternate repair policy.
//!
//! The authoritative schema reference — every field, the header layout,
//! the versioning rules and the determinism contract — is
//! `docs/TRACE_FORMAT.md` at the repository root.
//!
//! ## File layout (format v1)
//!
//! ```text
//! {"mdg_trace":"v1","version":1,"manifest":{...}}   <- header (optional)
//! {"round":0,"t_start_secs":0.0,...}                <- RoundRecord
//! {"round":1,...}
//! ```
//!
//! Headerless files (recorded before format v1 existed) still parse via
//! [`parse_trace`]; only replay requires the header, and rejects legacy
//! files with a clear error instead of guessing at the missing manifest.

use crate::runtime::RuntimeConfig;
use mdg_net::{Deployment, DeploymentConfig, Network};
use serde::{Deserialize, Serialize};
use std::io::Write;

/// Current trace bundle format version. Bump when the header layout or
/// the meaning of an existing [`RoundRecord`] field changes; adding new
/// optional header fields does not require a bump.
pub const TRACE_VERSION: u32 = 1;

/// Value of the header's `mdg_trace` marker field.
pub const TRACE_MAGIC: &str = "v1";

/// Per-round trace record (one JSONL line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round number, starting at 0.
    pub round: u64,
    /// Simulation time at the start of the round, seconds.
    pub t_start_secs: f64,
    /// Round duration, seconds.
    pub duration_secs: f64,
    /// Live sensors at collection time (after this round's fault deaths).
    pub n_alive: usize,
    /// Packets delivered to the collector.
    pub delivered: usize,
    /// Packets expected (one per live, covered sensor).
    pub expected: usize,
    /// Retransmissions performed this round.
    pub retries: u64,
    /// Upload attempts lost to the loss process.
    pub attempt_failures: u64,
    /// Packets abandoned after exhausting retries.
    pub drops: u64,
    /// Live sensors without single-hop coverage this round.
    pub orphans: usize,
    /// Cumulative orphaned live-sensor-seconds so far.
    pub orphan_secs_total: f64,
    /// Whether plan repair changed the plan before this round.
    pub repaired: bool,
    /// Stale stops removed by the repair.
    pub stops_removed: usize,
    /// Replacement stops spliced in by the repair.
    pub stops_added: usize,
    /// Whether the repair escalated to a full re-plan.
    pub full_replan: bool,
    /// Deterministic repair work measure (candidate/edge scans).
    pub repair_ops: u64,
    /// Tour length driven this round, meters.
    pub tour_length_m: f64,
}

/// How to rebuild the recorded run's network topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologyManifest {
    /// Seeded uniform deployment (what `mdg runtime` records): `n`
    /// sensors on a `side` × `side` field, sink at the center, generated
    /// from `seed`. Compact — the deployment is re-derived on load.
    Uniform { n: usize, side: f64, seed: u64 },
    /// Arbitrary deployment, embedded verbatim (library users with
    /// non-generated topologies).
    Explicit { deployment: Deployment },
}

impl TopologyManifest {
    /// Materializes the deployment this manifest describes.
    pub fn deployment(&self) -> Deployment {
        match self {
            TopologyManifest::Uniform { n, side, seed } => {
                DeploymentConfig::uniform(*n, *side).generate(*seed)
            }
            TopologyManifest::Explicit { deployment } => deployment.clone(),
        }
    }

    /// Number of sensors in the described topology.
    pub fn n_sensors(&self) -> usize {
        match self {
            TopologyManifest::Uniform { n, .. } => *n,
            TopologyManifest::Explicit { deployment } => deployment.n(),
        }
    }
}

/// Everything needed to reconstruct the recorded run: topology, radio
/// range, and the full [`RuntimeConfig`] (which embeds the fault seed —
/// the fault schedule is a pure function of `(config.faults, n)`).
///
/// The initial plan is **not** embedded: it is re-derived by running the
/// default SHDG planner over the reconstructed network, which is
/// deterministic. Replay self-check (original-policy replay must
/// reproduce the recorded trace byte-for-byte) catches any mismatch — a
/// trace recorded from a non-default plan fails self-check loudly rather
/// than silently replaying a different run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayManifest {
    /// The recorded run's topology.
    pub topology: TopologyManifest,
    /// Transmission range, meters.
    pub range: f64,
    /// The exact runtime configuration of the recorded run.
    pub config: RuntimeConfig,
}

impl ReplayManifest {
    /// Rebuilds the recorded run's network.
    pub fn network(&self) -> Network {
        Network::build(self.topology.deployment(), self.range)
    }
}

/// The bundle header: first line of a headered trace file.
///
/// The `mdg_trace` field doubles as the format marker — a line missing it
/// is not a header. `manifest` is optional so traces can stay
/// self-describing about their format version even when the recorder has
/// no replayable manifest to attach.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceHeader {
    /// Format marker; always [`TRACE_MAGIC`] when written by this crate.
    pub mdg_trace: String,
    /// Bundle format version ([`TRACE_VERSION`] when written here).
    pub version: u32,
    /// Reconstruction manifest; `None` = trace-only bundle (parseable,
    /// not replayable).
    pub manifest: Option<ReplayManifest>,
}

impl TraceHeader {
    /// A v1 header carrying `manifest`.
    pub fn new(manifest: ReplayManifest) -> Self {
        TraceHeader {
            mdg_trace: TRACE_MAGIC.to_string(),
            version: TRACE_VERSION,
            manifest: Some(manifest),
        }
    }
}

/// A parsed trace file: optional header plus the round records.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceBundle {
    /// The header, when the file had one (`None` = legacy headerless).
    pub header: Option<TraceHeader>,
    /// The per-round records, in round order.
    pub records: Vec<RoundRecord>,
}

/// Writes [`RoundRecord`]s as JSON Lines, optionally preceded by a
/// [`TraceHeader`] line.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    records: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Wraps `sink` without a header (legacy layout). Each record becomes
    /// one `\n`-terminated JSON line.
    pub fn new(sink: W) -> Self {
        TraceWriter { sink, records: 0 }
    }

    /// Wraps `sink` and writes `header` as the first line, making the
    /// file a self-describing bundle that [`parse_bundle`] (and replay)
    /// can consume.
    pub fn with_header(mut sink: W, header: &TraceHeader) -> std::io::Result<Self> {
        let line = serde_json::to_string(header)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        sink.write_all(line.as_bytes())?;
        sink.write_all(b"\n")?;
        Ok(TraceWriter { sink, records: 0 })
    }

    /// Appends one record.
    pub fn record(&mut self, rec: &RoundRecord) -> std::io::Result<()> {
        let line = serde_json::to_string(rec)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        self.sink.write_all(line.as_bytes())?;
        self.sink.write_all(b"\n")?;
        self.records += 1;
        Ok(())
    }

    /// Number of records written so far (the header line not included).
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Flushes and returns the underlying sink.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Whether `line` is a bundle header line (carries the `mdg_trace`
/// marker field). Deliberately shallow: version/manifest validity is
/// checked by [`parse_bundle`], not here.
fn is_header_line(line: &str) -> bool {
    serde_json::parse_value(line)
        .ok()
        .is_some_and(|v| v.get("mdg_trace").is_some())
}

/// Parses a JSONL trace back into records (inverse of [`TraceWriter`]).
///
/// Accepts both layouts: a leading header line, if present, is skipped —
/// use [`parse_bundle`] to keep it. A header anywhere but the first
/// non-empty line is an error.
pub fn parse_trace(text: &str) -> Result<Vec<RoundRecord>, String> {
    parse_bundle(text).map(|b| b.records)
}

/// Parses a JSONL trace file into a [`TraceBundle`]: the header (when
/// present and of a supported version) plus every round record.
///
/// Errors on: malformed lines, a header that is not the first non-empty
/// line, and a header whose `version` is newer than [`TRACE_VERSION`]
/// (records from a future format cannot be trusted to mean the same
/// thing).
pub fn parse_bundle(text: &str) -> Result<TraceBundle, String> {
    let mut header = None;
    let mut records = Vec::new();
    for (idx, line) in text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
    {
        if is_header_line(line) {
            if !records.is_empty() || header.is_some() {
                return Err(format!(
                    "line {}: bundle header must be the first line of the trace",
                    idx + 1
                ));
            }
            let h: TraceHeader = serde_json::from_str(line)
                .map_err(|e| format!("line {}: bad trace header: {e}", idx + 1))?;
            if h.version > TRACE_VERSION {
                return Err(format!(
                    "trace format v{} is newer than this binary supports (v{TRACE_VERSION}); \
                     upgrade mdg to read it",
                    h.version
                ));
            }
            header = Some(h);
        } else {
            let rec = serde_json::from_str(line)
                .map_err(|e| format!("line {}: bad trace line: {e}", idx + 1))?;
            records.push(rec);
        }
    }
    Ok(TraceBundle { header, records })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultConfig;

    fn sample(round: u64) -> RoundRecord {
        RoundRecord {
            round,
            t_start_secs: 12.5 * round as f64,
            duration_secs: 12.5,
            n_alive: 40,
            delivered: 39,
            expected: 40,
            retries: 3,
            attempt_failures: 4,
            drops: 1,
            orphans: 0,
            orphan_secs_total: 0.0,
            repaired: round == 1,
            stops_removed: 0,
            stops_added: 0,
            full_replan: false,
            repair_ops: 17,
            tour_length_m: 321.0,
        }
    }

    fn sample_header() -> TraceHeader {
        TraceHeader::new(ReplayManifest {
            topology: TopologyManifest::Uniform {
                n: 40,
                side: 200.0,
                seed: 7,
            },
            range: 30.0,
            config: RuntimeConfig {
                faults: FaultConfig {
                    seed: 7,
                    loss_rate: 0.1,
                    ..FaultConfig::default()
                },
                max_rounds: 5,
                ..RuntimeConfig::default()
            },
        })
    }

    #[test]
    fn round_trips_through_jsonl() {
        let mut w = TraceWriter::new(Vec::new());
        w.record(&sample(0)).unwrap();
        w.record(&sample(1)).unwrap();
        assert_eq!(w.records_written(), 2);
        let bytes = w.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        let back = parse_trace(&text).unwrap();
        assert_eq!(back, vec![sample(0), sample(1)]);
    }

    #[test]
    fn identical_records_serialize_identically() {
        let a = serde_json::to_string(&sample(3)).unwrap();
        let b = serde_json::to_string(&sample(3)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_trace("{not json}").is_err());
    }

    #[test]
    fn headered_bundle_round_trips() {
        let header = sample_header();
        let mut w = TraceWriter::with_header(Vec::new(), &header).unwrap();
        w.record(&sample(0)).unwrap();
        w.record(&sample(1)).unwrap();
        assert_eq!(w.records_written(), 2, "header line is not a record");
        let text = String::from_utf8(w.into_inner().unwrap()).unwrap();
        assert_eq!(text.lines().count(), 3);

        let bundle = parse_bundle(&text).unwrap();
        assert_eq!(bundle.header.as_ref(), Some(&header));
        assert_eq!(bundle.records, vec![sample(0), sample(1)]);

        // parse_trace on the same file skips the header transparently.
        assert_eq!(parse_trace(&text).unwrap(), bundle.records);
    }

    #[test]
    fn headerless_bundle_has_no_header() {
        let mut w = TraceWriter::new(Vec::new());
        w.record(&sample(0)).unwrap();
        let text = String::from_utf8(w.into_inner().unwrap()).unwrap();
        let bundle = parse_bundle(&text).unwrap();
        assert!(bundle.header.is_none());
        assert_eq!(bundle.records.len(), 1);
    }

    #[test]
    fn future_version_is_rejected() {
        let mut header = sample_header();
        header.version = TRACE_VERSION + 1;
        let w = TraceWriter::with_header(Vec::new(), &header).unwrap();
        let text = String::from_utf8(w.into_inner().unwrap()).unwrap();
        let err = parse_bundle(&text).unwrap_err();
        assert!(err.contains("newer than this binary"), "got: {err}");
    }

    #[test]
    fn misplaced_header_is_rejected() {
        let header_line = serde_json::to_string(&sample_header()).unwrap();
        let record_line = serde_json::to_string(&sample(0)).unwrap();
        let text = format!("{record_line}\n{header_line}\n");
        let err = parse_bundle(&text).unwrap_err();
        assert!(err.contains("first line"), "got: {err}");
    }

    #[test]
    fn uniform_manifest_rebuilds_the_same_network() {
        let m = sample_header().manifest.unwrap();
        let a = m.network();
        let b = m.network();
        assert_eq!(a.deployment.sensors, b.deployment.sensors);
        assert_eq!(a.n_sensors(), 40);
        assert_eq!(a.range, 30.0);
    }

    #[test]
    fn explicit_manifest_embeds_the_deployment() {
        let dep = DeploymentConfig::uniform(12, 100.0).generate(3);
        let m = ReplayManifest {
            topology: TopologyManifest::Explicit {
                deployment: dep.clone(),
            },
            range: 25.0,
            config: RuntimeConfig::default(),
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: ReplayManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.topology.deployment().sensors, dep.sensors);
        assert_eq!(back.topology.n_sensors(), 12);
    }
}
