//! JSONL event traces: one JSON object per completed round.
//!
//! Every field in a [`RoundRecord`] is a deterministic function of the
//! runtime's seed and configuration — wall-clock measurements live in
//! [`crate::runtime::RuntimeReport`] instead — so two runs with the same
//! seed produce **byte-identical** trace files. The determinism regression
//! test relies on this.

use serde::{Deserialize, Serialize};
use std::io::Write;

/// Per-round trace record (one JSONL line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round number, starting at 0.
    pub round: u64,
    /// Simulation time at the start of the round, seconds.
    pub t_start_secs: f64,
    /// Round duration, seconds.
    pub duration_secs: f64,
    /// Live sensors at collection time (after this round's fault deaths).
    pub n_alive: usize,
    /// Packets delivered to the collector.
    pub delivered: usize,
    /// Packets expected (one per live, covered sensor).
    pub expected: usize,
    /// Retransmissions performed this round.
    pub retries: u64,
    /// Upload attempts lost to the loss process.
    pub attempt_failures: u64,
    /// Packets abandoned after exhausting retries.
    pub drops: u64,
    /// Live sensors without single-hop coverage this round.
    pub orphans: usize,
    /// Cumulative orphaned live-sensor-seconds so far.
    pub orphan_secs_total: f64,
    /// Whether plan repair changed the plan before this round.
    pub repaired: bool,
    /// Stale stops removed by the repair.
    pub stops_removed: usize,
    /// Replacement stops spliced in by the repair.
    pub stops_added: usize,
    /// Whether the repair escalated to a full re-plan.
    pub full_replan: bool,
    /// Deterministic repair work measure (candidate/edge scans).
    pub repair_ops: u64,
    /// Tour length driven this round, meters.
    pub tour_length_m: f64,
}

/// Writes [`RoundRecord`]s as JSON Lines.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    records: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Wraps `sink`. Each record becomes one `\n`-terminated JSON line.
    pub fn new(sink: W) -> Self {
        TraceWriter { sink, records: 0 }
    }

    /// Appends one record.
    pub fn record(&mut self, rec: &RoundRecord) -> std::io::Result<()> {
        let line = serde_json::to_string(rec)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        self.sink.write_all(line.as_bytes())?;
        self.sink.write_all(b"\n")?;
        self.records += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Flushes and returns the underlying sink.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Parses a JSONL trace back into records (inverse of [`TraceWriter`]).
pub fn parse_trace(text: &str) -> Result<Vec<RoundRecord>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).map_err(|e| format!("bad trace line: {e}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(round: u64) -> RoundRecord {
        RoundRecord {
            round,
            t_start_secs: 12.5 * round as f64,
            duration_secs: 12.5,
            n_alive: 40,
            delivered: 39,
            expected: 40,
            retries: 3,
            attempt_failures: 4,
            drops: 1,
            orphans: 0,
            orphan_secs_total: 0.0,
            repaired: round == 1,
            stops_removed: 0,
            stops_added: 0,
            full_replan: false,
            repair_ops: 17,
            tour_length_m: 321.0,
        }
    }

    #[test]
    fn round_trips_through_jsonl() {
        let mut w = TraceWriter::new(Vec::new());
        w.record(&sample(0)).unwrap();
        w.record(&sample(1)).unwrap();
        assert_eq!(w.records_written(), 2);
        let bytes = w.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        let back = parse_trace(&text).unwrap();
        assert_eq!(back, vec![sample(0), sample(1)]);
    }

    #[test]
    fn identical_records_serialize_identically() {
        let a = serde_json::to_string(&sample(3)).unwrap();
        let b = serde_json::to_string(&sample(3)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_trace("{not json}").is_err());
    }
}
