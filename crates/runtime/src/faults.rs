//! Seeded, deterministic fault plans.
//!
//! A [`FaultConfig`] plus a seed fully determines every fault the runtime
//! injects: which nodes die and when, which upload attempts are lost, and
//! when the collector's drive degrades. Replaying the same seed replays
//! the same faults bit-for-bit — the foundation of the determinism
//! regression tests.
//!
//! Per-round randomness is drawn from a PRNG reseeded from
//! `(seed, round)`, so a round's fault draws do not depend on how many
//! draws earlier rounds consumed (repairing the plan changes the number
//! of uploads per round; it must not change later rounds' faults).

use mdg_sim::{RoundHooks, SimEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A window of degraded collector speed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Slowdown {
    /// Simulation time when the degradation starts, seconds.
    pub start_secs: f64,
    /// How long it lasts, seconds (`f64::INFINITY` = permanent).
    pub duration_secs: f64,
    /// Speed multiplier while active (`0 < factor ≤ 1`; small values
    /// model a near-stall).
    pub factor: f64,
}

/// Configuration of the injected faults. All faults are derived
/// deterministically from `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed for every fault draw.
    pub seed: u64,
    /// Fraction of sensors that die within the death window.
    pub death_rate: f64,
    /// Deaths are scheduled uniformly in `[0, death_horizon_secs)`.
    pub death_horizon_secs: f64,
    /// Per-attempt probability that an upload is lost.
    pub loss_rate: f64,
    /// Retries allowed after a failed upload attempt.
    pub max_retries: u32,
    /// Base backoff before a retry; retry `k` waits `backoff · 2^(k-1)`
    /// (capped at 64× base).
    pub backoff_secs: f64,
    /// Optional collector speed degradation window.
    pub slowdown: Option<Slowdown>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            death_rate: 0.0,
            death_horizon_secs: 0.0,
            loss_rate: 0.0,
            max_retries: 3,
            backoff_secs: 0.5,
            slowdown: None,
        }
    }
}

impl FaultConfig {
    /// Validates parameter sanity.
    ///
    /// # Panics
    /// Panics on rates outside `[0, 1]`, negative times, or a
    /// non-positive slowdown factor.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.death_rate),
            "death rate must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.loss_rate),
            "loss rate must be in [0, 1]"
        );
        assert!(self.death_horizon_secs >= 0.0, "death horizon must be ≥ 0");
        assert!(self.backoff_secs >= 0.0, "backoff must be ≥ 0");
        if let Some(s) = self.slowdown {
            assert!(
                s.start_secs >= 0.0 && s.duration_secs >= 0.0,
                "slowdown window"
            );
            assert!(
                s.factor > 0.0 && s.factor <= 1.0,
                "slowdown factor must be in (0, 1]"
            );
        }
    }

    /// Materializes the fault plan for `n` sensors: victims and death
    /// times are drawn once, here, from `seed`.
    pub fn plan(&self, n: usize) -> FaultPlan {
        self.validate();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n_deaths = ((self.death_rate * n as f64).round() as usize).min(n);
        // Partial Fisher–Yates: the first `n_deaths` entries are a uniform
        // sample without replacement.
        let mut ids: Vec<usize> = (0..n).collect();
        for i in 0..n_deaths {
            let j = rng.gen_range(i..n);
            ids.swap(i, j);
        }
        let mut death_time = vec![None; n];
        for &victim in &ids[..n_deaths] {
            let t = if self.death_horizon_secs > 0.0 {
                rng.gen_range(0.0..self.death_horizon_secs)
            } else {
                0.0
            };
            death_time[victim] = Some(t);
        }
        FaultPlan {
            death_time,
            cfg: *self,
        }
    }
}

/// A fully materialized fault schedule for one run.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Absolute death time per sensor (`None` = survives).
    pub death_time: Vec<Option<f64>>,
    cfg: FaultConfig,
}

impl FaultPlan {
    /// The configuration this plan was drawn from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Sensors whose scheduled death time has passed by `t`.
    pub fn due_deaths(&self, t: f64) -> impl Iterator<Item = usize> + '_ {
        self.death_time
            .iter()
            .enumerate()
            .filter(move |(_, dt)| matches!(dt, Some(d) if *d <= t))
            .map(|(i, _)| i)
    }

    /// Collector speed factor at simulation time `t`.
    pub fn speed_factor_at(&self, t: f64) -> f64 {
        match self.cfg.slowdown {
            Some(s) if t >= s.start_secs && t < s.start_secs + s.duration_secs => s.factor,
            _ => 1.0,
        }
    }

    /// Builds the per-round fault hooks for round `round` starting at
    /// simulation time `round_start_secs`. The hooks' PRNG is derived
    /// from `(seed, round)` only.
    pub fn round_hooks(&self, round: u64, round_start_secs: f64) -> RoundFaults<'_> {
        RoundFaults {
            plan: self,
            rng: StdRng::seed_from_u64(
                self.cfg
                    .seed
                    .wrapping_add(round.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ),
            speed: self.speed_factor_at(round_start_secs),
            counters: FaultCounters::default(),
            events: Vec::new(),
            record_events: false,
        }
    }
}

/// Per-round fault tallies, accumulated by [`RoundFaults::observe`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Packets delivered to the collector.
    pub delivered: u64,
    /// Upload attempts lost to the loss process.
    pub attempt_failures: u64,
    /// Retransmissions performed (attempts beyond each packet's first).
    pub retries: u64,
    /// Packets abandoned after exhausting retries.
    pub drops: u64,
    /// Packets lost mid-relay to a dead hop.
    pub relay_losses: u64,
}

/// [`RoundHooks`] implementation injecting one round's faults and
/// tallying what happened.
#[derive(Debug)]
pub struct RoundFaults<'a> {
    plan: &'a FaultPlan,
    rng: StdRng,
    speed: f64,
    /// Tallies of this round's fault outcomes.
    pub counters: FaultCounters,
    /// Observed events (only populated when `record_events` is set).
    pub events: Vec<SimEvent>,
    /// Whether to keep the full event list (for event-level tracing).
    pub record_events: bool,
}

impl RoundHooks for RoundFaults<'_> {
    fn speed_factor(&mut self, _leg: usize) -> f64 {
        self.speed
    }

    fn upload_succeeds(&mut self, _s: usize, _u: usize, _st: usize, _attempt: u32) -> bool {
        let p = self.plan.cfg.loss_rate;
        p <= 0.0 || !self.rng.gen_bool(p)
    }

    fn max_retries(&mut self) -> u32 {
        self.plan.cfg.max_retries
    }

    fn retry_backoff_secs(&mut self, attempt: u32) -> f64 {
        let exp = (attempt.saturating_sub(1)).min(6);
        self.plan.cfg.backoff_secs * f64::from(1u32 << exp)
    }

    fn observe(&mut self, event: &SimEvent) {
        match *event {
            SimEvent::UploadDelivered { attempts, .. } => {
                self.counters.delivered += 1;
                self.counters.retries += u64::from(attempts.saturating_sub(1));
            }
            SimEvent::UploadAttemptFailed { .. } => self.counters.attempt_failures += 1,
            SimEvent::UploadDropped { attempts, .. } => {
                self.counters.drops += 1;
                self.counters.retries += u64::from(attempts.saturating_sub(1));
            }
            SimEvent::PacketLostInRelay { .. } => self.counters.relay_losses += 1,
            SimEvent::CollectorArrived { .. } | SimEvent::CollectorReturned { .. } => {}
        }
        if self.record_events {
            self.events.push(*event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_is_deterministic() {
        let cfg = FaultConfig {
            seed: 7,
            death_rate: 0.3,
            death_horizon_secs: 1000.0,
            ..FaultConfig::default()
        };
        let a = cfg.plan(50);
        let b = cfg.plan(50);
        assert_eq!(a.death_time, b.death_time);
        assert_eq!(a.death_time.iter().filter(|d| d.is_some()).count(), 15);
        for d in a.death_time.iter().flatten() {
            assert!((0.0..1000.0).contains(d));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let base = FaultConfig {
            death_rate: 0.5,
            death_horizon_secs: 100.0,
            ..FaultConfig::default()
        };
        let a = FaultConfig { seed: 1, ..base }.plan(40);
        let b = FaultConfig { seed: 2, ..base }.plan(40);
        assert_ne!(a.death_time, b.death_time);
    }

    #[test]
    fn due_deaths_respects_time() {
        let mut plan = FaultConfig::default().plan(4);
        plan.death_time = vec![Some(10.0), None, Some(20.0), None];
        let at_15: Vec<usize> = plan.due_deaths(15.0).collect();
        assert_eq!(at_15, vec![0]);
        let at_25: Vec<usize> = plan.due_deaths(25.0).collect();
        assert_eq!(at_25, vec![0, 2]);
    }

    #[test]
    fn slowdown_window() {
        let cfg = FaultConfig {
            slowdown: Some(Slowdown {
                start_secs: 100.0,
                duration_secs: 50.0,
                factor: 0.25,
            }),
            ..FaultConfig::default()
        };
        let plan = cfg.plan(1);
        assert_eq!(plan.speed_factor_at(99.0), 1.0);
        assert_eq!(plan.speed_factor_at(100.0), 0.25);
        assert_eq!(plan.speed_factor_at(149.9), 0.25);
        assert_eq!(plan.speed_factor_at(150.0), 1.0);
    }

    #[test]
    fn round_hooks_reseed_per_round() {
        let cfg = FaultConfig {
            seed: 3,
            loss_rate: 0.5,
            ..FaultConfig::default()
        };
        let plan = cfg.plan(10);
        let draw = |round: u64, k: usize| {
            let mut h = plan.round_hooks(round, 0.0);
            (0..k)
                .map(|_| h.upload_succeeds(0, 0, 0, 1))
                .collect::<Vec<bool>>()
        };
        // Same round replays the same draws regardless of history.
        assert_eq!(draw(5, 20), draw(5, 20));
        // Different rounds draw independently.
        assert_ne!(draw(5, 20), draw(6, 20));
    }

    #[test]
    fn exponential_backoff_is_capped() {
        let cfg = FaultConfig {
            backoff_secs: 1.0,
            ..FaultConfig::default()
        };
        let plan = cfg.plan(1);
        let mut h = plan.round_hooks(0, 0.0);
        assert_eq!(h.retry_backoff_secs(1), 1.0);
        assert_eq!(h.retry_backoff_secs(2), 2.0);
        assert_eq!(h.retry_backoff_secs(4), 8.0);
        assert_eq!(h.retry_backoff_secs(100), 64.0, "capped at 64× base");
    }

    #[test]
    #[should_panic(expected = "death rate")]
    fn invalid_rate_rejected() {
        FaultConfig {
            death_rate: 1.5,
            ..FaultConfig::default()
        }
        .plan(10);
    }

    #[test]
    fn zero_loss_never_fails() {
        let plan = FaultConfig::default().plan(5);
        let mut h = plan.round_hooks(1, 0.0);
        assert!((0..100).all(|_| h.upload_succeeds(0, 0, 0, 1)));
    }
}
