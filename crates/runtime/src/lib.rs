//! # mdg-runtime — online re-planning and fault-tolerant gathering
//!
//! The paper's SHDG pipeline (`mdg-core`) plans **offline**: it assumes
//! the deployment it was given stays intact while the mobile collector
//! drives round after round. Real networks do not cooperate — sensors
//! fail, uploads are lost, and collectors slow down. This crate closes
//! the loop: an event-driven runtime that watches each round's outcome
//! and incrementally repairs the gathering plan online.
//!
//! The pieces:
//!
//! * [`faults`] — seeded, deterministic fault plans: node deaths at
//!   scheduled times, per-upload packet loss with bounded
//!   retry/backoff, and collector speed degradation, injected through
//!   `mdg-sim`'s [`mdg_sim::RoundHooks`].
//! * [`state`] — the runtime's evolving view of the network: liveness,
//!   residual energy, and orphaned-coverage accounting.
//! * [`repair`] — the incremental re-planner: purge the dead, drop stale
//!   stops, adopt orphans into surviving stops, re-cover the rest via
//!   restricted greedy + cheapest-insertion splicing + 2-opt touch-up,
//!   escalating to a full re-plan when too much of the tour is lost.
//!   Invariant: every live sensor stays single-hop covered.
//! * [`trace`] — self-describing JSONL trace bundles (versioned header
//!   with a replay manifest, then one record per round) whose every
//!   field is deterministic in `(seed, config)`: same seed,
//!   byte-identical trace. Format spec: `docs/TRACE_FORMAT.md`.
//! * [`runtime`] — the control loop tying it together, with
//!   [`RepairPolicy::Static`] (the paper's offline plan, driven
//!   unchanged) as the baseline against [`RepairPolicy::Repair`].
//! * [`replay`] — counterfactual replay over recorded bundles: re-run
//!   the rounds side-effect-free under alternate repair policies, emit
//!   [`replay::DivergenceRecord`]s, and sweep policy knobs — with a
//!   self-check that the original policy reproduces the recording
//!   byte-for-byte (`INV-CF-DETERMINISTIC`).
//!
//! ```
//! use mdg_core::ShdgPlanner;
//! use mdg_net::{DeploymentConfig, Network};
//! use mdg_runtime::{FaultConfig, GatheringRuntime, RuntimeConfig};
//!
//! let net = Network::build(DeploymentConfig::uniform(60, 200.0).generate(7), 30.0);
//! let plan = ShdgPlanner::new().plan(&net).unwrap();
//! let cfg = RuntimeConfig {
//!     faults: FaultConfig {
//!         seed: 7,
//!         death_rate: 0.1,
//!         death_horizon_secs: 2_000.0,
//!         loss_rate: 0.05,
//!         ..FaultConfig::default()
//!     },
//!     max_rounds: 10,
//!     ..RuntimeConfig::default()
//! };
//! let report = GatheringRuntime::new(net, plan, cfg).run();
//! assert!(report.delivery_ratio() > 0.9);
//! ```

pub mod faults;
pub mod repair;
pub mod replay;
pub mod runtime;
pub mod state;
pub mod trace;

pub use faults::{FaultConfig, FaultCounters, FaultPlan, RoundFaults, Slowdown};
pub use repair::{repair_plan, RepairConfig, RepairReport};
pub use replay::{
    CounterfactualResult, DivergenceRecord, PolicyOverrides, ReplayEngine, ReplayError,
    ReplayOutcome, SelfCheckReport, SweepSpec,
};
pub use runtime::{GatheringRuntime, RepairPolicy, RuntimeConfig, RuntimeReport};
pub use state::{DeathCause, NetworkState};
pub use trace::{
    parse_bundle, parse_trace, ReplayManifest, RoundRecord, TopologyManifest, TraceBundle,
    TraceHeader, TraceWriter, TRACE_VERSION,
};
