//! Counterfactual replay: re-run a recorded trace bundle side-effect-free
//! under an alternate repair policy and report exactly where and how the
//! outcome diverges.
//!
//! Modeled on franken_node's bd-2fa counterfactual-replay contract. The
//! hard invariant is `INV-CF-DETERMINISTIC`: same bundle + same policy
//! inputs ⇒ bit-identical divergence output, at any worker-thread count.
//! It holds because the whole pipeline is pure computation over the
//! bundle — the engine rebuilds the network and initial plan from the
//! manifest ([`crate::trace::ReplayManifest`]), replays the rounds through
//! the same [`GatheringRuntime`] that recorded them (every trace-visible
//! quantity is a function of `(seed, config)`), and fans parameter sweeps
//! out on `mdg-par`'s order-preserving `par_map`.
//!
//! The second contract is the **self-check**: replaying the *original*
//! policy must reproduce the recorded trace byte-for-byte
//! ([`ReplayEngine::self_check`]). CI runs it on a freshly recorded
//! trace; a non-empty report means the bundle, the runtime, or the
//! planner drifted — exactly the silent breakage the check exists to
//! catch.
//!
//! What counterfactuals can vary (the *policy*), and what they cannot
//! (the *world*): [`PolicyOverrides`] changes how the collector reacts —
//! retry budget, backoff curve, repair-vs-replan escalation, static-vs-
//! repair drop policy. The fault plan's node deaths are drawn up front
//! from the fault seed and are identical in every counterfactual. The
//! per-attempt loss process keeps the same seed and per-round PRNG
//! stream; a different retry budget consumes a different number of draws,
//! which is the correct counterfactual semantics (same stochastic law,
//! same seed — not the same per-packet luck).
//!
//! ```
//! use mdg_core::ShdgPlanner;
//! use mdg_net::{DeploymentConfig, Network};
//! use mdg_runtime::replay::{PolicyOverrides, ReplayEngine};
//! use mdg_runtime::{
//!     FaultConfig, GatheringRuntime, ReplayManifest, RuntimeConfig, TopologyManifest,
//!     TraceHeader, TraceWriter,
//! };
//!
//! // Record a lossy run into a headered bundle...
//! let manifest = ReplayManifest {
//!     topology: TopologyManifest::Uniform { n: 50, side: 200.0, seed: 3 },
//!     range: 30.0,
//!     config: RuntimeConfig {
//!         faults: FaultConfig { seed: 3, loss_rate: 0.3, ..FaultConfig::default() },
//!         max_rounds: 4,
//!         ..RuntimeConfig::default()
//!     },
//! };
//! let net = manifest.network();
//! let plan = ShdgPlanner::new().plan(&net).unwrap();
//! let mut tw = TraceWriter::with_header(Vec::new(), &TraceHeader::new(manifest)).unwrap();
//! GatheringRuntime::new(net, plan, mdg_runtime::RuntimeConfig {
//!     faults: FaultConfig { seed: 3, loss_rate: 0.3, ..FaultConfig::default() },
//!     max_rounds: 4,
//!     ..RuntimeConfig::default()
//! }).run_traced(&mut tw).unwrap();
//! let text = String::from_utf8(tw.into_inner().unwrap()).unwrap();
//!
//! // ...then ask: what if we had no retry budget at all?
//! let bundle = mdg_runtime::parse_bundle(&text).unwrap();
//! let engine = ReplayEngine::from_bundle(&bundle).unwrap();
//! assert!(engine.self_check().ok(), "original policy must reproduce the trace");
//! let zero_retries = PolicyOverrides { max_retries: Some(0), ..PolicyOverrides::default() };
//! let result = engine.replay(&zero_retries);
//! assert!(result.counterfactual.drops >= result.original.drops);
//! ```

use crate::runtime::{GatheringRuntime, RepairPolicy, RuntimeConfig};
use crate::trace::{ReplayManifest, RoundRecord, TraceBundle, TraceWriter, TRACE_VERSION};
use mdg_core::{GatheringPlan, ShdgPlanner};
use mdg_net::Network;
use serde::{Deserialize, Serialize};

/// Upper bound on values per swept knob (mirrors bd-2fa's
/// `ParameterSweep` cap): a sweep is a bounded evaluation, not an
/// unbounded search.
pub const MAX_SWEEP_VALUES: usize = 20;

/// Why a bundle cannot be replayed (or a sweep cannot be built).
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The trace has no bundle header: it was recorded before format v1.
    MissingHeader,
    /// The header carries no [`ReplayManifest`].
    MissingManifest,
    /// The manifest's topology/config could not be turned into a plan.
    Plan(String),
    /// Unknown sweep knob name.
    BadKnob(String),
    /// Malformed sweep value specification.
    BadSweep(String),
    /// More than [`MAX_SWEEP_VALUES`] values requested.
    TooManyValues(usize),
    /// An override value is out of its knob's domain.
    BadValue(String),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::MissingHeader => write!(
                f,
                "trace has no bundle header (recorded before trace format v{TRACE_VERSION}); \
                 re-record it with a current `mdg runtime --trace` to get a replayable bundle"
            ),
            ReplayError::MissingManifest => write!(
                f,
                "trace header carries no replay manifest; the recorder did not embed the \
                 topology/config needed to reconstruct the run"
            ),
            ReplayError::Plan(e) => write!(f, "cannot rebuild the recorded run's plan: {e}"),
            ReplayError::BadKnob(k) => write!(
                f,
                "unknown sweep knob `{k}` (expected retry_budget, backoff_secs, \
                 replan_threshold or improve_passes)"
            ),
            ReplayError::BadSweep(s) => write!(
                f,
                "bad sweep spec `{s}` (expected KNOB=LO..HI or KNOB=V1,V2,...)"
            ),
            ReplayError::TooManyValues(n) => write!(
                f,
                "sweep asks for {n} values; the bound is {MAX_SWEEP_VALUES} per knob"
            ),
            ReplayError::BadValue(e) => write!(f, "bad policy value: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// The counterfactual policy: every knob is optional, `None` = keep the
/// recorded run's value. An all-`None` override replays the original
/// policy (which is what [`ReplayEngine::self_check`] does).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PolicyOverrides {
    /// Reaction policy (`Static` = never repair, dropping orphans'
    /// data; `Repair` = incremental repair every round).
    pub policy: Option<RepairPolicy>,
    /// Retry budget after a failed upload attempt.
    pub max_retries: Option<u32>,
    /// Base backoff before a retry, seconds (the curve stays
    /// exponential, capped at 64× base).
    pub backoff_secs: Option<f64>,
    /// Stale-stop fraction at which repair escalates to a full re-plan.
    pub full_replan_stop_fraction: Option<f64>,
    /// Local-search passes in the post-splice tour touch-up.
    pub improve_passes: Option<usize>,
}

impl PolicyOverrides {
    /// Whether every knob keeps its recorded value.
    pub fn is_noop(&self) -> bool {
        *self == PolicyOverrides::default()
    }

    /// The recorded config with these overrides applied. Only policy
    /// knobs change; the world (topology, faults, sim parameters) is
    /// untouched by construction.
    pub fn apply(&self, base: &RuntimeConfig) -> RuntimeConfig {
        let mut cfg = *base;
        if let Some(p) = self.policy {
            cfg.policy = p;
        }
        if let Some(r) = self.max_retries {
            cfg.faults.max_retries = r;
        }
        if let Some(b) = self.backoff_secs {
            cfg.faults.backoff_secs = b;
        }
        if let Some(t) = self.full_replan_stop_fraction {
            cfg.repair.full_replan_stop_fraction = t;
        }
        if let Some(p) = self.improve_passes {
            cfg.repair.improve_passes = p;
        }
        cfg
    }

    /// Sets a numeric knob by its sweep name. Knobs: `retry_budget`,
    /// `backoff_secs`, `replan_threshold`, `improve_passes`.
    pub fn set(&mut self, knob: &str, value: f64) -> Result<(), ReplayError> {
        let non_negative_int = |v: f64, knob: &str| -> Result<u64, ReplayError> {
            if v < 0.0 || v.fract() != 0.0 || !v.is_finite() {
                return Err(ReplayError::BadValue(format!(
                    "{knob} wants a non-negative integer, got {v}"
                )));
            }
            Ok(v as u64)
        };
        match knob {
            "retry_budget" => {
                let v = non_negative_int(value, knob)?;
                if v > u32::MAX as u64 {
                    return Err(ReplayError::BadValue(format!(
                        "retry_budget {v} exceeds u32::MAX"
                    )));
                }
                self.max_retries = Some(v as u32);
            }
            "backoff_secs" => {
                if !(value.is_finite() && value >= 0.0) {
                    return Err(ReplayError::BadValue(format!(
                        "backoff_secs must be a finite non-negative number, got {value}"
                    )));
                }
                self.backoff_secs = Some(value);
            }
            "replan_threshold" => {
                if !(value.is_finite() && value >= 0.0) {
                    return Err(ReplayError::BadValue(format!(
                        "replan_threshold must be a finite non-negative fraction, got {value}"
                    )));
                }
                self.full_replan_stop_fraction = Some(value);
            }
            "improve_passes" => {
                self.improve_passes = Some(non_negative_int(value, knob)? as usize);
            }
            other => return Err(ReplayError::BadKnob(other.to_string())),
        }
        Ok(())
    }

    /// Human-readable summary of the overridden knobs (`"(original)"`
    /// when none are).
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if let Some(p) = self.policy {
            parts.push(format!("policy={p:?}"));
        }
        if let Some(r) = self.max_retries {
            parts.push(format!("retry_budget={r}"));
        }
        if let Some(b) = self.backoff_secs {
            parts.push(format!("backoff_secs={b}"));
        }
        if let Some(t) = self.full_replan_stop_fraction {
            parts.push(format!("replan_threshold={t}"));
        }
        if let Some(p) = self.improve_passes {
            parts.push(format!("improve_passes={p}"));
        }
        if parts.is_empty() {
            "(original)".to_string()
        } else {
            parts.join(",")
        }
    }
}

/// What one policy made of one round, as a compact decision label:
/// `hold` / `repair(-r+a)` / `full_replan(+a)`, with `,drop:{k}` appended
/// when packets were abandoned. Deterministic function of the record.
fn decision_of(r: &RoundRecord) -> String {
    let mut s = if r.full_replan {
        format!("full_replan(+{})", r.stops_added)
    } else if r.repaired {
        format!("repair(-{}+{})", r.stops_removed, r.stops_added)
    } else {
        "hold".to_string()
    };
    if r.drops > 0 {
        s.push_str(&format!(",drop:{}", r.drops));
    }
    s
}

/// One divergent round: what each policy decided and the outcome deltas
/// (counterfactual − original). Emitted as JSONL by `mdg replay`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DivergenceRecord {
    /// Round number.
    pub round: u64,
    /// The recorded run's decision label (`"(absent)"` when the
    /// counterfactual ran longer than the recording).
    pub original_decision: String,
    /// The counterfactual's decision label (`"(absent)"` when it ended
    /// earlier).
    pub counterfactual_decision: String,
    /// Tour length delta, meters.
    pub d_tour_length_m: f64,
    /// Delivered-packets delta.
    pub d_delivered: i64,
    /// Dropped-packets delta.
    pub d_drops: i64,
    /// Retransmissions delta.
    pub d_retries: i64,
    /// Cumulative orphaned live-sensor-seconds delta.
    pub d_orphan_secs: f64,
    /// Deterministic repair-work delta.
    pub d_repair_ops: i64,
}

/// Aggregate outcome of one replayed policy, summed over its rounds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ReplayOutcome {
    /// Rounds executed.
    pub rounds: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Packets expected.
    pub expected: u64,
    /// Packets abandoned after exhausting retries.
    pub drops: u64,
    /// Retransmissions performed.
    pub retries: u64,
    /// Rounds in which repair changed the plan.
    pub repairs: u64,
    /// Repairs that escalated to a full re-plan.
    pub full_replans: u64,
    /// Final cumulative orphaned live-sensor-seconds.
    pub orphan_secs: f64,
    /// Deterministic repair work.
    pub repair_ops: u64,
    /// Tour length after the last round, meters.
    pub final_tour_length_m: f64,
}

impl ReplayOutcome {
    /// Sums `records` into an outcome.
    pub fn of(records: &[RoundRecord]) -> Self {
        let mut o = ReplayOutcome::default();
        for r in records {
            o.rounds += 1;
            o.delivered += r.delivered as u64;
            o.expected += r.expected as u64;
            o.drops += r.drops;
            o.retries += r.retries;
            o.repairs += u64::from(r.repaired);
            o.full_replans += u64::from(r.full_replan);
            o.repair_ops += r.repair_ops;
        }
        if let Some(last) = records.last() {
            o.orphan_secs = last.orphan_secs_total;
            o.final_tour_length_m = last.tour_length_m;
        }
        o
    }

    /// Delivery ratio (1 when nothing was expected).
    pub fn delivery_ratio(&self) -> f64 {
        if self.expected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.expected as f64
        }
    }
}

/// The full outcome of one counterfactual replay.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterfactualResult {
    /// Which knobs were overridden ([`PolicyOverrides::describe`]).
    pub overrides: String,
    /// The recorded run, summarized.
    pub original: ReplayOutcome,
    /// The counterfactual run, summarized.
    pub counterfactual: ReplayOutcome,
    /// Every divergent round, in round order.
    pub divergences: Vec<DivergenceRecord>,
}

/// Result of [`ReplayEngine::self_check`]: original-policy replay vs the
/// recorded trace, compared round-by-round on canonical JSON bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct SelfCheckReport {
    /// Rounds in the recorded trace.
    pub rounds_recorded: usize,
    /// Rounds the replay produced.
    pub rounds_replayed: usize,
    /// Rounds whose canonical JSON differs (also set when the round
    /// counts differ).
    pub divergent_rounds: Vec<u64>,
    /// The first differing pair, `(recorded_line, replayed_line)`, for
    /// diagnostics.
    pub first_diff: Option<(String, String)>,
}

impl SelfCheckReport {
    /// Whether the replay reproduced the recording exactly.
    pub fn ok(&self) -> bool {
        self.rounds_recorded == self.rounds_replayed && self.divergent_rounds.is_empty()
    }
}

/// One point of a parameter sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The swept knob's name.
    pub knob: String,
    /// The value this point ran at.
    pub value: f64,
    /// The counterfactual replay at that value.
    pub result: CounterfactualResult,
}

/// A divergence tagged with its sweep coordinates — the JSONL line format
/// of `mdg replay --sweep --out`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepDivergenceRecord {
    /// The swept knob's name.
    pub knob: String,
    /// The knob value whose replay produced this divergence.
    pub value: f64,
    /// The divergence itself.
    pub divergence: DivergenceRecord,
}

/// A bounded numeric parameter sweep: one knob, ≤ [`MAX_SWEEP_VALUES`]
/// values (mirrors bd-2fa's `ParameterSweep` mode).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Knob name ([`PolicyOverrides::set`] names).
    pub knob: String,
    /// Values to replay, in order.
    pub values: Vec<f64>,
}

impl SweepSpec {
    /// Builds a spec, validating the knob name and the value bound.
    pub fn new(knob: &str, values: Vec<f64>) -> Result<Self, ReplayError> {
        // Validate the knob name (and each value's domain) up front so a
        // bad sweep fails before any replay work starts.
        if values.is_empty() {
            return Err(ReplayError::BadSweep(format!("{knob}= (no values)")));
        }
        if values.len() > MAX_SWEEP_VALUES {
            return Err(ReplayError::TooManyValues(values.len()));
        }
        for &v in &values {
            PolicyOverrides::default().set(knob, v)?;
        }
        Ok(SweepSpec {
            knob: knob.to_string(),
            values,
        })
    }

    /// Parses a CLI spec: `KNOB=LO..HI` (inclusive integer range) or
    /// `KNOB=V1,V2,...` (explicit list).
    pub fn parse(spec: &str) -> Result<Self, ReplayError> {
        let (knob, rest) = spec
            .split_once('=')
            .ok_or_else(|| ReplayError::BadSweep(spec.to_string()))?;
        let values: Vec<f64> = if let Some((lo, hi)) = rest.split_once("..") {
            let lo: i64 = lo
                .trim()
                .parse()
                .map_err(|_| ReplayError::BadSweep(spec.to_string()))?;
            let hi: i64 = hi
                .trim()
                .parse()
                .map_err(|_| ReplayError::BadSweep(spec.to_string()))?;
            if hi < lo {
                return Err(ReplayError::BadSweep(spec.to_string()));
            }
            // Guard the subtraction: the bound check below would catch it
            // anyway, but not before a capacity overflow on i64::MIN..MAX.
            if (hi - lo) as u64 >= MAX_SWEEP_VALUES as u64 * 2 {
                return Err(ReplayError::TooManyValues((hi - lo + 1) as usize));
            }
            (lo..=hi).map(|v| v as f64).collect()
        } else {
            rest.split(',')
                .map(|v| {
                    v.trim()
                        .parse()
                        .map_err(|_| ReplayError::BadSweep(spec.to_string()))
                })
                .collect::<Result<_, _>>()?
        };
        SweepSpec::new(knob.trim(), values)
    }
}

/// The counterfactual replay engine: a parsed bundle plus the
/// reconstructed world (network + initial plan), ready to re-run rounds
/// under any policy. Construction does the expensive reconstruction
/// once; every replay after that is a pure function of
/// `(engine, overrides)`.
#[derive(Debug, Clone)]
pub struct ReplayEngine {
    manifest: ReplayManifest,
    recorded: Vec<RoundRecord>,
    net: Network,
    plan: GatheringPlan,
}

impl ReplayEngine {
    /// Builds the engine from a parsed bundle. Fails with a clear error
    /// on legacy headerless traces and on headers without a manifest.
    pub fn from_bundle(bundle: &TraceBundle) -> Result<Self, ReplayError> {
        let header = bundle.header.as_ref().ok_or(ReplayError::MissingHeader)?;
        let manifest = header
            .manifest
            .as_ref()
            .ok_or(ReplayError::MissingManifest)?
            .clone();
        let _sp = mdg_obs::span("replay/build");
        let net = manifest.network();
        let plan = ShdgPlanner::new()
            .plan(&net)
            .map_err(|e| ReplayError::Plan(e.to_string()))?;
        Ok(ReplayEngine {
            manifest,
            recorded: bundle.records.clone(),
            net,
            plan,
        })
    }

    /// The bundle's manifest.
    pub fn manifest(&self) -> &ReplayManifest {
        &self.manifest
    }

    /// The recorded rounds.
    pub fn recorded(&self) -> &[RoundRecord] {
        &self.recorded
    }

    /// Re-runs the recorded rounds under `cfg`, side-effect-free: the
    /// engine's own state is untouched, nothing is written anywhere, and
    /// the result is a pure function of `(manifest, cfg)`.
    fn rerun(&self, cfg: &RuntimeConfig) -> Vec<RoundRecord> {
        let mut sp = mdg_obs::span("replay/run");
        let mut rt = GatheringRuntime::new(self.net.clone(), self.plan.clone(), *cfg);
        let mut tw = TraceWriter::new(Vec::new());
        rt.run_traced(&mut tw).expect("in-memory trace write");
        let bytes = tw.into_inner().expect("in-memory trace flush");
        let records = crate::trace::parse_trace(std::str::from_utf8(&bytes).expect("utf8 trace"))
            .expect("replay emits valid trace lines");
        sp.add_items(records.len() as u64);
        records
    }

    /// Replays the recorded rounds under `overrides` applied to the
    /// recorded config.
    pub fn replay_records(&self, overrides: &PolicyOverrides) -> Vec<RoundRecord> {
        self.rerun(&overrides.apply(&self.manifest.config))
    }

    /// Replays the *original* policy and checks the result against the
    /// recording, round by round, on canonical JSON bytes. A non-empty
    /// report means the determinism contract is broken somewhere between
    /// recorder and replayer.
    pub fn self_check(&self) -> SelfCheckReport {
        let _sp = mdg_obs::span("replay/self_check");
        let replayed = self.rerun(&self.manifest.config);
        let canon = |r: &RoundRecord| serde_json::to_string(r).expect("record serializes");
        let mut divergent = Vec::new();
        let mut first_diff = None;
        let rounds = self.recorded.len().max(replayed.len());
        for i in 0..rounds {
            match (self.recorded.get(i), replayed.get(i)) {
                (Some(a), Some(b)) => {
                    let (la, lb) = (canon(a), canon(b));
                    if la != lb {
                        divergent.push(a.round);
                        if first_diff.is_none() {
                            first_diff = Some((la, lb));
                        }
                    }
                }
                (Some(a), None) => {
                    divergent.push(a.round);
                    if first_diff.is_none() {
                        first_diff = Some((canon(a), "(absent)".to_string()));
                    }
                }
                (None, Some(b)) => {
                    divergent.push(b.round);
                    if first_diff.is_none() {
                        first_diff = Some(("(absent)".to_string(), canon(b)));
                    }
                }
                (None, None) => unreachable!(),
            }
        }
        mdg_obs::counter("replay/self_check_divergences").add(divergent.len() as u64);
        SelfCheckReport {
            rounds_recorded: self.recorded.len(),
            rounds_replayed: replayed.len(),
            divergent_rounds: divergent,
            first_diff,
        }
    }

    /// Runs one counterfactual and diffs it against the recording. A
    /// round diverges when its canonical JSON differs; each divergence
    /// carries both decision labels and the outcome deltas.
    pub fn replay(&self, overrides: &PolicyOverrides) -> CounterfactualResult {
        let cf = self.replay_records(overrides);
        let canon = |r: &RoundRecord| serde_json::to_string(r).expect("record serializes");
        let mut divergences = Vec::new();
        for i in 0..self.recorded.len().max(cf.len()) {
            match (self.recorded.get(i), cf.get(i)) {
                (Some(o), Some(c)) => {
                    if canon(o) != canon(c) {
                        divergences.push(DivergenceRecord {
                            round: o.round,
                            original_decision: decision_of(o),
                            counterfactual_decision: decision_of(c),
                            d_tour_length_m: c.tour_length_m - o.tour_length_m,
                            d_delivered: c.delivered as i64 - o.delivered as i64,
                            d_drops: c.drops as i64 - o.drops as i64,
                            d_retries: c.retries as i64 - o.retries as i64,
                            d_orphan_secs: c.orphan_secs_total - o.orphan_secs_total,
                            d_repair_ops: c.repair_ops as i64 - o.repair_ops as i64,
                        });
                    }
                }
                (Some(o), None) => divergences.push(DivergenceRecord {
                    round: o.round,
                    original_decision: decision_of(o),
                    counterfactual_decision: "(absent)".to_string(),
                    d_tour_length_m: -o.tour_length_m,
                    d_delivered: -(o.delivered as i64),
                    d_drops: -(o.drops as i64),
                    d_retries: -(o.retries as i64),
                    d_orphan_secs: -o.orphan_secs_total,
                    d_repair_ops: -(o.repair_ops as i64),
                }),
                (None, Some(c)) => divergences.push(DivergenceRecord {
                    round: c.round,
                    original_decision: "(absent)".to_string(),
                    counterfactual_decision: decision_of(c),
                    d_tour_length_m: c.tour_length_m,
                    d_delivered: c.delivered as i64,
                    d_drops: c.drops as i64,
                    d_retries: c.retries as i64,
                    d_orphan_secs: c.orphan_secs_total,
                    d_repair_ops: c.repair_ops as i64,
                }),
                (None, None) => unreachable!(),
            }
        }
        mdg_obs::counter("replay/divergent_rounds").add(divergences.len() as u64);
        CounterfactualResult {
            overrides: overrides.describe(),
            original: ReplayOutcome::of(&self.recorded),
            counterfactual: ReplayOutcome::of(&cf),
            divergences,
        }
    }

    /// Replays every value of a bounded numeric sweep, fanned out on
    /// `mdg-par`'s order-preserving `par_map` — the output order (and
    /// every byte of it) is identical at any worker-thread count.
    pub fn sweep(&self, spec: &SweepSpec) -> Result<Vec<SweepPoint>, ReplayError> {
        let mut sp = mdg_obs::span("replay/sweep");
        sp.add_items(spec.values.len() as u64);
        // Validate every value before spawning any work (SweepSpec::new
        // already did for its own constructor, but a hand-built spec may
        // not have gone through it).
        let overrides: Vec<PolicyOverrides> = spec
            .values
            .iter()
            .map(|&v| {
                let mut o = PolicyOverrides::default();
                o.set(&spec.knob, v)?;
                Ok(o)
            })
            .collect::<Result<_, ReplayError>>()?;
        if overrides.len() > MAX_SWEEP_VALUES {
            return Err(ReplayError::TooManyValues(overrides.len()));
        }
        let results = mdg_par::par_map(overrides.len(), |i| self.replay(&overrides[i]));
        Ok(results
            .into_iter()
            .zip(&spec.values)
            .map(|(result, &value)| SweepPoint {
                knob: spec.knob.clone(),
                value,
                result,
            })
            .collect())
    }
}

/// Renders sweep results as [`SweepDivergenceRecord`] JSON Lines — the
/// machine-readable artifact `mdg replay --sweep --out` writes and the CI
/// thread-determinism gate compares byte-for-byte.
pub fn sweep_to_jsonl(points: &[SweepPoint]) -> String {
    let mut out = String::new();
    for p in points {
        for d in &p.result.divergences {
            let line = serde_json::to_string(&SweepDivergenceRecord {
                knob: p.knob.clone(),
                value: p.value,
                divergence: d.clone(),
            })
            .expect("sweep divergence serializes");
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// Renders one replay's divergences as [`DivergenceRecord`] JSON Lines.
pub fn divergences_to_jsonl(divergences: &[DivergenceRecord]) -> String {
    let mut out = String::new();
    for d in divergences {
        out.push_str(&serde_json::to_string(d).expect("divergence serializes"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultConfig;
    use crate::trace::{parse_bundle, TopologyManifest, TraceHeader};

    fn record_bundle(seed: u64, loss: f64, deaths: f64, rounds: u64) -> String {
        let manifest = ReplayManifest {
            topology: TopologyManifest::Uniform {
                n: 40,
                side: 180.0,
                seed,
            },
            range: 30.0,
            config: RuntimeConfig {
                faults: FaultConfig {
                    seed,
                    loss_rate: loss,
                    death_rate: deaths,
                    death_horizon_secs: if deaths > 0.0 { 3_000.0 } else { 0.0 },
                    max_retries: 3,
                    backoff_secs: 0.2,
                    ..FaultConfig::default()
                },
                max_rounds: rounds,
                ..RuntimeConfig::default()
            },
        };
        let net = manifest.network();
        let plan = ShdgPlanner::new().plan(&net).unwrap();
        let mut tw =
            TraceWriter::with_header(Vec::new(), &TraceHeader::new(manifest.clone())).unwrap();
        GatheringRuntime::new(net, plan, manifest.config)
            .run_traced(&mut tw)
            .unwrap();
        String::from_utf8(tw.into_inner().unwrap()).unwrap()
    }

    fn engine(seed: u64, loss: f64, deaths: f64, rounds: u64) -> ReplayEngine {
        let text = record_bundle(seed, loss, deaths, rounds);
        ReplayEngine::from_bundle(&parse_bundle(&text).unwrap()).unwrap()
    }

    #[test]
    fn self_check_passes_on_fresh_bundle() {
        let e = engine(11, 0.2, 0.15, 6);
        let report = e.self_check();
        assert!(report.ok(), "first diff: {:?}", report.first_diff);
        assert_eq!(report.rounds_recorded, 6);
        assert_eq!(report.rounds_replayed, 6);
    }

    #[test]
    fn noop_overrides_produce_no_divergence() {
        let e = engine(4, 0.25, 0.1, 5);
        let r = e.replay(&PolicyOverrides::default());
        assert!(r.divergences.is_empty());
        assert_eq!(r.original, r.counterfactual);
        assert_eq!(r.overrides, "(original)");
    }

    #[test]
    fn zero_retry_budget_diverges_on_a_lossy_run() {
        let e = engine(7, 0.3, 0.0, 5);
        let r = e.replay(&PolicyOverrides {
            max_retries: Some(0),
            ..PolicyOverrides::default()
        });
        assert!(
            !r.divergences.is_empty(),
            "removing the retry budget on a 30% loss run must change outcomes"
        );
        assert!(
            r.counterfactual.drops > r.original.drops,
            "cf {} vs orig {}",
            r.counterfactual.drops,
            r.original.drops
        );
        assert!(r.counterfactual.retries < r.original.retries);
        // The world is fixed: both runs expected the same packet count.
        assert_eq!(r.counterfactual.expected, r.original.expected);
    }

    #[test]
    fn static_policy_override_stops_repairing() {
        let e = engine(9, 0.0, 0.25, 10);
        assert!(
            e.replay(&PolicyOverrides::default()).original.repairs > 0,
            "the recorded run must have repaired"
        );
        let r = e.replay(&PolicyOverrides {
            policy: Some(RepairPolicy::Static),
            ..PolicyOverrides::default()
        });
        assert_eq!(r.counterfactual.repairs, 0);
        assert!(r.counterfactual.orphan_secs > r.original.orphan_secs);
    }

    #[test]
    fn replay_is_side_effect_free() {
        let e = engine(5, 0.2, 0.1, 4);
        let a = e.replay(&PolicyOverrides {
            max_retries: Some(1),
            ..PolicyOverrides::default()
        });
        let b = e.replay(&PolicyOverrides {
            max_retries: Some(1),
            ..PolicyOverrides::default()
        });
        assert_eq!(a, b, "same engine + same overrides = identical results");
        assert!(e.self_check().ok(), "replays must not mutate the engine");
    }

    #[test]
    fn sweep_is_ordered_and_bounded() {
        let e = engine(3, 0.3, 0.0, 4);
        let spec = SweepSpec::parse("retry_budget=0..3").unwrap();
        assert_eq!(spec.values, vec![0.0, 1.0, 2.0, 3.0]);
        let points = e.sweep(&spec).unwrap();
        assert_eq!(points.len(), 4);
        for (p, v) in points.iter().zip([0.0, 1.0, 2.0, 3.0]) {
            assert_eq!(p.value, v);
            assert_eq!(p.knob, "retry_budget");
        }
        // More retries never deliver less on the same world.
        let delivered: Vec<u64> = points
            .iter()
            .map(|p| p.result.counterfactual.delivered)
            .collect();
        assert!(
            delivered.windows(2).all(|w| w[0] <= w[1]),
            "delivery must be monotone in retry budget: {delivered:?}"
        );
    }

    #[test]
    fn sweep_spec_rejections() {
        assert!(matches!(
            SweepSpec::parse("retry_budget=0..40"),
            Err(ReplayError::TooManyValues(_))
        ));
        assert!(matches!(
            SweepSpec::parse("nope=1,2"),
            Err(ReplayError::BadKnob(_))
        ));
        assert!(matches!(
            SweepSpec::parse("retry_budget"),
            Err(ReplayError::BadSweep(_))
        ));
        assert!(matches!(
            SweepSpec::parse("retry_budget=5..1"),
            Err(ReplayError::BadSweep(_))
        ));
        assert!(matches!(
            SweepSpec::parse("retry_budget=1.5,2"),
            Err(ReplayError::BadValue(_))
        ));
        assert!(matches!(
            SweepSpec::new("backoff_secs", (0..21).map(f64::from).collect()),
            Err(ReplayError::TooManyValues(21))
        ));
        assert!(SweepSpec::parse("backoff_secs=0.1,0.2,0.4").is_ok());
    }

    #[test]
    fn legacy_headerless_trace_is_rejected_clearly() {
        let text = record_bundle(2, 0.1, 0.0, 3);
        // Strip the header to fake a legacy file.
        let legacy: String = text
            .lines()
            .skip(1)
            .flat_map(|l| [l, "\n"])
            .collect::<Vec<_>>()
            .concat();
        let bundle = parse_bundle(&legacy).unwrap();
        assert!(bundle.header.is_none());
        let err = ReplayEngine::from_bundle(&bundle).unwrap_err();
        assert_eq!(err, ReplayError::MissingHeader);
        assert!(err.to_string().contains("re-record"));
    }

    #[test]
    fn header_without_manifest_is_rejected() {
        let mut header = TraceHeader::new(ReplayManifest {
            topology: TopologyManifest::Uniform {
                n: 5,
                side: 50.0,
                seed: 0,
            },
            range: 10.0,
            config: RuntimeConfig::default(),
        });
        header.manifest = None;
        let w = TraceWriter::with_header(Vec::new(), &header).unwrap();
        let text = String::from_utf8(w.into_inner().unwrap()).unwrap();
        let bundle = parse_bundle(&text).unwrap();
        assert_eq!(
            ReplayEngine::from_bundle(&bundle).unwrap_err(),
            ReplayError::MissingManifest
        );
    }

    #[test]
    fn divergence_jsonl_round_trips() {
        let e = engine(8, 0.3, 0.0, 4);
        let points = e
            .sweep(&SweepSpec::parse("retry_budget=0,3").unwrap())
            .unwrap();
        let jsonl = sweep_to_jsonl(&points);
        for line in jsonl.lines() {
            let back: SweepDivergenceRecord = serde_json::from_str(line).unwrap();
            assert_eq!(back.knob, "retry_budget");
        }
        let flat: Vec<DivergenceRecord> = points
            .iter()
            .flat_map(|p| p.result.divergences.clone())
            .collect();
        let flat_jsonl = divergences_to_jsonl(&flat);
        assert_eq!(flat_jsonl.lines().count(), jsonl.lines().count());
    }
}
