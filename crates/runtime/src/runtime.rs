//! The event-driven control loop tying faults, simulation, state tracking
//! and plan repair together.
//!
//! Each round:
//!
//! 1. **Repair** (policy `Repair` only): fix the plan using what the
//!    previous rounds revealed — deaths that occur *this* round are not
//!    yet known, so repair always lags detection by one round, like a
//!    real deployment.
//! 2. **Faults**: apply deaths whose scheduled time has arrived.
//! 3. **Collect**: build the round's upload scenario — stale stops (dead
//!    anchor) are still driven to but serve no uploads — and run the
//!    discrete-event round with this round's fault hooks (packet loss,
//!    retries, speed degradation).
//! 4. **Account**: orphaned live sensors, battery drain, clock advance,
//!    one JSONL trace record.
//!
//! All trace-visible quantities are deterministic in `(seed, config)`;
//! wall-clock repair latency is reported only in [`RuntimeReport`].

use crate::faults::{FaultConfig, FaultPlan};
use crate::repair::{repair_plan, RepairConfig, RepairReport};
use crate::state::{DeathCause, NetworkState};
use crate::trace::{RoundRecord, TraceWriter};
use mdg_core::GatheringPlan;
use mdg_cover::CoverageInstance;
use mdg_net::Network;
use mdg_sim::{MobileGatheringSim, MobileScenario, SimConfig, Stop, Upload};
use serde::{Deserialize, Serialize};
use std::io::Write;

/// How the runtime reacts to detected failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairPolicy {
    /// Keep driving the original plan forever (the paper's offline SHDG).
    Static,
    /// Incrementally repair the plan every round (see [`crate::repair`]).
    Repair,
}

/// Runtime configuration. Serializable so a recorded trace bundle's
/// manifest (see [`crate::trace::TraceHeader`]) can embed the exact
/// configuration needed to replay the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Simulation parameters (speed, upload time, radio model).
    pub sim: SimConfig,
    /// Injected faults.
    pub faults: FaultConfig,
    /// Repair tuning.
    pub repair: RepairConfig,
    /// Reaction policy.
    pub policy: RepairPolicy,
    /// Maximum rounds to run.
    pub max_rounds: u64,
    /// Initial battery per sensor, joules (`None` = unlimited).
    pub battery_j: Option<f64>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            sim: SimConfig::default(),
            faults: FaultConfig::default(),
            repair: RepairConfig::default(),
            policy: RepairPolicy::Repair,
            max_rounds: 100,
            battery_j: None,
        }
    }
}

/// Aggregate outcome of a runtime run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuntimeReport {
    /// Rounds executed.
    pub rounds: u64,
    /// Total packets delivered to the collector.
    pub delivered: u64,
    /// Total packets expected (live, covered sensors × rounds).
    pub expected: u64,
    /// Total retransmissions.
    pub retries: u64,
    /// Total packets dropped after exhausting retries.
    pub drops: u64,
    /// Live-sensor-seconds spent without coverage.
    pub orphan_secs: f64,
    /// (sensor, round) pairs where a live sensor was uncovered.
    pub orphan_sensor_rounds: u64,
    /// Rounds in which repair changed the plan.
    pub repairs: u64,
    /// Repairs that escalated to a full re-plan.
    pub full_replans: u64,
    /// Stale stops removed across all repairs.
    pub stops_removed: u64,
    /// Replacement stops added across all repairs.
    pub stops_added: u64,
    /// Deterministic repair work across all repairs.
    pub repair_ops: u64,
    /// Wall-clock time spent in plan repair, microseconds (not traced —
    /// machine-dependent).
    pub repair_wall_micros: u128,
    /// Simulated time elapsed, seconds.
    pub elapsed_secs: f64,
    /// Sensors alive at the end.
    pub final_alive: usize,
    /// Deaths by hardware fault.
    pub fault_deaths: usize,
    /// Deaths by battery exhaustion.
    pub energy_deaths: usize,
    /// Tour length at the end, meters.
    pub final_tour_length: f64,
}

impl RuntimeReport {
    /// Overall delivery ratio (1 when nothing was expected).
    pub fn delivery_ratio(&self) -> f64 {
        if self.expected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.expected as f64
        }
    }

    /// Mean orphaned time per (sensor, round) incident, seconds.
    pub fn mean_orphan_secs(&self) -> f64 {
        if self.orphan_sensor_rounds == 0 {
            0.0
        } else {
            self.orphan_secs / self.orphan_sensor_rounds as f64
        }
    }
}

/// The online gathering runtime: owns the evolving plan and network state.
#[derive(Debug, Clone)]
pub struct GatheringRuntime {
    net: Network,
    plan: GatheringPlan,
    inst: CoverageInstance,
    fault_plan: FaultPlan,
    cfg: RuntimeConfig,
    state: NetworkState,
}

impl GatheringRuntime {
    /// Creates the runtime around an initial plan. The coverage instance
    /// is built once here and reused by every repair.
    pub fn new(net: Network, plan: GatheringPlan, cfg: RuntimeConfig) -> Self {
        assert_eq!(plan.n_sensors(), net.n_sensors(), "plan matches network");
        let inst = CoverageInstance::sensor_sites(&net.deployment.sensors, net.range);
        let fault_plan = cfg.faults.plan(net.n_sensors());
        let state = NetworkState::new(net.n_sensors(), cfg.battery_j);
        GatheringRuntime {
            net,
            plan,
            inst,
            fault_plan,
            cfg,
            state,
        }
    }

    /// The current (possibly repaired) plan.
    pub fn plan(&self) -> &GatheringPlan {
        &self.plan
    }

    /// The current network state.
    pub fn state(&self) -> &NetworkState {
        &self.state
    }

    /// The materialized fault schedule.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Runs to completion without tracing.
    pub fn run(&mut self) -> RuntimeReport {
        let mut devnull = TraceWriter::new(std::io::sink());
        self.run_traced(&mut devnull)
            .expect("sink writes cannot fail")
    }

    /// Runs to completion, emitting one trace record per round.
    pub fn run_traced<W: Write>(
        &mut self,
        trace: &mut TraceWriter<W>,
    ) -> std::io::Result<RuntimeReport> {
        let n = self.net.n_sensors();
        let mut report = RuntimeReport::default();

        // Observability: spans/counters describe the run but never feed
        // back into it — traces stay deterministic in (seed, config).
        let mut sp_rt = mdg_obs::span("runtime");
        let ctr_retries = mdg_obs::counter("runtime/retries");
        let ctr_attempt_failures = mdg_obs::counter("runtime/attempt_failures");
        let ctr_drops = mdg_obs::counter("runtime/drops");
        let ctr_repairs = mdg_obs::counter("runtime/repairs");
        let ctr_full_replans = mdg_obs::counter("runtime/full_replans");
        let ctr_stops_removed = mdg_obs::counter("runtime/stops_removed");
        let ctr_stops_added = mdg_obs::counter("runtime/stops_added");
        let hist_repair_ops = mdg_obs::histogram("runtime/repair_ops_per_round");
        let hist_retries = mdg_obs::histogram("runtime/retries_per_round");

        for round in 0..self.cfg.max_rounds {
            if self.state.n_alive() == 0 {
                break;
            }
            let _sp_round = mdg_obs::span("round");

            // 1. Repair from what previous rounds revealed.
            let mut rrep = RepairReport::default();
            if self.cfg.policy == RepairPolicy::Repair {
                let _sp = mdg_obs::span("repair");
                let t0 = std::time::Instant::now();
                rrep = repair_plan(
                    &mut self.plan,
                    &self.net,
                    &self.inst,
                    self.state.alive(),
                    &self.cfg.repair,
                );
                report.repair_wall_micros += t0.elapsed().as_micros();
            }

            // 2. Apply fault deaths that have come due.
            let due: Vec<usize> = self.fault_plan.due_deaths(self.state.clock_secs).collect();
            for s in due {
                self.state.kill(s, DeathCause::Fault);
            }
            if self.state.n_alive() == 0 {
                break;
            }

            // 3. Build the round's scenario. A stop with a dead anchor is
            //    still driven to (the collector does not know yet) but
            //    serves no uploads; its live sensors are orphaned.
            let alive = self.state.alive().to_vec();
            let mut covered_live = vec![false; n];
            let stops: Vec<Stop> = self
                .plan
                .polling_points
                .iter()
                .map(|pp| {
                    let anchor_dead = pp.candidate < n && !alive[pp.candidate];
                    let uploads = if anchor_dead {
                        Vec::new()
                    } else {
                        pp.covered
                            .iter()
                            .map(|&s| s as usize)
                            .filter(|&s| alive[s])
                            .inspect(|&s| covered_live[s] = true)
                            .map(Upload::direct)
                            .collect()
                    };
                    Stop {
                        pos: pp.pos,
                        uploads,
                    }
                })
                .collect();
            let orphans = (0..n).filter(|&s| alive[s] && !covered_live[s]).count();

            let sim = MobileGatheringSim::new(
                MobileScenario {
                    sensors: self.net.deployment.sensors.clone(),
                    sink: self.net.deployment.sink,
                    stops,
                },
                self.cfg.sim,
            );
            let mut hooks = self.fault_plan.round_hooks(round, self.state.clock_secs);
            let r = sim.run_round_with(&alive, &mut hooks);

            // 4. Accounting and trace.
            self.state.note_orphans(orphans, r.duration_secs);
            self.state.apply_round_energy(&r.ledger);

            trace.record(&RoundRecord {
                round,
                t_start_secs: self.state.clock_secs,
                duration_secs: r.duration_secs,
                n_alive: alive.iter().filter(|&&a| a).count(),
                delivered: r.packets_delivered,
                expected: r.packets_expected,
                retries: hooks.counters.retries,
                attempt_failures: hooks.counters.attempt_failures,
                drops: hooks.counters.drops,
                orphans,
                orphan_secs_total: self.state.orphan_secs,
                repaired: rrep.changed(),
                stops_removed: rrep.removed_stops,
                stops_added: rrep.added_stops,
                full_replan: rrep.full_replan,
                repair_ops: rrep.ops,
                tour_length_m: self.plan.tour_length,
            })?;

            self.state.advance(r.duration_secs);

            sp_rt.add_items(1);
            ctr_retries.add(hooks.counters.retries);
            ctr_attempt_failures.add(hooks.counters.attempt_failures);
            ctr_drops.add(hooks.counters.drops);
            ctr_repairs.add(u64::from(rrep.changed()));
            ctr_full_replans.add(u64::from(rrep.full_replan));
            ctr_stops_removed.add(rrep.removed_stops as u64);
            ctr_stops_added.add(rrep.added_stops as u64);
            if self.cfg.policy == RepairPolicy::Repair {
                hist_repair_ops.record(rrep.ops);
            }
            hist_retries.record(hooks.counters.retries);

            report.rounds += 1;
            report.delivered += r.packets_delivered as u64;
            report.expected += r.packets_expected as u64;
            report.retries += hooks.counters.retries;
            report.drops += hooks.counters.drops;
            report.repairs += u64::from(rrep.changed());
            report.full_replans += u64::from(rrep.full_replan);
            report.stops_removed += rrep.removed_stops as u64;
            report.stops_added += rrep.added_stops as u64;
            report.repair_ops += rrep.ops;
        }

        report.orphan_secs = self.state.orphan_secs;
        report.orphan_sensor_rounds = self.state.orphan_sensor_rounds;
        report.elapsed_secs = self.state.clock_secs;
        report.final_alive = self.state.n_alive();
        report.fault_deaths = self.state.fault_deaths;
        report.energy_deaths = self.state.energy_deaths;
        report.final_tour_length = self.plan.tour_length;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::Slowdown;
    use mdg_core::ShdgPlanner;
    use mdg_net::DeploymentConfig;

    fn setup(n: usize, seed: u64) -> (Network, GatheringPlan) {
        let net = Network::build(DeploymentConfig::uniform(n, 200.0).generate(seed), 30.0);
        let plan = ShdgPlanner::new().plan(&net).unwrap();
        (net, plan)
    }

    #[test]
    fn faultless_run_delivers_everything() {
        let (net, plan) = setup(60, 1);
        let cfg = RuntimeConfig {
            max_rounds: 5,
            ..RuntimeConfig::default()
        };
        let mut rt = GatheringRuntime::new(net, plan, cfg);
        let rep = rt.run();
        assert_eq!(rep.rounds, 5);
        assert_eq!(rep.delivered, rep.expected);
        assert_eq!(rep.expected, 5 * 60);
        assert_eq!(rep.orphan_secs, 0.0);
        assert_eq!(rep.repairs, 0);
        assert_eq!(rep.final_alive, 60);
    }

    #[test]
    fn static_and_repair_agree_without_faults() {
        let (net, plan) = setup(50, 2);
        let run = |policy| {
            let cfg = RuntimeConfig {
                policy,
                max_rounds: 3,
                ..RuntimeConfig::default()
            };
            let mut rt = GatheringRuntime::new(net.clone(), plan.clone(), cfg);
            let mut tw = TraceWriter::new(Vec::new());
            rt.run_traced(&mut tw).unwrap();
            tw.into_inner().unwrap()
        };
        assert_eq!(run(RepairPolicy::Static), run(RepairPolicy::Repair));
    }

    #[test]
    fn repair_bounds_orphan_time_static_does_not() {
        let (net, plan) = setup(100, 3);
        let faults = FaultConfig {
            seed: 11,
            death_rate: 0.2,
            death_horizon_secs: 2_000.0,
            ..FaultConfig::default()
        };
        let run = |policy| {
            let cfg = RuntimeConfig {
                faults,
                policy,
                max_rounds: 20,
                ..RuntimeConfig::default()
            };
            GatheringRuntime::new(net.clone(), plan.clone(), cfg).run()
        };
        let st = run(RepairPolicy::Static);
        let rp = run(RepairPolicy::Repair);
        assert!(rp.repairs > 0, "deaths must trigger repairs");
        assert!(
            rp.orphan_secs < st.orphan_secs,
            "repair {} vs static {}",
            rp.orphan_secs,
            st.orphan_secs
        );
        assert!(rp.delivered > st.delivered);
    }

    #[test]
    fn repaired_plan_keeps_live_sensors_covered() {
        let (net, plan) = setup(80, 4);
        let cfg = RuntimeConfig {
            faults: FaultConfig {
                seed: 5,
                death_rate: 0.3,
                death_horizon_secs: 3_000.0,
                ..FaultConfig::default()
            },
            max_rounds: 30,
            ..RuntimeConfig::default()
        };
        let mut rt = GatheringRuntime::new(net.clone(), plan, cfg);
        rt.run();
        // After the final round's repair opportunity has passed, repair
        // once more by hand and check the invariant directly.
        let mut final_plan = rt.plan().clone();
        let inst = CoverageInstance::sensor_sites(&net.deployment.sensors, net.range);
        repair_plan(
            &mut final_plan,
            &net,
            &inst,
            rt.state().alive(),
            &RepairConfig::default(),
        );
        final_plan
            .validate_live(&net.deployment.sensors, net.range, rt.state().alive())
            .unwrap();
    }

    #[test]
    fn packet_loss_with_retries_still_delivers() {
        let (net, plan) = setup(40, 6);
        let cfg = RuntimeConfig {
            faults: FaultConfig {
                seed: 9,
                loss_rate: 0.3,
                max_retries: 8,
                backoff_secs: 0.1,
                ..FaultConfig::default()
            },
            max_rounds: 4,
            ..RuntimeConfig::default()
        };
        let mut rt = GatheringRuntime::new(net, plan, cfg);
        let rep = rt.run();
        assert!(rep.retries > 0, "30% loss must trigger retries");
        assert_eq!(rep.delivered, rep.expected, "8 retries beat 30% loss");
    }

    #[test]
    fn slowdown_stretches_rounds() {
        let (net, plan) = setup(30, 7);
        let base = RuntimeConfig {
            max_rounds: 1,
            ..RuntimeConfig::default()
        };
        let plain = GatheringRuntime::new(net.clone(), plan.clone(), base).run();
        let slowed = GatheringRuntime::new(
            net,
            plan,
            RuntimeConfig {
                faults: FaultConfig {
                    slowdown: Some(Slowdown {
                        start_secs: 0.0,
                        duration_secs: f64::INFINITY,
                        factor: 0.5,
                    }),
                    ..FaultConfig::default()
                },
                ..base
            },
        )
        .run();
        assert!(slowed.elapsed_secs > 1.9 * plain.elapsed_secs);
        assert_eq!(slowed.delivered, plain.delivered);
    }

    #[test]
    fn battery_exhaustion_ends_the_run() {
        let (net, plan) = setup(50, 8);
        let cfg = RuntimeConfig {
            battery_j: Some(1e-6),
            max_rounds: 50,
            ..RuntimeConfig::default()
        };
        let mut rt = GatheringRuntime::new(net, plan, cfg);
        let rep = rt.run();
        assert!(rep.energy_deaths > 0);
        assert!(rep.rounds < 50, "tiny batteries cannot last 50 rounds");
    }
}
