//! Incremental plan repair: restore the single-hop coverage invariant
//! after node deaths without re-solving the whole SHDG instance.
//!
//! A polling point is *anchored* at the sensor whose site the collector
//! pauses at (sensor-site candidates; the anchor coordinates the stop's
//! uploads). When the anchor dies the stop goes stale: the collector can
//! still drive there, but the sensors assigned to it are **orphaned** —
//! their data is no longer gathered.
//!
//! [`repair_plan`] runs the repair pipeline:
//!
//! 1. purge dead sensors from the plan;
//! 2. remove stale stops (dead anchor) and stops left serving no one;
//! 3. if too much of the tour was lost, fall back to a **full re-plan**
//!    of the surviving sub-network;
//! 4. otherwise *adopt* orphans into surviving in-range stops (zero tour
//!    cost), re-cover the rest with a restricted greedy over live
//!    candidates (ties broken by cheapest-insertion detour), splice the
//!    new stops into the tour, and polish with a bounded 2-opt/Or-opt
//!    touch-up.
//!
//! The post-condition — every live sensor single-hop covered by an
//! in-range polling point — is checked by
//! [`GatheringPlan::validate_live`] (debug builds assert it).

use mdg_core::{GatheringPlan, PlannerConfig, PollingPoint, ShdgPlanner, UNASSIGNED};
use mdg_cover::{greedy_cover_restricted, CoverageInstance};
use mdg_net::{Deployment, Network};
use mdg_tour::{cheapest_insertion_position, improve, ImproveConfig, MatrixCost, Tour};
use serde::{Deserialize, Serialize};

/// Repair tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepairConfig {
    /// Local-search passes for the post-splice tour touch-up (0 disables
    /// polishing).
    pub improve_passes: usize,
    /// If at least this fraction of the tour's stops went stale, repair
    /// falls back to a full re-plan of the surviving sub-network.
    pub full_replan_stop_fraction: f64,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            improve_passes: 8,
            full_replan_stop_fraction: 0.5,
        }
    }
}

/// What one repair invocation did. `ops` is a deterministic work measure
/// (candidate/edge scans), usable in traces where wall-clock time would
/// break replay determinism.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RepairReport {
    /// Stale or empty stops removed from the tour.
    pub removed_stops: usize,
    /// Replacement stops spliced in (or, on full re-plan, the stop count
    /// of the new tour).
    pub added_stops: usize,
    /// Orphans adopted by surviving stops at zero tour cost.
    pub adopted: usize,
    /// Orphans re-covered by newly spliced stops.
    pub recovered: usize,
    /// Whether repair escalated to a full re-plan.
    pub full_replan: bool,
    /// Deterministic work measure.
    pub ops: u64,
}

impl RepairReport {
    /// Whether the repair changed the plan at all.
    pub fn changed(&self) -> bool {
        self.removed_stops > 0 || self.added_stops > 0 || self.adopted > 0 || self.full_replan
    }
}

/// Index of the sensor anchoring polling point `pp`, if the plan uses
/// sensor-site candidates (`candidate < n_sensors`). Grid-candidate plans
/// have no anchor and never go stale.
fn anchor_of(pp: &PollingPoint, n_sensors: usize) -> Option<usize> {
    (pp.candidate < n_sensors).then_some(pp.candidate)
}

/// Repairs `plan` in place so every live sensor is single-hop covered
/// again. `inst` must be the sensor-site coverage instance of `net`
/// (cached by the caller — building it is the expensive part).
///
/// Returns what was done. With no relevant deaths this is a cheap no-op.
pub fn repair_plan(
    plan: &mut GatheringPlan,
    net: &Network,
    inst: &CoverageInstance,
    alive: &[bool],
    cfg: &RepairConfig,
) -> RepairReport {
    let n = net.n_sensors();
    assert_eq!(alive.len(), n, "alive mask size");
    let mut report = RepairReport::default();

    // Pristine network with total coverage: nothing to repair, at zero
    // cost. Both halves matter: a live sensor can be UNASSIGNED without
    // any death when the caller grew the deployment (sensors added to a
    // warm serving session) — those orphans go through the same
    // adopt/re-cover pipeline below.
    if alive.iter().all(|&a| a) && !plan.assignment.contains(&UNASSIGNED) {
        return report;
    }

    // 1. Purge dead sensors.
    plan.drop_dead_sensors(alive);

    // 2. Remove stale stops (dead anchor) and stops serving no one.
    let n_stops_before = plan.n_polling_points();
    let stale: Vec<usize> = plan
        .polling_points
        .iter()
        .enumerate()
        .filter(|(_, pp)| {
            let anchor_dead = anchor_of(pp, n).is_some_and(|a| !alive[a]);
            anchor_dead || pp.covered.is_empty()
        })
        .map(|(k, _)| k)
        .collect();
    for &k in stale.iter().rev() {
        plan.remove_polling_point(k);
        report.removed_stops += 1;
    }
    report.ops += n_stops_before as u64;

    let orphans = plan.unassigned_sensors(alive);
    if orphans.is_empty() {
        debug_assert!(plan
            .validate_live(&net.deployment.sensors, net.range, alive)
            .is_ok());
        return report;
    }

    // 3. Escalate to a full re-plan when the tour lost too many stops for
    //    splicing to stay near-optimal.
    let lost_fraction = if n_stops_before == 0 {
        1.0
    } else {
        report.removed_stops as f64 / n_stops_before as f64
    };
    if lost_fraction >= cfg.full_replan_stop_fraction || plan.n_polling_points() == 0 {
        full_replan(plan, net, alive, cfg, &mut report);
        debug_assert!(plan
            .validate_live(&net.deployment.sensors, net.range, alive)
            .is_ok());
        return report;
    }

    // 4a. Adoption: orphans within range of a surviving stop are simply
    //     reassigned — no tour change at all. The surviving stops are
    //     indexed by a spatial grid so each orphan costs O(local density)
    //     instead of O(stops); the grid's hits are re-filtered with the
    //     linear scan's exact predicate and (distance, index) tie rule, so
    //     the adoption choices are unchanged.
    let mut unadopted = Vec::new();
    let stop_pts: Vec<_> = plan.polling_points.iter().map(|pp| pp.pos).collect();
    let stop_grid = mdg_geom::SpatialGrid::build(&stop_pts, net.range);
    for &s in &orphans {
        let sp = net.deployment.sensors[s];
        let mut best = usize::MAX;
        let mut best_d = f64::INFINITY;
        // Query with an inflated radius, then apply the exact
        // `d ≤ range + 1e-9` predicate: sqrt-vs-squared rounding right at
        // the boundary could otherwise flip a borderline hit.
        stop_grid.for_each_within(sp, net.range + 1e-6, |k| {
            report.ops += 1;
            let k = k as usize;
            let d = sp.dist(stop_pts[k]);
            if d <= net.range + 1e-9 && (d < best_d || (d == best_d && k < best)) {
                best_d = d;
                best = k;
            }
        });
        if best != usize::MAX {
            plan.assign_sensor(s, best);
            report.adopted += 1;
        } else {
            unadopted.push(s);
        }
    }

    // 4b. Re-cover the rest with new stops chosen from live candidates,
    //     ties broken toward the cheapest tour insertion.
    if !unadopted.is_empty() {
        let allowed: Vec<usize> = (0..n).filter(|&c| alive[c]).collect();
        let cycle = plan.tour_positions();
        report.ops += (allowed.len() * unadopted.len()) as u64;
        let selected = greedy_cover_restricted(inst, &unadopted, &allowed, |c| {
            cheapest_insertion_position(&cycle, inst.candidates[c].pos).1
        });
        let Some(selected) = selected else {
            // A live sensor covered by no live candidate cannot happen with
            // sensor-site candidates (it covers itself), but be safe.
            full_replan(plan, net, alive, cfg, &mut report);
            debug_assert!(plan
                .validate_live(&net.deployment.sensors, net.range, alive)
                .is_ok());
            return report;
        };

        // Assign each still-orphaned sensor to the nearest covering new stop.
        let mut served: Vec<Vec<u32>> = vec![Vec::new(); selected.len()];
        for &s in &unadopted {
            let mut best = usize::MAX;
            let mut best_d = f64::INFINITY;
            for (i, &c) in selected.iter().enumerate() {
                report.ops += 1;
                if inst.candidates[c].covers.get(s) {
                    let d = inst.candidates[c].pos.dist_sq(net.deployment.sensors[s]);
                    if d < best_d {
                        best_d = d;
                        best = i;
                    }
                }
            }
            debug_assert_ne!(best, usize::MAX, "greedy returned a cover");
            served[best].push(s as u32);
        }

        // Splice each new stop into the tour at its cheapest position.
        for (&c, covered) in selected.iter().zip(served) {
            let pp = PollingPoint {
                pos: inst.candidates[c].pos,
                candidate: c,
                covered,
            };
            let cycle = plan.tour_positions();
            report.ops += cycle.len() as u64;
            let (idx, _) = cheapest_insertion_position(&cycle, pp.pos);
            // Cycle index 0 is the sink, so plan position = idx - 1.
            let recovered = pp.covered.len();
            plan.insert_polling_point(idx - 1, pp);
            report.added_stops += 1;
            report.recovered += recovered;
        }
    }

    // 4c. Polish the spliced tour with a bounded local search.
    if cfg.improve_passes > 0 && plan.n_polling_points() >= 3 {
        let pts = plan.tour_positions();
        let cost = MatrixCost::from_points(&pts);
        let tour = improve(
            &cost,
            Tour::identity(pts.len()),
            &ImproveConfig {
                max_passes: cfg.improve_passes,
                ..ImproveConfig::default()
            },
        );
        report.ops += (pts.len() * pts.len()) as u64 * cfg.improve_passes as u64;
        let order = tour.into_order();
        debug_assert_eq!(order[0], 0, "normalized tours lead with the depot");
        if order.windows(2).any(|w| w[1] != w[0] + 1) {
            let pp_order: Vec<usize> = order[1..].iter().map(|&i| i - 1).collect();
            plan.reorder_polling_points(&pp_order);
        }
    }

    debug_assert!(plan
        .validate_live(&net.deployment.sensors, net.range, alive)
        .is_ok());
    report
}

/// Plans the surviving sub-network from scratch and maps the result back
/// onto global sensor ids.
fn full_replan(
    plan: &mut GatheringPlan,
    net: &Network,
    alive: &[bool],
    cfg: &RepairConfig,
    report: &mut RepairReport,
) {
    report.full_replan = true;
    let live_ids: Vec<usize> = (0..net.n_sensors()).filter(|&s| alive[s]).collect();
    report.ops += (live_ids.len() * live_ids.len()) as u64;
    let mut assignment = vec![UNASSIGNED; net.n_sensors()];
    if live_ids.is_empty() {
        *plan = GatheringPlan::new(plan.sink, Vec::new(), assignment);
        return;
    }

    let sub = Network::build(
        Deployment {
            sensors: live_ids
                .iter()
                .map(|&s| net.deployment.sensors[s])
                .collect(),
            sink: net.deployment.sink,
            field: net.deployment.field,
        },
        net.range,
    );
    let sub_plan = ShdgPlanner::with_config(PlannerConfig {
        improve_passes: cfg.improve_passes.max(1) * 8,
        ..PlannerConfig::default()
    })
    .plan(&sub)
    .expect("sensor-site candidates are always feasible");

    // Remap local (sub-network) ids back to global ids.
    for (local, &pp) in sub_plan.assignment.iter().enumerate() {
        assignment[live_ids[local]] = pp;
    }
    let polling_points: Vec<PollingPoint> = sub_plan
        .polling_points
        .into_iter()
        .map(|pp| PollingPoint {
            pos: pp.pos,
            candidate: live_ids[pp.candidate],
            covered: pp
                .covered
                .iter()
                .map(|&s| live_ids[s as usize] as u32)
                .collect(),
        })
        .collect();
    report.added_stops += polling_points.len();
    report.recovered += live_ids.len();
    *plan = GatheringPlan::new(net.deployment.sink, polling_points, assignment);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdg_net::DeploymentConfig;

    fn setup(n: usize, seed: u64) -> (Network, CoverageInstance, GatheringPlan) {
        let net = Network::build(DeploymentConfig::uniform(n, 200.0).generate(seed), 30.0);
        let inst = CoverageInstance::sensor_sites(&net.deployment.sensors, net.range);
        let plan = ShdgPlanner::new().plan(&net).unwrap();
        (net, inst, plan)
    }

    #[test]
    fn no_deaths_is_a_noop() {
        let (net, inst, mut plan) = setup(80, 1);
        let before = plan.clone();
        let rep = repair_plan(
            &mut plan,
            &net,
            &inst,
            &[true; 80],
            &RepairConfig::default(),
        );
        assert!(!rep.changed());
        assert_eq!(plan, before);
    }

    #[test]
    fn dead_anchor_triggers_recovery() {
        let (net, inst, mut plan) = setup(100, 2);
        let mut alive = vec![true; 100];
        // Kill the anchor of the stop serving the most sensors.
        let victim = plan
            .polling_points
            .iter()
            .max_by_key(|pp| pp.covered.len())
            .unwrap()
            .candidate;
        alive[victim] = false;
        let rep = repair_plan(&mut plan, &net, &inst, &alive, &RepairConfig::default());
        assert!(rep.changed());
        assert_eq!(rep.removed_stops, 1);
        plan.validate_live(&net.deployment.sensors, net.range, &alive)
            .unwrap();
    }

    #[test]
    fn covered_non_anchor_death_just_purges() {
        let (net, inst, mut plan) = setup(100, 3);
        // Kill a sensor that is covered by a stop anchored elsewhere.
        let victim = plan
            .polling_points
            .iter()
            .flat_map(|pp| pp.covered.iter().map(|&s| s as usize))
            .find(|&s| plan.polling_points[plan.assignment[s]].candidate != s)
            .expect("some sensor is served by a neighbor's stop");
        let mut alive = vec![true; 100];
        alive[victim] = false;
        let stops_before = plan.n_polling_points();
        let rep = repair_plan(&mut plan, &net, &inst, &alive, &RepairConfig::default());
        assert!(!rep.full_replan);
        assert_eq!(rep.recovered, 0);
        // The victim's stop survives unless the victim was its only client.
        assert!(plan.n_polling_points() >= stops_before - 1);
        plan.validate_live(&net.deployment.sensors, net.range, &alive)
            .unwrap();
    }

    #[test]
    fn mass_death_escalates_to_full_replan() {
        let (net, inst, mut plan) = setup(120, 4);
        let mut alive = vec![true; 120];
        // Kill every anchor: 100% of stops go stale.
        for pp in &plan.polling_points.clone() {
            alive[pp.candidate] = false;
        }
        let rep = repair_plan(&mut plan, &net, &inst, &alive, &RepairConfig::default());
        assert!(rep.full_replan);
        plan.validate_live(&net.deployment.sensors, net.range, &alive)
            .unwrap();
        assert!(plan.n_polling_points() > 0);
    }

    #[test]
    fn everyone_dead_empties_the_plan() {
        let (net, inst, mut plan) = setup(40, 5);
        let alive = vec![false; 40];
        let rep = repair_plan(&mut plan, &net, &inst, &alive, &RepairConfig::default());
        // Every stop's anchor is dead, so stale removal alone empties the
        // plan; with no live orphans there is nothing to re-plan.
        assert!(!rep.full_replan);
        assert!(rep.removed_stops > 0);
        assert_eq!(plan.n_polling_points(), 0);
        plan.validate_live(&net.deployment.sensors, net.range, &alive)
            .unwrap();
    }

    #[test]
    fn added_sensors_are_recovered_without_deaths() {
        let (net, _, mut plan) = setup(100, 9);
        // Grow the deployment by five sensors (one colocated with an
        // existing stop so adoption triggers, the rest off in a corner so
        // new stops must be spliced in).
        let mut sensors = net.deployment.sensors.clone();
        sensors.push(plan.polling_points[0].pos);
        for i in 0..4 {
            sensors.push(mdg_geom::Point::new(190.0 + i as f64, 190.0));
        }
        let grown = Network::build(
            Deployment {
                sensors: sensors.clone(),
                sink: net.deployment.sink,
                field: net.deployment.field,
            },
            net.range,
        );
        let inst = CoverageInstance::sensor_sites(&sensors, net.range);
        plan.assignment.extend([UNASSIGNED; 5]);
        let alive = vec![true; 105];
        let rep = repair_plan(&mut plan, &grown, &inst, &alive, &RepairConfig::default());
        assert!(rep.changed(), "added sensors must trigger repair");
        assert!(!rep.full_replan);
        assert_eq!(rep.adopted + rep.recovered, 5);
        assert!(rep.adopted >= 1, "colocated sensor is adopted for free");
        // Full (not just live) validation: every sensor covered again.
        plan.validate(&sensors, grown.range).unwrap();
    }

    #[test]
    fn repair_is_deterministic() {
        let (net, inst, plan0) = setup(100, 6);
        let mut alive = vec![true; 100];
        for pp in plan0.polling_points.iter().take(2) {
            alive[pp.candidate] = false;
        }
        let mut a = plan0.clone();
        let mut b = plan0.clone();
        let ra = repair_plan(&mut a, &net, &inst, &alive, &RepairConfig::default());
        let rb = repair_plan(&mut b, &net, &inst, &alive, &RepairConfig::default());
        assert_eq!(ra, rb);
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_repair_converges() {
        let (net, inst, mut plan) = setup(90, 7);
        let mut alive = vec![true; 90];
        alive[plan.polling_points[0].candidate] = false;
        repair_plan(&mut plan, &net, &inst, &alive, &RepairConfig::default());
        let after_first = plan.clone();
        let rep = repair_plan(&mut plan, &net, &inst, &alive, &RepairConfig::default());
        assert!(!rep.changed(), "second repair must be a no-op");
        assert_eq!(plan, after_first);
    }
}
