//! Network-state tracking: the runtime's view of which sensors are alive,
//! how much energy they have left, and how long live sensors have spent
//! uncovered ("orphaned").
//!
//! The tracker is fed from simulation outputs (per-round energy ledgers)
//! and from the fault plan (scheduled deaths); it never peeks at future
//! faults, so the repair loop observes deaths with the same one-round lag
//! a real deployment would.

use mdg_energy::{Battery, EnergyLedger};

/// Why a sensor died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeathCause {
    /// Killed by the fault plan (hardware failure).
    Fault,
    /// Battery exhausted.
    Energy,
}

/// The runtime's evolving view of the network.
#[derive(Debug, Clone)]
pub struct NetworkState {
    /// Liveness per sensor.
    alive: Vec<bool>,
    /// Batteries (absent when running without an energy budget).
    batteries: Option<Vec<Battery>>,
    /// Simulation clock, seconds.
    pub clock_secs: f64,
    /// Total live-sensor-seconds spent without single-hop coverage.
    pub orphan_secs: f64,
    /// Total (sensor, round) pairs where a live sensor was uncovered.
    pub orphan_sensor_rounds: u64,
    /// Sensors killed by the fault plan.
    pub fault_deaths: usize,
    /// Sensors killed by battery exhaustion.
    pub energy_deaths: usize,
}

impl NetworkState {
    /// Fresh state: everyone alive at `t = 0`, each sensor holding
    /// `battery_j` joules (`None` = unlimited energy).
    pub fn new(n: usize, battery_j: Option<f64>) -> Self {
        NetworkState {
            alive: vec![true; n],
            batteries: battery_j.map(|j| vec![Battery::new(j); n]),
            clock_secs: 0.0,
            orphan_secs: 0.0,
            orphan_sensor_rounds: 0,
            fault_deaths: 0,
            energy_deaths: 0,
        }
    }

    /// The liveness mask.
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// Whether sensor `s` is alive.
    pub fn is_alive(&self, s: usize) -> bool {
        self.alive[s]
    }

    /// Number of live sensors.
    pub fn n_alive(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Residual energy per sensor (`None` without an energy budget;
    /// dead sensors report 0).
    pub fn residual_j(&self) -> Option<Vec<f64>> {
        self.batteries.as_ref().map(|bats| {
            bats.iter()
                .zip(&self.alive)
                .map(|(b, &a)| if a { b.remaining() } else { 0.0 })
                .collect()
        })
    }

    /// Kills sensor `s` (idempotent: killing a dead sensor is a no-op and
    /// is not double-counted).
    pub fn kill(&mut self, s: usize, cause: DeathCause) {
        if !self.alive[s] {
            return;
        }
        self.alive[s] = false;
        match cause {
            DeathCause::Fault => self.fault_deaths += 1,
            DeathCause::Energy => self.energy_deaths += 1,
        }
    }

    /// Charges each live sensor's battery with its share of the round's
    /// ledger and kills the exhausted ones. Returns the newly dead sensor
    /// ids (ascending). No-op without an energy budget.
    pub fn apply_round_energy(&mut self, ledger: &EnergyLedger) -> Vec<usize> {
        let Some(bats) = self.batteries.as_mut() else {
            return Vec::new();
        };
        assert_eq!(bats.len(), ledger.len(), "ledger covers every sensor");
        let mut newly_dead = Vec::new();
        for (s, battery) in bats.iter_mut().enumerate() {
            if !self.alive[s] {
                continue;
            }
            battery.drain(ledger.joules_of(s));
            if battery.is_dead() {
                newly_dead.push(s);
            }
        }
        for &s in &newly_dead {
            self.kill(s, DeathCause::Energy);
        }
        newly_dead
    }

    /// Records that `orphans` live sensors went uncovered for a round of
    /// the given duration.
    pub fn note_orphans(&mut self, orphans: usize, round_secs: f64) {
        self.orphan_secs += orphans as f64 * round_secs;
        self.orphan_sensor_rounds += orphans as u64;
    }

    /// Advances the simulation clock.
    pub fn advance(&mut self, secs: f64) {
        assert!(secs >= 0.0 && secs.is_finite(), "round duration");
        self.clock_secs += secs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdg_energy::RadioModel;

    #[test]
    fn kill_is_idempotent_and_counted_by_cause() {
        let mut st = NetworkState::new(4, None);
        st.kill(1, DeathCause::Fault);
        st.kill(1, DeathCause::Energy);
        st.kill(2, DeathCause::Energy);
        assert_eq!(st.n_alive(), 2);
        assert_eq!(st.fault_deaths, 1);
        assert_eq!(st.energy_deaths, 1);
        assert_eq!(st.alive(), &[true, false, false, true]);
    }

    #[test]
    fn energy_depletion_kills() {
        let mut st = NetworkState::new(2, Some(1e-4));
        let mut ledger = EnergyLedger::new(2, RadioModel::default());
        // Sensor 0 transmits far enough to exhaust its 0.1 mJ budget.
        for _ in 0..100 {
            ledger.record_tx(0, 30.0);
        }
        let dead = st.apply_round_energy(&ledger);
        assert_eq!(dead, vec![0]);
        assert_eq!(st.energy_deaths, 1);
        assert!(st.is_alive(1));
        let res = st.residual_j().unwrap();
        assert_eq!(res[0], 0.0);
        assert!(res[1] > 0.0);
    }

    #[test]
    fn no_budget_means_no_energy_deaths() {
        let mut st = NetworkState::new(2, None);
        let mut ledger = EnergyLedger::new(2, RadioModel::default());
        for _ in 0..1_000 {
            ledger.record_tx(0, 30.0);
        }
        assert!(st.apply_round_energy(&ledger).is_empty());
        assert!(st.residual_j().is_none());
        assert_eq!(st.n_alive(), 2);
    }

    #[test]
    fn orphan_accounting_accumulates() {
        let mut st = NetworkState::new(10, None);
        st.note_orphans(3, 100.0);
        st.note_orphans(0, 50.0);
        st.note_orphans(1, 10.0);
        assert_eq!(st.orphan_secs, 310.0);
        assert_eq!(st.orphan_sensor_rounds, 4);
        st.advance(160.0);
        assert_eq!(st.clock_secs, 160.0);
    }
}
