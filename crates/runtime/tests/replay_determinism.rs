//! The replay determinism contract (`INV-CF-DETERMINISTIC`), regression-
//! tested: original-policy replay reproduces the recorded trace
//! byte-for-byte across many seeded fields and at different worker-thread
//! counts, and counterfactual divergence output is bit-identical at any
//! thread count. Also locks in the bundle-format guard rails: legacy
//! headerless traces and future versions are rejected with clear errors.

use mdg_core::ShdgPlanner;
use mdg_runtime::replay::{sweep_to_jsonl, MAX_SWEEP_VALUES};
use mdg_runtime::{
    parse_bundle, FaultConfig, GatheringRuntime, PolicyOverrides, ReplayEngine, ReplayError,
    ReplayManifest, RuntimeConfig, SweepSpec, TopologyManifest, TraceHeader, TraceWriter,
};

/// Records a headered bundle on a uniform field fully determined by
/// `seed` (the deployment seed and the fault seed are both derived from
/// it, matching what `mdg runtime --trace` does).
fn record(seed: u64) -> String {
    let manifest = ReplayManifest {
        topology: TopologyManifest::Uniform {
            n: 40,
            side: 180.0,
            seed,
        },
        range: 30.0,
        config: RuntimeConfig {
            faults: FaultConfig {
                seed,
                death_rate: 0.15,
                death_horizon_secs: 2_500.0,
                loss_rate: 0.2,
                max_retries: 2,
                backoff_secs: 0.2,
                ..FaultConfig::default()
            },
            max_rounds: 5,
            ..RuntimeConfig::default()
        },
    };
    let net = manifest.network();
    let plan = ShdgPlanner::new().plan(&net).unwrap();
    let mut tw = TraceWriter::with_header(Vec::new(), &TraceHeader::new(manifest.clone())).unwrap();
    GatheringRuntime::new(net, plan, manifest.config)
        .run_traced(&mut tw)
        .unwrap();
    String::from_utf8(tw.into_inner().unwrap()).unwrap()
}

fn engine_for(text: &str) -> ReplayEngine {
    ReplayEngine::from_bundle(&parse_bundle(text).unwrap()).unwrap()
}

/// Original-policy replay reproduces the recording exactly on 20
/// independently seeded fields — the CI self-check gate, in miniature,
/// across enough worlds to catch a seed-dependent drift.
#[test]
fn self_check_holds_across_twenty_seeded_fields() {
    for seed in 0..20u64 {
        let text = record(seed);
        let report = engine_for(&text).self_check();
        assert!(
            report.ok(),
            "seed {seed}: {} divergent rounds, first diff {:?}",
            report.divergent_rounds.len(),
            report.first_diff
        );
    }
}

/// Self-check and divergence output are bit-identical at 1 and 4 worker
/// threads. One test drives both counts because the thread policy is a
/// process-wide global; interleaving with other tests would make the
/// counts unobservable (the *results* stay identical either way — that
/// is the invariant).
#[test]
fn replay_output_is_bit_identical_across_thread_counts() {
    let text = record(33);
    let engine = engine_for(&text);
    let spec = SweepSpec::parse("retry_budget=0..4").unwrap();

    let run_all = || {
        let ok = engine.self_check().ok();
        let cf = engine.replay(&PolicyOverrides {
            max_retries: Some(0),
            ..PolicyOverrides::default()
        });
        let jsonl = sweep_to_jsonl(&engine.sweep(&spec).unwrap());
        (ok, cf, jsonl)
    };

    mdg_par::set_threads(1);
    let at_1 = run_all();
    mdg_par::set_threads(4);
    let at_4 = run_all();
    mdg_par::set_threads(0);

    assert!(at_1.0 && at_4.0, "self-check must pass at any thread count");
    assert_eq!(
        at_1.1, at_4.1,
        "counterfactual result must not depend on threads"
    );
    assert_eq!(
        at_1.2, at_4.2,
        "sweep JSONL must be byte-identical at 1 vs 4 threads"
    );
    assert!(
        !at_1.2.is_empty(),
        "a 20% loss run must diverge somewhere in the sweep"
    );
}

/// Replaying the recorded policy explicitly (not via self_check) yields
/// zero divergences — the no-op counterfactual is exact.
#[test]
fn noop_counterfactual_is_exact() {
    let text = record(7);
    let engine = engine_for(&text);
    let r = engine.replay(&PolicyOverrides::default());
    assert!(r.divergences.is_empty());
    assert_eq!(r.original, r.counterfactual);
}

/// A legacy headerless trace parses fine as records but cannot be
/// replayed, and the error tells the user to re-record.
#[test]
fn legacy_trace_parses_but_cannot_replay() {
    let text = record(1);
    let legacy: String = text.lines().skip(1).map(|l| format!("{l}\n")).collect();
    let bundle = parse_bundle(&legacy).unwrap();
    assert!(bundle.header.is_none(), "stripped trace must look legacy");
    assert_eq!(bundle.records.len(), 5);
    let err = ReplayEngine::from_bundle(&bundle).unwrap_err();
    assert_eq!(err, ReplayError::MissingHeader);
    assert!(err.to_string().contains("re-record"), "{err}");
}

/// A bundle stamped with a future format version is rejected at parse
/// time with a message naming the problem.
#[test]
fn future_format_version_is_rejected() {
    let text = record(1);
    let bumped = text.replacen("\"version\":1", "\"version\":99", 1);
    let err = parse_bundle(&bumped).unwrap_err();
    assert!(err.contains("newer than this binary supports"), "{err}");
}

/// Sweep bounds are enforced: the 21st value is one too many, matching
/// the bd-2fa ParameterSweep cap of 20.
#[test]
fn sweep_bound_is_twenty_values() {
    assert_eq!(MAX_SWEEP_VALUES, 20);
    assert!(SweepSpec::new("retry_budget", (0..20).map(f64::from).collect()).is_ok());
    assert!(matches!(
        SweepSpec::new("retry_budget", (0..21).map(f64::from).collect()),
        Err(ReplayError::TooManyValues(21))
    ));
    assert!(matches!(
        SweepSpec::parse("retry_budget=0..20"),
        Err(ReplayError::TooManyValues(21))
    ));
}
