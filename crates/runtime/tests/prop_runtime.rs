//! Property-based tests for plan repair: across randomized fault
//! scenarios, a repaired plan must (a) keep every live sensor single-hop
//! covered and (b) stay within 1.5× of a from-scratch re-plan's tour.

use mdg_core::ShdgPlanner;
use mdg_cover::CoverageInstance;
use mdg_net::{Deployment, DeploymentConfig, Network};
use mdg_runtime::{repair_plan, RepairConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A network plus a random alive mask (kill up to 40% of the sensors).
fn arb_scenario() -> impl Strategy<Value = (Network, Vec<bool>)> {
    (20usize..120, any::<u64>(), any::<u64>(), 0.0..0.4f64).prop_map(
        |(n, net_seed, kill_seed, death_rate)| {
            let net = Network::build(DeploymentConfig::uniform(n, 200.0).generate(net_seed), 30.0);
            let mut rng = StdRng::seed_from_u64(kill_seed);
            let alive: Vec<bool> = (0..n).map(|_| !rng.gen_bool(death_rate)).collect();
            (net, alive)
        },
    )
}

/// Tour length of a from-scratch plan over only the live sensors.
fn full_replan_length(net: &Network, alive: &[bool]) -> f64 {
    let live: Vec<_> = net
        .deployment
        .sensors
        .iter()
        .zip(alive)
        .filter(|(_, &a)| a)
        .map(|(&p, _)| p)
        .collect();
    if live.is_empty() {
        return 0.0;
    }
    let sub = Network::build(
        Deployment {
            sensors: live,
            sink: net.deployment.sink,
            field: net.deployment.field,
        },
        net.range,
    );
    ShdgPlanner::new().plan(&sub).unwrap().tour_length
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    #[test]
    fn repair_covers_all_live_sensors_with_bounded_tour((net, alive) in arb_scenario()) {
        let mut plan = ShdgPlanner::new().plan(&net).unwrap();
        let inst = CoverageInstance::sensor_sites(&net.deployment.sensors, net.range);
        repair_plan(&mut plan, &net, &inst, &alive, &RepairConfig::default());

        // (a) Coverage invariant: every live sensor single-hop covered by
        //     an in-range polling point.
        prop_assert!(
            plan.validate_live(&net.deployment.sensors, net.range, &alive).is_ok(),
            "repaired plan fails live validation: {:?}",
            plan.validate_live(&net.deployment.sensors, net.range, &alive)
        );

        // (b) Quality: the incrementally repaired tour stays within 1.5×
        //     of re-planning the surviving sub-network from scratch.
        let scratch = full_replan_length(&net, &alive);
        prop_assert!(
            plan.tour_length <= 1.5 * scratch + 1e-6,
            "repaired tour {} vs 1.5 × scratch {}",
            plan.tour_length,
            scratch
        );
    }

    #[test]
    fn repair_is_idempotent((net, alive) in arb_scenario()) {
        let mut plan = ShdgPlanner::new().plan(&net).unwrap();
        let inst = CoverageInstance::sensor_sites(&net.deployment.sensors, net.range);
        repair_plan(&mut plan, &net, &inst, &alive, &RepairConfig::default());
        let repaired = plan.clone();
        let second = repair_plan(&mut plan, &net, &inst, &alive, &RepairConfig::default());
        prop_assert!(!second.changed(), "second repair must be a no-op: {second:?}");
        prop_assert_eq!(plan, repaired);
    }
}
