//! Determinism regression: the whole runtime — planner, fault plan,
//! per-round fault draws, repair, trace serialization — must be a pure
//! function of `(deployment seed, fault seed, config)`. Same seed,
//! byte-identical JSONL trace.

use mdg_core::ShdgPlanner;
use mdg_net::{DeploymentConfig, Network};
use mdg_runtime::{
    parse_trace, FaultConfig, GatheringRuntime, RepairPolicy, RuntimeConfig, TraceWriter,
};

fn trace_bytes(deploy_seed: u64, cfg: RuntimeConfig) -> Vec<u8> {
    let net = Network::build(
        DeploymentConfig::uniform(80, 200.0).generate(deploy_seed),
        30.0,
    );
    let plan = ShdgPlanner::new().plan(&net).unwrap();
    let mut rt = GatheringRuntime::new(net, plan, cfg);
    let mut tw = TraceWriter::new(Vec::new());
    rt.run_traced(&mut tw).unwrap();
    tw.into_inner().unwrap()
}

fn faulty_config(fault_seed: u64, policy: RepairPolicy) -> RuntimeConfig {
    RuntimeConfig {
        faults: FaultConfig {
            seed: fault_seed,
            death_rate: 0.15,
            death_horizon_secs: 5_000.0,
            loss_rate: 0.1,
            max_retries: 3,
            backoff_secs: 0.2,
            ..FaultConfig::default()
        },
        policy,
        max_rounds: 12,
        ..RuntimeConfig::default()
    }
}

#[test]
fn same_seed_same_trace_bytes() {
    for policy in [RepairPolicy::Static, RepairPolicy::Repair] {
        let a = trace_bytes(3, faulty_config(42, policy));
        let b = trace_bytes(3, faulty_config(42, policy));
        assert_eq!(a, b, "{policy:?} trace must replay byte-identically");
        assert!(!a.is_empty());
    }
}

#[test]
fn different_fault_seeds_diverge() {
    let a = trace_bytes(3, faulty_config(1, RepairPolicy::Repair));
    let b = trace_bytes(3, faulty_config(2, RepairPolicy::Repair));
    assert_ne!(a, b, "fault seed must steer the run");
}

#[test]
fn trace_parses_back_and_is_consistent() {
    let bytes = trace_bytes(5, faulty_config(7, RepairPolicy::Repair));
    let records = parse_trace(std::str::from_utf8(&bytes).unwrap()).unwrap();
    assert_eq!(records.len(), 12);
    let mut clock = 0.0;
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.round as usize, i);
        assert!(
            (r.t_start_secs - clock).abs() < 1e-9,
            "round {i} start time"
        );
        clock += r.duration_secs;
        assert!(r.delivered <= r.expected);
        assert!(r.n_alive <= 80);
        assert!(r.orphans <= r.n_alive);
    }
    // Orphan seconds accumulate monotonically.
    for w in records.windows(2) {
        assert!(w[1].orphan_secs_total >= w[0].orphan_secs_total);
    }
}

#[test]
fn reports_replay_identically_too() {
    let run = || {
        let net = Network::build(DeploymentConfig::uniform(60, 200.0).generate(9), 30.0);
        let plan = ShdgPlanner::new().plan(&net).unwrap();
        let mut rt = GatheringRuntime::new(net, plan, faulty_config(9, RepairPolicy::Repair));
        let mut rep = rt.run();
        // Wall-clock repair latency is machine-dependent by design; every
        // other field must replay.
        rep.repair_wall_micros = 0;
        rep
    };
    assert_eq!(run(), run());
}
