//! Property-based round-trip tests for the JSONL trace format: every
//! field of a [`RoundRecord`] must survive serialize → parse exactly, and
//! serialization must be deterministic (byte-identical re-encodes), for
//! arbitrary records — not just the hand-picked samples in the unit tests.

use mdg_runtime::{
    parse_bundle, parse_trace, FaultConfig, ReplayManifest, RoundRecord, RuntimeConfig,
    TopologyManifest, TraceHeader, TraceWriter,
};
use proptest::prelude::*;

/// Arbitrary `RoundRecord` covering the full range of every field.
///
/// The vendored proptest caps tuple strategies at arity 6, so the 17
/// fields are generated as three nested tuples. Float fields use
/// `any::<f64>()`, which is finite by construction — the trace format
/// (like JSON itself) only represents finite floats.
fn arb_record() -> impl Strategy<Value = RoundRecord> {
    (
        (
            any::<u64>(),
            any::<f64>(),
            any::<f64>(),
            any::<usize>(),
            any::<usize>(),
            any::<usize>(),
        ),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<usize>(),
            any::<f64>(),
            any::<bool>(),
        ),
        (
            any::<usize>(),
            any::<usize>(),
            any::<bool>(),
            any::<u64>(),
            any::<f64>(),
        ),
    )
        .prop_map(
            |(
                (round, t_start_secs, duration_secs, n_alive, delivered, expected),
                (retries, attempt_failures, drops, orphans, orphan_secs_total, repaired),
                (stops_removed, stops_added, full_replan, repair_ops, tour_length_m),
            )| RoundRecord {
                round,
                t_start_secs,
                duration_secs,
                n_alive,
                delivered,
                expected,
                retries,
                attempt_failures,
                drops,
                orphans,
                orphan_secs_total,
                repaired,
                stops_removed,
                stops_added,
                full_replan,
                repair_ops,
                tour_length_m,
            },
        )
}

/// Arbitrary bundle header: a uniform-topology manifest with randomized
/// deployment and fault knobs (the fields replay actually reconstructs
/// from).
fn arb_header() -> impl Strategy<Value = TraceHeader> {
    (
        any::<u64>(),
        1usize..10_000,
        any::<f64>(),
        any::<f64>(),
        any::<u32>(),
        1u64..1_000,
    )
        .prop_map(|(seed, n, side, rate, max_retries, max_rounds)| {
            TraceHeader::new(ReplayManifest {
                topology: TopologyManifest::Uniform { n, side, seed },
                range: side / 8.0,
                config: RuntimeConfig {
                    faults: FaultConfig {
                        seed,
                        loss_rate: rate.fract().abs(),
                        max_retries,
                        ..FaultConfig::default()
                    },
                    max_rounds,
                    ..RuntimeConfig::default()
                },
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// serialize → parse is the identity on every field.
    #[test]
    fn single_record_round_trips_exactly(rec in arb_record()) {
        let mut w = TraceWriter::new(Vec::new());
        w.record(&rec).unwrap();
        prop_assert_eq!(w.records_written(), 1);
        let text = String::from_utf8(w.into_inner().unwrap()).unwrap();
        let back = parse_trace(&text).unwrap();
        prop_assert_eq!(back.len(), 1);
        prop_assert_eq!(&back[0], &rec);
    }

    /// Whole traces round-trip in order, and re-serializing the parsed
    /// records reproduces the original bytes (canonical encoding).
    #[test]
    fn traces_round_trip_and_reserialize_byte_identically(
        recs in proptest::collection::vec(arb_record(), 0..8)
    ) {
        let mut w = TraceWriter::new(Vec::new());
        for r in &recs {
            w.record(r).unwrap();
        }
        let text = String::from_utf8(w.into_inner().unwrap()).unwrap();
        let back = parse_trace(&text).unwrap();
        prop_assert_eq!(&back, &recs);

        let mut w2 = TraceWriter::new(Vec::new());
        for r in &back {
            w2.record(r).unwrap();
        }
        let text2 = String::from_utf8(w2.into_inner().unwrap()).unwrap();
        prop_assert_eq!(text2, text);
    }

    /// Headered bundles round-trip: the header (manifest included) and
    /// every record survive write → parse, and re-writing the parsed
    /// bundle reproduces the original bytes (canonical encoding extends
    /// to the header line).
    #[test]
    fn headered_bundles_round_trip_and_reserialize_byte_identically(
        header in arb_header(),
        recs in proptest::collection::vec(arb_record(), 0..8)
    ) {
        let mut w = TraceWriter::with_header(Vec::new(), &header).unwrap();
        for r in &recs {
            w.record(r).unwrap();
        }
        let text = String::from_utf8(w.into_inner().unwrap()).unwrap();

        let bundle = parse_bundle(&text).unwrap();
        prop_assert_eq!(bundle.header.as_ref(), Some(&header));
        prop_assert_eq!(&bundle.records, &recs);
        // parse_trace skips the header and still yields the records.
        prop_assert_eq!(&parse_trace(&text).unwrap(), &recs);

        let mut w2 = TraceWriter::with_header(Vec::new(), bundle.header.as_ref().unwrap()).unwrap();
        for r in &bundle.records {
            w2.record(r).unwrap();
        }
        let text2 = String::from_utf8(w2.into_inner().unwrap()).unwrap();
        prop_assert_eq!(text2, text);
    }
}

/// Exact float edge cases the random strategy is unlikely to hit: zero,
/// negative zero, subnormals, and the extremes of the finite range.
#[test]
fn float_edge_values_round_trip() {
    for v in [
        0.0,
        -0.0,
        f64::MIN_POSITIVE,
        5e-324,
        f64::MAX,
        f64::MIN,
        1.0 / 3.0,
        -123456789.000000001,
    ] {
        let rec = RoundRecord {
            round: 0,
            t_start_secs: v,
            duration_secs: v,
            n_alive: 0,
            delivered: 0,
            expected: 0,
            retries: 0,
            attempt_failures: 0,
            drops: 0,
            orphans: 0,
            orphan_secs_total: v,
            repaired: false,
            stops_removed: 0,
            stops_added: 0,
            full_replan: false,
            repair_ops: 0,
            tour_length_m: v,
        };
        let mut w = TraceWriter::new(Vec::new());
        w.record(&rec).unwrap();
        let text = String::from_utf8(w.into_inner().unwrap()).unwrap();
        let back = parse_trace(&text).unwrap();
        assert_eq!(back[0], rec, "edge float {v:e} did not round-trip");
    }
}
