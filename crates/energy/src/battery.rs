//! Per-node battery with drain accounting.

use serde::{Deserialize, Serialize};

/// A sensor battery holding a finite energy reserve in joules.
///
/// Draining past empty clamps at zero and marks the node dead; the death
/// event (first transition to empty) is reported exactly once so the
/// lifetime simulator can record the round of first death.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity: f64,
    remaining: f64,
}

impl Battery {
    /// A fresh battery with `capacity` joules.
    ///
    /// # Panics
    /// Panics if `capacity` is negative or non-finite.
    pub fn new(capacity: f64) -> Self {
        assert!(
            capacity >= 0.0 && capacity.is_finite(),
            "capacity must be non-negative"
        );
        Battery {
            capacity,
            remaining: capacity,
        }
    }

    /// Initial capacity in joules.
    #[inline]
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Remaining energy in joules.
    #[inline]
    pub fn remaining(&self) -> f64 {
        self.remaining
    }

    /// Energy consumed so far in joules.
    #[inline]
    pub fn consumed(&self) -> f64 {
        self.capacity - self.remaining
    }

    /// Fraction of capacity remaining in `[0, 1]` (1 for a zero-capacity
    /// battery, which is considered dead).
    pub fn fraction(&self) -> f64 {
        if self.capacity <= 0.0 {
            0.0
        } else {
            self.remaining / self.capacity
        }
    }

    /// Returns `true` once the battery is exhausted.
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.remaining <= 0.0
    }

    /// Drains `joules`; returns `true` iff this drain killed the node
    /// (i.e. the battery transitioned from alive to dead).
    pub fn drain(&mut self, joules: f64) -> bool {
        debug_assert!(joules >= 0.0, "drain must be non-negative");
        if self.is_dead() {
            return false;
        }
        self.remaining -= joules;
        if self.remaining <= 0.0 {
            self.remaining = 0.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_battery() {
        let b = Battery::new(2.0);
        assert_eq!(b.capacity(), 2.0);
        assert_eq!(b.remaining(), 2.0);
        assert_eq!(b.consumed(), 0.0);
        assert_eq!(b.fraction(), 1.0);
        assert!(!b.is_dead());
    }

    #[test]
    fn drain_accounting() {
        let mut b = Battery::new(1.0);
        assert!(!b.drain(0.25));
        assert_eq!(b.remaining(), 0.75);
        assert_eq!(b.consumed(), 0.25);
        assert!((b.fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn death_reported_once() {
        let mut b = Battery::new(1.0);
        assert!(!b.drain(0.6));
        assert!(b.drain(0.6), "this drain crosses zero");
        assert!(b.is_dead());
        assert_eq!(b.remaining(), 0.0);
        assert!(!b.drain(0.1), "already dead: no second death event");
        assert_eq!(b.remaining(), 0.0, "clamped at zero");
        assert_eq!(b.consumed(), 1.0);
    }

    #[test]
    fn exact_depletion_is_death() {
        let mut b = Battery::new(0.5);
        assert!(b.drain(0.5));
        assert!(b.is_dead());
    }

    #[test]
    fn zero_capacity_battery_is_dead() {
        let b = Battery::new(0.0);
        assert!(b.is_dead());
        assert_eq!(b.fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn negative_capacity_panics() {
        Battery::new(-1.0);
    }
}
