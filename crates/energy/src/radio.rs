//! The first-order radio energy model.

use serde::{Deserialize, Serialize};

/// First-order radio model parameters.
///
/// Defaults follow the values ubiquitous in the WSN literature
/// (Heinzelman et al.): `E_elec = 50 nJ/bit`, `ε_amp = 100 pJ/bit/m²`,
/// free-space path loss exponent `α = 2`, 4000-bit packets.
/// ```
/// use mdg_energy::RadioModel;
///
/// let radio = RadioModel::default();
/// // A relayed hop costs the relay both a reception and a transmission —
/// // the overhead single-hop mobile collection eliminates.
/// assert!(radio.relay_cost(20.0) > radio.tx_cost(20.0));
/// assert!(radio.tx_cost(40.0) > radio.tx_cost(20.0), "amplifier cost grows with d^α");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioModel {
    /// Electronics energy per bit, joules (runs for both TX and RX).
    pub e_elec: f64,
    /// Amplifier energy per bit per m^α, joules.
    pub e_amp: f64,
    /// Path-loss exponent (2 for free space, up to 4 for multi-path).
    pub alpha: f64,
    /// Packet size in bits.
    pub packet_bits: f64,
}

impl Default for RadioModel {
    fn default() -> Self {
        RadioModel {
            e_elec: 50e-9,
            e_amp: 100e-12,
            alpha: 2.0,
            packet_bits: 4000.0,
        }
    }
}

impl RadioModel {
    /// Creates a model, validating parameters.
    ///
    /// # Panics
    /// Panics if any parameter is negative or non-finite, or if
    /// `packet_bits` is zero.
    pub fn new(e_elec: f64, e_amp: f64, alpha: f64, packet_bits: f64) -> Self {
        assert!(
            e_elec >= 0.0 && e_elec.is_finite(),
            "e_elec must be non-negative"
        );
        assert!(
            e_amp >= 0.0 && e_amp.is_finite(),
            "e_amp must be non-negative"
        );
        assert!(alpha >= 1.0 && alpha.is_finite(), "alpha must be >= 1");
        assert!(
            packet_bits > 0.0 && packet_bits.is_finite(),
            "packet_bits must be positive"
        );
        RadioModel {
            e_elec,
            e_amp,
            alpha,
            packet_bits,
        }
    }

    /// Energy to transmit one packet over distance `d` meters.
    #[inline]
    pub fn tx_cost(&self, d: f64) -> f64 {
        debug_assert!(d >= 0.0, "distance must be non-negative");
        self.packet_bits * (self.e_elec + self.e_amp * d.powf(self.alpha))
    }

    /// Energy to receive one packet.
    #[inline]
    pub fn rx_cost(&self) -> f64 {
        self.packet_bits * self.e_elec
    }

    /// Energy for one relay hop over distance `d`: the relay both receives
    /// and retransmits the packet.
    #[inline]
    pub fn relay_cost(&self, d: f64) -> f64 {
        self.rx_cost() + self.tx_cost(d)
    }

    /// Total network energy to deliver one packet along a multi-hop path
    /// with the given hop distances: the source transmits, every
    /// intermediate node receives and retransmits, and the final reception
    /// is charged to the destination (sink receptions are usually free in
    /// lifetime terms, so callers may subtract [`RadioModel::rx_cost`]).
    pub fn path_cost(&self, hop_distances: &[f64]) -> f64 {
        if hop_distances.is_empty() {
            return 0.0;
        }
        let tx: f64 = hop_distances.iter().map(|&d| self.tx_cost(d)).sum();
        let rx = self.rx_cost() * hop_distances.len() as f64;
        tx + rx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_values_sane() {
        let m = RadioModel::default();
        // 4000 bits at 50 nJ/bit = 0.2 mJ of electronics energy per op.
        assert!((m.rx_cost() - 0.0002).abs() < 1e-12);
        // TX at d = 0 equals the electronics-only cost.
        assert!((m.tx_cost(0.0) - m.rx_cost()).abs() < 1e-15);
    }

    #[test]
    fn tx_grows_quadratically_at_alpha2() {
        let m = RadioModel::default();
        let amp10 = m.tx_cost(10.0) - m.rx_cost();
        let amp20 = m.tx_cost(20.0) - m.rx_cost();
        assert!((amp20 / amp10 - 4.0).abs() < 1e-9, "d² scaling");
    }

    #[test]
    fn alpha4_model() {
        let m = RadioModel::new(50e-9, 100e-12, 4.0, 4000.0);
        let amp10 = m.tx_cost(10.0) - m.rx_cost();
        let amp20 = m.tx_cost(20.0) - m.rx_cost();
        assert!((amp20 / amp10 - 16.0).abs() < 1e-9, "d⁴ scaling");
    }

    #[test]
    fn relay_is_rx_plus_tx() {
        let m = RadioModel::default();
        assert!((m.relay_cost(25.0) - (m.rx_cost() + m.tx_cost(25.0))).abs() < 1e-18);
    }

    #[test]
    fn path_cost_accumulates_hops() {
        let m = RadioModel::default();
        let hops = [10.0, 20.0, 15.0];
        let expect = m.tx_cost(10.0) + m.tx_cost(20.0) + m.tx_cost(15.0) + 3.0 * m.rx_cost();
        assert!((m.path_cost(&hops) - expect).abs() < 1e-15);
        assert_eq!(m.path_cost(&[]), 0.0);
    }

    #[test]
    fn single_hop_beats_two_relays_of_same_total_length() {
        // Core premise of mobile collection: one short hop beats a relayed
        // path because every relay pays the electronics cost twice.
        let m = RadioModel::default();
        assert!(m.path_cost(&[15.0]) < m.path_cost(&[7.5, 7.5]));
    }

    #[test]
    #[should_panic(expected = "packet_bits")]
    fn zero_packet_panics() {
        RadioModel::new(50e-9, 100e-12, 2.0, 0.0);
    }
}
