//! Per-node energy expenditure ledger.

use crate::radio::RadioModel;
use crate::stats::Summary;
use serde::{Deserialize, Serialize};

/// Accumulates per-node transmission/reception counts and joules over a
/// simulation, independent of (and in addition to) battery state.
///
/// The ledger is the measurement instrument behind the energy and
/// uniformity figures: schemes are compared on `total_joules`, per-node
/// distributions, and transmission counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyLedger {
    tx_count: Vec<u64>,
    rx_count: Vec<u64>,
    joules: Vec<f64>,
    model: RadioModel,
}

impl EnergyLedger {
    /// A zeroed ledger for `n` nodes under `model`.
    pub fn new(n: usize, model: RadioModel) -> Self {
        EnergyLedger {
            tx_count: vec![0; n],
            rx_count: vec![0; n],
            joules: vec![0.0; n],
            model,
        }
    }

    /// Number of tracked nodes.
    pub fn len(&self) -> usize {
        self.joules.len()
    }

    /// Returns `true` if the ledger tracks no nodes.
    pub fn is_empty(&self) -> bool {
        self.joules.is_empty()
    }

    /// The radio model used for costing.
    pub fn model(&self) -> &RadioModel {
        &self.model
    }

    /// Records `node` transmitting one packet over `dist` meters. Returns
    /// the joules charged.
    pub fn record_tx(&mut self, node: usize, dist: f64) -> f64 {
        let e = self.model.tx_cost(dist);
        self.tx_count[node] += 1;
        self.joules[node] += e;
        e
    }

    /// Records `node` receiving one packet. Returns the joules charged.
    pub fn record_rx(&mut self, node: usize) -> f64 {
        let e = self.model.rx_cost();
        self.rx_count[node] += 1;
        self.joules[node] += e;
        e
    }

    /// Transmissions by `node`.
    pub fn tx_of(&self, node: usize) -> u64 {
        self.tx_count[node]
    }

    /// Receptions by `node`.
    pub fn rx_of(&self, node: usize) -> u64 {
        self.rx_count[node]
    }

    /// Joules spent by `node`.
    pub fn joules_of(&self, node: usize) -> f64 {
        self.joules[node]
    }

    /// Total transmissions across all nodes.
    pub fn total_tx(&self) -> u64 {
        self.tx_count.iter().sum()
    }

    /// Total receptions across all nodes.
    pub fn total_rx(&self) -> u64 {
        self.rx_count.iter().sum()
    }

    /// Total joules across all nodes.
    pub fn total_joules(&self) -> f64 {
        self.joules.iter().sum()
    }

    /// Per-node joules slice.
    pub fn joules_per_node(&self) -> &[f64] {
        &self.joules
    }

    /// Statistical summary of per-node joules.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.joules)
    }

    /// Jain's fairness index of the per-node energy expenditure
    /// (1 = perfectly uniform).
    pub fn fairness(&self) -> f64 {
        crate::stats::jain_index(&self.joules)
    }

    /// Merges another ledger (same node count and model) into this one.
    ///
    /// # Panics
    /// Panics on mismatched lengths.
    pub fn merge(&mut self, other: &EnergyLedger) {
        assert_eq!(self.len(), other.len(), "ledger size mismatch");
        for i in 0..self.len() {
            self.tx_count[i] += other.tx_count[i];
            self.rx_count[i] += other.rx_count[i];
            self.joules[i] += other.joules[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> EnergyLedger {
        EnergyLedger::new(3, RadioModel::default())
    }

    #[test]
    fn records_accumulate() {
        let mut l = ledger();
        let e_tx = l.record_tx(0, 20.0);
        let e_rx = l.record_rx(1);
        assert!(e_tx > e_rx, "tx over distance costs more than rx");
        assert_eq!(l.tx_of(0), 1);
        assert_eq!(l.rx_of(1), 1);
        assert_eq!(l.tx_of(2), 0);
        assert!((l.joules_of(0) - e_tx).abs() < 1e-18);
        assert!((l.total_joules() - (e_tx + e_rx)).abs() < 1e-18);
        assert_eq!(l.total_tx(), 1);
        assert_eq!(l.total_rx(), 1);
    }

    #[test]
    fn energy_conservation_against_model() {
        // Ledger totals must equal hand-computed model costs.
        let mut l = ledger();
        let m = *l.model();
        l.record_tx(0, 10.0);
        l.record_tx(0, 30.0);
        l.record_rx(2);
        let expect = m.tx_cost(10.0) + m.tx_cost(30.0) + m.rx_cost();
        assert!((l.total_joules() - expect).abs() < 1e-18);
    }

    #[test]
    fn fairness_of_uniform_load_is_one() {
        let mut l = ledger();
        for node in 0..3 {
            l.record_tx(node, 15.0);
        }
        assert!((l.fairness() - 1.0).abs() < 1e-12);
        // Skewing the load drops fairness.
        l.record_tx(0, 50.0);
        l.record_tx(0, 50.0);
        assert!(l.fairness() < 0.99);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = ledger();
        let mut b = ledger();
        a.record_tx(0, 10.0);
        b.record_tx(0, 10.0);
        b.record_rx(2);
        a.merge(&b);
        assert_eq!(a.tx_of(0), 2);
        assert_eq!(a.rx_of(2), 1);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn merge_mismatched_sizes_panics() {
        let mut a = ledger();
        let b = EnergyLedger::new(5, RadioModel::default());
        a.merge(&b);
    }
}
