//! Distribution summaries for per-node measurements.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    /// Population standard deviation (÷ n, not n−1): the evaluation treats
    /// the node set as the full population, not a sample.
    pub std_dev: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    /// Computes the summary of `xs`. An empty slice yields all-zero stats.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n: xs.len(),
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Coefficient of variation (`std_dev / mean`), 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// Jain's fairness index `(Σx)² / (n · Σx²)`.
///
/// Ranges from `1/n` (one node carries everything) to `1` (perfectly
/// uniform). By convention an empty or all-zero sample scores `1` (nothing
/// is unfair about zero load).
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq <= 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sum_sq)
}

/// The `q`-quantile (0 ≤ q ≤ 1) of `xs` by linear interpolation between
/// order statistics. Returns 0 for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.cv() - s.std_dev / 2.5).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_and_constant() {
        let e = Summary::of(&[]);
        assert_eq!(e.n, 0);
        assert_eq!(e.mean, 0.0);
        let c = Summary::of(&[7.0; 5]);
        assert_eq!(c.std_dev, 0.0);
        assert_eq!(c.cv(), 0.0);
        assert_eq!(c.min, 7.0);
        assert_eq!(c.max, 7.0);
    }

    #[test]
    fn jain_bounds() {
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One node carries all: index = 1/n.
        assert!((jain_index(&[9.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        // Monotone: more skew, lower index.
        assert!(jain_index(&[4.0, 6.0]) > jain_index(&[1.0, 9.0]));
    }

    #[test]
    fn quantiles() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(quantile(&[], 0.5), 0.0);
        assert_eq!(quantile(&[42.0], 0.3), 42.0);
        // Out-of-range q clamps.
        assert_eq!(quantile(&xs, -1.0), 1.0);
        assert_eq!(quantile(&xs, 2.0), 4.0);
    }
}
