//! # mdg-energy — radio energy model, batteries and energy ledgers
//!
//! Implements the **first-order radio model** standard in the WSN
//! literature (Heinzelman et al.), used by every energy experiment in the
//! reproduction:
//!
//! * transmitting `b` bits over distance `d` costs
//!   `E_tx(b, d) = E_elec · b + ε_amp · b · d^α`,
//! * receiving `b` bits costs `E_rx(b) = E_elec · b`.
//!
//! A relayed packet therefore costs every intermediate hop one reception
//! *and* one transmission — the overhead the mobile collector eliminates by
//! picking packets up in a single hop.
//!
//! [`ledger::EnergyLedger`] accumulates per-node expenditure during a
//! simulation; [`stats`] summarizes distributions (mean, standard
//! deviation, Jain's fairness index) for the uniformity experiments.

pub mod battery;
pub mod ledger;
pub mod radio;
pub mod stats;

pub use battery::Battery;
pub use ledger::EnergyLedger;
pub use radio::RadioModel;
pub use stats::{jain_index, quantile, Summary};
