//! Property-based tests for the energy model.

use mdg_energy::{jain_index, Battery, EnergyLedger, RadioModel, Summary};
use proptest::prelude::*;

fn arb_model() -> impl Strategy<Value = RadioModel> {
    (
        1e-10..1e-7f64,
        1e-13..1e-10f64,
        2.0..4.0f64,
        100.0..10_000.0f64,
    )
        .prop_map(|(e_elec, e_amp, alpha, bits)| RadioModel::new(e_elec, e_amp, alpha, bits))
}

proptest! {
    #[test]
    fn tx_cost_is_monotone_in_distance(model in arb_model(), d1 in 0.0..500.0f64, d2 in 0.0..500.0f64) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(model.tx_cost(lo) <= model.tx_cost(hi) + 1e-18);
        prop_assert!(model.tx_cost(0.0) >= model.rx_cost() - 1e-18, "tx includes the electronics cost");
    }

    #[test]
    fn relaying_always_costs_more_than_one_direct_hop_of_each_leg(
        model in arb_model(),
        legs in proptest::collection::vec(0.1..100.0f64, 1..6),
    ) {
        // Path cost ≥ sum of pure transmission costs (receptions are extra).
        let tx_only: f64 = legs.iter().map(|&d| model.tx_cost(d)).sum();
        prop_assert!(model.path_cost(&legs) >= tx_only);
        // Exactly rx per hop more.
        let expect = tx_only + model.rx_cost() * legs.len() as f64;
        prop_assert!((model.path_cost(&legs) - expect).abs() < 1e-15);
    }

    #[test]
    fn ledger_totals_equal_sum_of_events(
        model in arb_model(),
        events in proptest::collection::vec((0usize..10, 0.0..100.0f64, any::<bool>()), 0..100),
    ) {
        let mut ledger = EnergyLedger::new(10, model);
        let mut expect = 0.0;
        let mut tx = 0u64;
        let mut rx = 0u64;
        for (node, dist, is_tx) in events {
            if is_tx {
                expect += ledger.record_tx(node, dist);
                tx += 1;
            } else {
                expect += ledger.record_rx(node);
                rx += 1;
            }
        }
        prop_assert!((ledger.total_joules() - expect).abs() < 1e-12 * (1.0 + expect));
        prop_assert_eq!(ledger.total_tx(), tx);
        prop_assert_eq!(ledger.total_rx(), rx);
        // Per-node joules sum to the total.
        let per_node: f64 = (0..10).map(|n| ledger.joules_of(n)).sum();
        prop_assert!((per_node - ledger.total_joules()).abs() < 1e-15 * (1.0 + per_node));
    }

    #[test]
    fn battery_never_goes_negative(capacity in 0.0..10.0f64, drains in proptest::collection::vec(0.0..1.0f64, 0..50)) {
        let mut b = Battery::new(capacity);
        let mut deaths = 0;
        for d in drains {
            if b.drain(d) {
                deaths += 1;
            }
            prop_assert!(b.remaining() >= 0.0);
            prop_assert!(b.remaining() <= capacity);
            prop_assert!((b.remaining() + b.consumed() - capacity).abs() < 1e-9);
        }
        prop_assert!(deaths <= 1, "a battery dies at most once");
    }

    #[test]
    fn jain_index_bounds(xs in proptest::collection::vec(0.0..100.0f64, 1..50)) {
        let j = jain_index(&xs);
        prop_assert!(j <= 1.0 + 1e-12);
        prop_assert!(j >= 1.0 / xs.len() as f64 - 1e-12);
        // Scale invariance.
        let scaled: Vec<f64> = xs.iter().map(|x| x * 7.5).collect();
        prop_assert!((jain_index(&scaled) - j).abs() < 1e-9);
    }

    #[test]
    fn summary_is_consistent(xs in proptest::collection::vec(-50.0..50.0f64, 1..60)) {
        let s = Summary::of(&xs);
        prop_assert_eq!(s.n, xs.len());
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
        // Std-dev is bounded by the half-range.
        prop_assert!(s.std_dev <= (s.max - s.min) + 1e-9);
    }
}
