//! Property-based and failure-injection tests for the simulator.

use mdg_core::ShdgPlanner;
use mdg_net::{DeploymentConfig, Network};
use mdg_sim::{
    scenario_from_plan, simulate_lifetime, MobileGatheringSim, MultihopRoutingSim, SimConfig,
};
use proptest::prelude::*;

fn arb_net_and_mask() -> impl Strategy<Value = (Network, Vec<bool>)> {
    (10usize..80, any::<u64>()).prop_flat_map(|(n, seed)| {
        let net = Network::build(DeploymentConfig::uniform(n, 180.0).generate(seed), 30.0);
        let mask = proptest::collection::vec(any::<bool>(), n);
        (Just(net), mask)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Failure injection: any subset of sensors may be dead; the mobile
    /// round must terminate, never over-deliver, and charge energy only to
    /// alive nodes.
    #[test]
    fn mobile_round_survives_any_death_pattern((net, alive) in arb_net_and_mask()) {
        let plan = ShdgPlanner::new().plan(&net).unwrap();
        let scen = scenario_from_plan(&plan, &net.deployment.sensors);
        let sim = MobileGatheringSim::new(scen, SimConfig::default());
        let r = sim.run_round(&alive);
        let n_alive = alive.iter().filter(|&&a| a).count();
        prop_assert_eq!(r.packets_expected, n_alive);
        // SHDG has no relays: every alive sensor's packet IS delivered.
        prop_assert_eq!(r.packets_delivered, n_alive);
        prop_assert!(r.duration_secs >= 0.0);
        #[allow(clippy::needless_range_loop)]
        for s in 0..net.n_sensors() {
            if !alive[s] {
                prop_assert_eq!(r.ledger.tx_of(s), 0, "dead sensor {} transmitted", s);
                prop_assert!(r.ledger.joules_of(s) == 0.0);
            } else {
                prop_assert_eq!(r.ledger.tx_of(s), 1, "alive sensor {} must upload once", s);
            }
        }
    }

    /// The same for multi-hop routing: energy only on the alive subgraph,
    /// delivery = sensors still connected to the sink.
    #[test]
    fn routing_round_survives_any_death_pattern((net, alive) in arb_net_and_mask()) {
        let sim = MultihopRoutingSim::new(&net, SimConfig::default());
        let r = sim.run_round(&alive);
        let n_alive = alive.iter().filter(|&&a| a).count();
        prop_assert_eq!(r.packets_expected, n_alive);
        prop_assert!(r.packets_delivered <= n_alive);
        #[allow(clippy::needless_range_loop)]
        for s in 0..net.n_sensors() {
            if !alive[s] {
                prop_assert_eq!(r.ledger.tx_of(s), 0);
                prop_assert_eq!(r.ledger.rx_of(s), 0);
            }
        }
        // Flow conservation: tx − rx = packets that left the sensor layer.
        prop_assert_eq!(
            r.ledger.total_tx() as i64 - r.ledger.total_rx() as i64,
            r.packets_delivered as i64
        );
    }

    /// Lifetime runs terminate and produce ordered milestones.
    #[test]
    fn lifetime_milestones_are_ordered(seed in any::<u64>(), battery in 0.001..0.1f64) {
        let net = Network::build(DeploymentConfig::uniform(30, 120.0).generate(seed), 30.0);
        let plan = ShdgPlanner::new().plan(&net).unwrap();
        let scen = scenario_from_plan(&plan, &net.deployment.sensors);
        let mut sim = MobileGatheringSim::new(scen, SimConfig::default());
        let life = simulate_lifetime(&mut sim, battery, 1_000_000);
        if let (Some(first), Some(ten)) = (life.first_death_round, life.ten_pct_death_round) {
            prop_assert!(first <= ten);
        }
        if let (Some(ten), Some(half)) = (life.ten_pct_death_round, life.half_death_round) {
            prop_assert!(ten <= half);
        }
        prop_assert!(life.rounds_run >= 1);
        prop_assert!(life.alive_at_end <= net.n_sensors());
    }

    /// Faster collectors and shorter uploads strictly shorten the round.
    #[test]
    fn round_duration_is_monotone_in_parameters(seed in any::<u64>()) {
        let net = Network::build(DeploymentConfig::uniform(40, 150.0).generate(seed), 30.0);
        let plan = ShdgPlanner::new().plan(&net).unwrap();
        let run = |speed: f64, upload: f64| {
            let scen = scenario_from_plan(&plan, &net.deployment.sensors);
            let cfg = SimConfig { speed_mps: speed, upload_secs: upload, ..SimConfig::default() };
            MobileGatheringSim::new(scen, cfg).run().duration_secs
        };
        let slow = run(0.5, 1.0);
        let fast = run(2.0, 1.0);
        let no_pause = run(0.5, 0.0);
        prop_assert!(fast < slow);
        prop_assert!(no_pause <= slow);
    }
}
