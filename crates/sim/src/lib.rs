//! # mdg-sim — discrete-event simulation of data-gathering schemes
//!
//! The paper's evaluation is simulation-only; this crate is the substrate
//! that stands in for the authors' simulator. It provides:
//!
//! * [`queue::EventQueue`] — a time-ordered, FIFO-stable event queue (the
//!   DES core).
//! * [`mobile::MobileGatheringSim`] — simulates one collection round of any
//!   *mobile* scheme: a collector drives a closed tour from the sink,
//!   pauses at stops, and receives packet uploads; packets may first travel
//!   multi-hop relay paths to their uploading node (SHDG uses empty relay
//!   paths — pure single-hop; the CME baseline uses multi-hop relays to
//!   track-adjacent nodes; visit-all uses one stop per sensor).
//! * [`multihop::MultihopRoutingSim`] — simulates rounds of classic
//!   multi-hop relay routing to the static sink over min-hop trees,
//!   rebuilt as nodes die.
//! * [`lifetime`] — drives any [`RoundScheme`] against per-node batteries
//!   until death milestones, producing the network-lifetime figures.
//!
//! Energy accounting uses the first-order radio model from `mdg-energy`;
//! latency uses a configurable per-hop relay delay and collector speed
//! (defaults: 1 m/s collector, 5 ms/hop relay — packet relay is orders of
//! magnitude faster than the collector, the paper's premise).

pub mod bridge;
pub mod collector;
pub mod fleet_sim;
pub mod hooks;
pub mod lifetime;
pub mod mobile;
pub mod multihop;
pub mod queue;
pub mod report;

pub use bridge::scenario_from_plan;
pub use collector::Trajectory;
pub use fleet_sim::{simulate_fleet_round, FleetRoundReport};
pub use hooks::{NoFaults, RoundHooks, SimEvent};
pub use lifetime::{simulate_lifetime, LifetimeReport, RoundScheme};
pub use mobile::{MobileGatheringSim, MobileScenario, Stop, Upload};
pub use multihop::MultihopRoutingSim;
pub use queue::EventQueue;
pub use report::RoundReport;

use mdg_energy::RadioModel;
use serde::{Deserialize, Serialize};

/// Common timing/energy parameters of a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Mobile collector speed in m/s (practical systems: 0.1–2 m/s).
    pub speed_mps: f64,
    /// Pause per packet upload at a stop, seconds.
    pub upload_secs: f64,
    /// Per relay hop forwarding delay, seconds.
    pub hop_secs: f64,
    /// Radio energy model.
    pub radio: RadioModel,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            speed_mps: 1.0,
            upload_secs: 0.5,
            hop_secs: 0.005,
            radio: RadioModel::default(),
        }
    }
}

impl SimConfig {
    /// Validates parameter sanity.
    ///
    /// # Panics
    /// Panics on non-positive speed or negative delays.
    pub fn validate(&self) {
        assert!(self.speed_mps > 0.0, "collector speed must be positive");
        assert!(self.upload_secs >= 0.0, "upload time must be non-negative");
        assert!(self.hop_secs >= 0.0, "hop delay must be non-negative");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        SimConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "speed")]
    fn zero_speed_rejected() {
        SimConfig {
            speed_mps: 0.0,
            ..SimConfig::default()
        }
        .validate();
    }
}
