//! Bridges from planner output to simulation scenarios.

use crate::mobile::{MobileScenario, Stop, Upload};
use mdg_core::GatheringPlan;
use mdg_geom::Point;

/// Converts a [`GatheringPlan`] into a [`MobileScenario`]: one stop per
/// polling point in tour order; every covered sensor uploads in a single
/// hop (empty relay chain) — the SHDG semantics.
pub fn scenario_from_plan(plan: &GatheringPlan, sensors: &[Point]) -> MobileScenario {
    let stops = plan
        .polling_points
        .iter()
        .map(|pp| Stop {
            pos: pp.pos,
            uploads: pp
                .covered
                .iter()
                .map(|&s| Upload::direct(s as usize))
                .collect(),
        })
        .collect();
    MobileScenario {
        sensors: sensors.to_vec(),
        sink: plan.sink,
        stops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MobileGatheringSim, SimConfig};
    use mdg_core::ShdgPlanner;
    use mdg_net::{DeploymentConfig, Network};

    #[test]
    fn plan_round_trips_through_simulation() {
        let net = Network::build(DeploymentConfig::uniform(80, 200.0).generate(2), 30.0);
        let plan = ShdgPlanner::new().plan(&net).unwrap();
        let scen = scenario_from_plan(&plan, &net.deployment.sensors);
        scen.validate().unwrap();
        let sim = MobileGatheringSim::new(scen, SimConfig::default());
        let r = sim.run();
        assert_eq!(r.packets_expected, net.n_sensors());
        assert_eq!(r.packets_delivered, net.n_sensors());
        // SHDG invariant: exactly one transmission per sensor, zero
        // receptions at sensors.
        for s in 0..net.n_sensors() {
            assert_eq!(r.ledger.tx_of(s), 1, "sensor {s}");
            assert_eq!(r.ledger.rx_of(s), 0, "sensor {s}");
        }
        // Round duration ≈ tour time + upload pauses.
        let cfg = SimConfig::default();
        let expect = plan.tour_length / cfg.speed_mps + cfg.upload_secs * net.n_sensors() as f64;
        assert!((r.duration_secs - expect).abs() < 1e-6);
    }
}
