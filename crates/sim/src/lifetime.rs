//! Network-lifetime simulation: rounds against batteries until death
//! milestones.

use crate::report::RoundReport;
use mdg_energy::Battery;

/// Anything that can execute one data-gathering round given the current
/// alive mask. Implemented by [`crate::MobileGatheringSim`] and
/// [`crate::MultihopRoutingSim`].
///
/// `round` must be a *deterministic function of the alive mask*: the
/// lifetime driver reuses a round's report while the mask is unchanged.
pub trait RoundScheme {
    /// Number of sensor nodes.
    fn n_nodes(&self) -> usize;
    /// Executes one round; returns its report (energy, delivery, timing).
    fn round(&mut self, alive: &[bool]) -> RoundReport;
}

/// Outcome of a lifetime simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeReport {
    /// Round at which the first sensor died (1-based), if any sensor died
    /// within the cap.
    pub first_death_round: Option<u64>,
    /// Round at which ≥ 10% of sensors were dead.
    pub ten_pct_death_round: Option<u64>,
    /// Round at which ≥ 50% of sensors were dead.
    pub half_death_round: Option<u64>,
    /// Rounds actually executed.
    pub rounds_run: u64,
    /// Alive sensors at the end.
    pub alive_at_end: usize,
    /// Total packets delivered over the whole simulation.
    pub total_delivered: u64,
}

/// Simulates rounds until ≥ 50% of sensors are dead, energy stops being
/// consumed, or `max_rounds` is reached. All sensors start with
/// `battery_joules`.
///
/// Death is evaluated *between* rounds (a sensor participates fully in the
/// round that kills it — the standard convention in lifetime studies).
///
/// ```
/// use mdg_core::ShdgPlanner;
/// use mdg_net::{DeploymentConfig, Network};
/// use mdg_sim::{scenario_from_plan, simulate_lifetime, MobileGatheringSim, SimConfig};
///
/// let net = Network::build(DeploymentConfig::uniform(40, 150.0).generate(1), 30.0);
/// let plan = ShdgPlanner::new().plan(&net).unwrap();
/// let scen = scenario_from_plan(&plan, &net.deployment.sensors);
/// let mut sim = MobileGatheringSim::new(scen, SimConfig::default());
/// let life = simulate_lifetime(&mut sim, 0.01, 100_000);
/// assert!(life.first_death_round.is_some());
/// ```
pub fn simulate_lifetime<S: RoundScheme>(
    scheme: &mut S,
    battery_joules: f64,
    max_rounds: u64,
) -> LifetimeReport {
    let n = scheme.n_nodes();
    let mut batteries = vec![Battery::new(battery_joules); n];
    let mut alive = vec![true; n];
    let mut report = LifetimeReport {
        first_death_round: None,
        ten_pct_death_round: None,
        half_death_round: None,
        rounds_run: 0,
        alive_at_end: n,
        total_delivered: 0,
    };
    if n == 0 {
        return report;
    }
    let ten_pct = n.div_ceil(10);
    let half = n.div_ceil(2);

    // Both simulators are deterministic functions of the alive mask, and
    // the mask only changes when someone dies — so identical consecutive
    // rounds can reuse the previous report instead of re-simulating.
    // Cloning a ledger is orders of magnitude cheaper than a DES round,
    // which is what makes 10⁴-round lifetimes practical.
    let mut cache: Option<(Vec<bool>, RoundReport)> = None;

    for round in 1..=max_rounds {
        let r = match &cache {
            Some((mask, report)) if *mask == alive => report.clone(),
            _ => {
                let fresh = scheme.round(&alive);
                cache = Some((alive.clone(), fresh.clone()));
                fresh
            }
        };
        report.rounds_run = round;
        report.total_delivered += r.packets_delivered as u64;
        if r.ledger.total_joules() <= 0.0 {
            // Nothing is being spent (e.g. everyone relevant is dead or
            // disconnected): further rounds change nothing.
            break;
        }
        let mut dead = 0usize;
        for node in 0..n {
            if alive[node] {
                batteries[node].drain(r.ledger.joules_of(node));
                if batteries[node].is_dead() {
                    alive[node] = false;
                }
            }
            if !alive[node] {
                dead += 1;
            }
        }
        if dead >= 1 && report.first_death_round.is_none() {
            report.first_death_round = Some(round);
        }
        if dead >= ten_pct && report.ten_pct_death_round.is_none() {
            report.ten_pct_death_round = Some(round);
        }
        if dead >= half && report.half_death_round.is_none() {
            report.half_death_round = Some(round);
            break;
        }
    }
    report.alive_at_end = alive.iter().filter(|&&a| a).count();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdg_energy::{EnergyLedger, RadioModel};

    /// A fake scheme draining fixed joules per round: node 0 drains fast,
    /// node 1 slow, node 2 never.
    struct FakeScheme {
        drains: Vec<f64>,
    }

    impl RoundScheme for FakeScheme {
        fn n_nodes(&self) -> usize {
            self.drains.len()
        }
        fn round(&mut self, alive: &[bool]) -> RoundReport {
            let model = RadioModel {
                e_elec: 1.0,
                e_amp: 0.0,
                alpha: 2.0,
                packet_bits: 1.0,
            };
            let mut ledger = EnergyLedger::new(self.drains.len(), model);
            let mut delivered = 0;
            for (node, &d) in self.drains.iter().enumerate() {
                if alive[node] && d > 0.0 {
                    // Charge `d` joules as d transmissions at distance 0
                    // (e_elec = 1 J/bit, 1-bit packets).
                    for _ in 0..(d as usize) {
                        ledger.record_tx(node, 0.0);
                    }
                    delivered += 1;
                }
            }
            RoundReport {
                duration_secs: 1.0,
                packets_delivered: delivered,
                packets_expected: alive.iter().filter(|&&a| a).count(),
                ledger,
            }
        }
    }

    #[test]
    fn milestones_in_order() {
        // Batteries of 10 J; drains 5, 2, 1 J/round → deaths at rounds 2,
        // 5, 10.
        let mut scheme = FakeScheme {
            drains: vec![5.0, 2.0, 1.0],
        };
        let report = simulate_lifetime(&mut scheme, 10.0, 100);
        assert_eq!(report.first_death_round, Some(2));
        assert_eq!(report.ten_pct_death_round, Some(2), "ceil(0.3) = 1 death");
        assert_eq!(report.half_death_round, Some(5), "ceil(1.5) = 2 deaths");
        assert_eq!(report.rounds_run, 5, "stops at the half-death milestone");
        assert_eq!(report.alive_at_end, 1);
    }

    #[test]
    fn uniform_drain_dies_all_at_once() {
        let mut scheme = FakeScheme {
            drains: vec![2.0; 10],
        };
        let report = simulate_lifetime(&mut scheme, 10.0, 100);
        assert_eq!(report.first_death_round, Some(5));
        assert_eq!(report.ten_pct_death_round, Some(5));
        assert_eq!(report.half_death_round, Some(5));
    }

    #[test]
    fn cap_is_respected() {
        let mut scheme = FakeScheme {
            drains: vec![1.0, 1.0],
        };
        let report = simulate_lifetime(&mut scheme, 1e9, 7);
        assert_eq!(report.rounds_run, 7);
        assert_eq!(report.first_death_round, None);
        assert_eq!(report.alive_at_end, 2);
        assert_eq!(report.total_delivered, 14);
    }

    #[test]
    fn zero_consumption_terminates_early() {
        let mut scheme = FakeScheme {
            drains: vec![0.0, 0.0],
        };
        let report = simulate_lifetime(&mut scheme, 10.0, 1000);
        assert_eq!(report.rounds_run, 1, "break after the first no-spend round");
        assert_eq!(report.first_death_round, None);
    }

    #[test]
    fn empty_scheme() {
        let mut scheme = FakeScheme { drains: vec![] };
        let report = simulate_lifetime(&mut scheme, 10.0, 10);
        assert_eq!(report.rounds_run, 0);
        assert_eq!(report.alive_at_end, 0);
    }
}
