//! Discrete-event simulation of mobile data-gathering rounds.
//!
//! One round: the collector departs the sink at `t = 0`, drives the closed
//! tour, pauses at each stop until every packet scheduled there has been
//! uploaded, and returns to the sink. Concurrently, packets whose upload
//! node differs from their source travel their relay paths hop by hop
//! (local aggregation). The collector waits at a stop for packets still in
//! flight — with realistic parameters relays (milliseconds per hop) always
//! beat the collector (~1 m/s), but the simulator does not assume it.

use crate::hooks::{NoFaults, RoundHooks, SimEvent};
use crate::queue::EventQueue;
use crate::report::RoundReport;
use crate::{RoundScheme, SimConfig};
use mdg_energy::EnergyLedger;
use mdg_geom::Point;

/// A packet's journey to its upload point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Upload {
    /// Originating sensor.
    pub source: usize,
    /// Relay chain from the source to the uploading node, inclusive of
    /// both (singleton = the source uploads its own packet). Sensors in
    /// this list transmit (and all but the source also receive) the
    /// packet.
    pub relay_path: Vec<usize>,
}

impl Upload {
    /// Single-hop upload: the source itself uploads (the SHDG case).
    pub fn direct(source: usize) -> Self {
        Upload {
            source,
            relay_path: vec![source],
        }
    }

    /// The node that transmits to the collector.
    pub fn uploader(&self) -> usize {
        *self
            .relay_path
            .last()
            .expect("relay path includes the source")
    }
}

/// One collector stop: a pause position and the packets uploaded there.
#[derive(Debug, Clone, PartialEq)]
pub struct Stop {
    /// Pause position.
    pub pos: Point,
    /// Packets uploaded at this stop.
    pub uploads: Vec<Upload>,
}

/// A full mobile-collection scenario: sensor positions, the sink, and the
/// tour with its upload schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct MobileScenario {
    /// Sensor positions (node ids index this).
    pub sensors: Vec<Point>,
    /// The sink (tour start/end).
    pub sink: Point,
    /// Stops in visiting order (excluding the sink itself).
    pub stops: Vec<Stop>,
}

impl MobileScenario {
    /// Validates structural invariants: every relay path non-empty, hops
    /// reference valid sensors, each sensor uploads at most once.
    pub fn validate(&self) -> Result<(), String> {
        let mut uploads_seen = vec![false; self.sensors.len()];
        for (si, stop) in self.stops.iter().enumerate() {
            for u in &stop.uploads {
                if u.relay_path.is_empty() {
                    return Err(format!("stop {si}: empty relay path"));
                }
                if u.relay_path[0] != u.source {
                    return Err(format!("stop {si}: relay path must start at the source"));
                }
                for &h in &u.relay_path {
                    if h >= self.sensors.len() {
                        return Err(format!("stop {si}: relay hop {h} out of range"));
                    }
                }
                if uploads_seen[u.source] {
                    return Err(format!("sensor {} uploads twice", u.source));
                }
                uploads_seen[u.source] = true;
            }
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    /// The collector arrives at stop `stop`.
    CollectorArrive { stop: usize },
    /// Packet `upload` (global index) completes relay hop `hop`
    /// (0-based; hop `h` lands on `relay_path[h + 1]`).
    RelayHopDone { upload: usize, hop: usize },
    /// The collector finishes receiving packet `upload` at stop `stop`.
    UploadDone { stop: usize, upload: usize },
    /// The collector is back at the sink.
    CollectorReturn,
}

/// Simulator for mobile gathering rounds. Construct once per scenario;
/// [`MobileGatheringSim::run_round`] may be called repeatedly (for
/// lifetime studies) with the current alive mask.
#[derive(Debug, Clone)]
pub struct MobileGatheringSim {
    scenario: MobileScenario,
    config: SimConfig,
}

impl MobileGatheringSim {
    /// Creates the simulator.
    ///
    /// # Panics
    /// Panics if the scenario or config is invalid.
    pub fn new(scenario: MobileScenario, config: SimConfig) -> Self {
        config.validate();
        if let Err(e) = scenario.validate() {
            panic!("invalid scenario: {e}");
        }
        MobileGatheringSim { scenario, config }
    }

    /// The scenario being simulated.
    pub fn scenario(&self) -> &MobileScenario {
        &self.scenario
    }

    /// Runs one collection round with all sensors alive.
    pub fn run(&self) -> RoundReport {
        let alive = vec![true; self.scenario.sensors.len()];
        self.run_round(&alive)
    }

    /// Runs one round. Dead sensors generate no packets; a packet whose
    /// relay path crosses a dead node is lost (counted as undelivered,
    /// energy spent only on hops actually taken).
    pub fn run_round(&self, alive: &[bool]) -> RoundReport {
        self.run_round_with(alive, &mut NoFaults)
    }

    /// Runs one round with fault-injection/observation hooks: uploads may
    /// fail per attempt (bounded retry with backoff, energy spent on every
    /// attempt) and the collector's speed may be degraded per leg. See
    /// [`RoundHooks`]; with [`NoFaults`] this is exactly [`Self::run_round`].
    pub fn run_round_with<H: RoundHooks>(&self, alive: &[bool], hooks: &mut H) -> RoundReport {
        assert_eq!(
            alive.len(),
            self.scenario.sensors.len(),
            "alive mask size mismatch"
        );
        let mut sp = mdg_obs::span("sim_round");
        sp.add_items(self.scenario.stops.len() as u64);
        let cfg = &self.config;
        let scen = &self.scenario;
        let mut ledger = EnergyLedger::new(scen.sensors.len(), cfg.radio);
        let mut queue: EventQueue<Event> = EventQueue::new();

        // Flatten uploads and index them globally.
        struct Flat {
            stop: usize,
            upload: Upload,
            ready: Option<f64>, // None while relaying or lost
            lost: bool,
            attempts: u32,
        }
        let mut flats: Vec<Flat> = Vec::new();
        for (si, stop) in scen.stops.iter().enumerate() {
            for u in &stop.uploads {
                flats.push(Flat {
                    stop: si,
                    upload: u.clone(),
                    ready: None,
                    lost: false,
                    attempts: 0,
                });
            }
        }

        let mut expected = 0usize;
        // Kick off relays at t = 0.
        for (fi, f) in flats.iter_mut().enumerate() {
            if !alive[f.upload.source] {
                f.lost = true;
                continue; // Dead sources generate nothing.
            }
            expected += 1;
            if f.upload.relay_path.len() == 1 {
                f.ready = Some(0.0);
            } else {
                queue.schedule(cfg.hop_secs, Event::RelayHopDone { upload: fi, hop: 0 });
                // First hop's transmission energy is charged when the hop
                // completes (below) so lost-in-flight accounting is exact.
            }
        }

        // Travel time over `dist` meters on `leg`, honoring the hook's
        // per-leg speed degradation.
        macro_rules! leg_secs {
            ($dist:expr, $leg:expr) => {{
                let factor = hooks.speed_factor($leg);
                assert!(
                    factor.is_finite() && factor > 0.0,
                    "speed factor must be positive and finite, got {factor}"
                );
                $dist / (cfg.speed_mps * factor)
            }};
        }

        // Collector arrival time at stop 0.
        if scen.stops.is_empty() {
            queue.schedule(0.0, Event::CollectorReturn);
        } else {
            let first_leg = leg_secs!(scen.sink.dist(scen.stops[0].pos), 0);
            queue.schedule(first_leg, Event::CollectorArrive { stop: 0 });
        }

        // Per-stop bookkeeping: pending upload indices and arrival state.
        let n_stops = scen.stops.len();
        let mut stop_uploads: Vec<Vec<usize>> = vec![Vec::new(); n_stops];
        for (fi, f) in flats.iter().enumerate() {
            stop_uploads[f.stop].push(fi);
        }
        let mut collector_at: Option<usize> = None;
        let mut uploading: Option<usize> = None;
        let mut delivered = 0usize;
        let mut return_time = 0.0;

        // Helper performed inline below: start the next ready upload at
        // the current stop, or depart if none remain.
        macro_rules! advance_stop {
            ($queue:expr, $stop:expr) => {{
                let stop: usize = $stop;
                // Find a ready, not-yet-delivered packet at this stop.
                let next = stop_uploads[stop]
                    .iter()
                    .copied()
                    .find(|&fi| flats[fi].ready.is_some() && !flats[fi].lost);
                match next {
                    Some(fi) => {
                        uploading = Some(fi);
                        $queue.schedule_in(cfg.upload_secs, Event::UploadDone { stop, upload: fi });
                    }
                    None => {
                        // All remaining packets here are either in flight
                        // (wait for their RelayHopDone) or lost. Depart only
                        // when none are in flight.
                        let in_flight = stop_uploads[stop].iter().any(|&fi| {
                            !flats[fi].lost
                                && flats[fi].ready.is_none()
                                && alive[flats[fi].upload.source]
                        });
                        if !in_flight {
                            collector_at = None;
                            uploading = None;
                            let from = scen.stops[stop].pos;
                            if stop + 1 < n_stops {
                                let leg = leg_secs!(from.dist(scen.stops[stop + 1].pos), stop + 1);
                                $queue.schedule_in(leg, Event::CollectorArrive { stop: stop + 1 });
                            } else {
                                let leg = leg_secs!(from.dist(scen.sink), n_stops);
                                $queue.schedule_in(leg, Event::CollectorReturn);
                            }
                        }
                    }
                }
            }};
        }

        while let Some((t, ev)) = queue.pop() {
            match ev {
                Event::RelayHopDone { upload: fi, hop } => {
                    let path_len;
                    let (tx_node, rx_node, lost_mid);
                    {
                        let f = &flats[fi];
                        if f.lost {
                            continue;
                        }
                        path_len = f.upload.relay_path.len();
                        tx_node = f.upload.relay_path[hop];
                        rx_node = f.upload.relay_path[hop + 1];
                        lost_mid = !alive[rx_node] || !alive[tx_node];
                    }
                    if lost_mid {
                        flats[fi].lost = true;
                        hooks.observe(&SimEvent::PacketLostInRelay {
                            source: flats[fi].upload.source,
                            t,
                        });
                        // The collector may be waiting at this packet's
                        // stop with nothing else pending.
                        if collector_at == Some(flats[fi].stop) && uploading.is_none() {
                            advance_stop!(queue, flats[fi].stop);
                        }
                        continue;
                    }
                    let d = scen.sensors[tx_node].dist(scen.sensors[rx_node]);
                    ledger.record_tx(tx_node, d);
                    ledger.record_rx(rx_node);
                    if hop + 2 == path_len {
                        flats[fi].ready = Some(t);
                        // Wake the collector if it is idling at this stop.
                        if collector_at == Some(flats[fi].stop) && uploading.is_none() {
                            advance_stop!(queue, flats[fi].stop);
                        }
                    } else {
                        queue.schedule_in(
                            cfg.hop_secs,
                            Event::RelayHopDone {
                                upload: fi,
                                hop: hop + 1,
                            },
                        );
                    }
                }
                Event::CollectorArrive { stop } => {
                    collector_at = Some(stop);
                    uploading = None;
                    hooks.observe(&SimEvent::CollectorArrived { stop, t });
                    advance_stop!(queue, stop);
                }
                Event::UploadDone { stop, upload: fi } => {
                    debug_assert_eq!(collector_at, Some(stop));
                    let uploader = flats[fi].upload.uploader();
                    let source = flats[fi].upload.source;
                    if !alive[uploader] {
                        flats[fi].lost = true;
                        stop_uploads[stop].retain(|&x| x != fi);
                        uploading = None;
                        advance_stop!(queue, stop);
                        continue;
                    }
                    // The uploader spent transmission energy whether or not
                    // the collector decoded the packet.
                    let d = scen.sensors[uploader].dist(scen.stops[stop].pos);
                    ledger.record_tx(uploader, d);
                    flats[fi].attempts += 1;
                    let attempts = flats[fi].attempts;
                    if hooks.upload_succeeds(source, uploader, stop, attempts) {
                        delivered += 1;
                        hooks.observe(&SimEvent::UploadDelivered {
                            source,
                            stop,
                            t,
                            attempts,
                        });
                    } else {
                        hooks.observe(&SimEvent::UploadAttemptFailed {
                            source,
                            stop,
                            t,
                            attempt: attempts,
                        });
                        if attempts <= hooks.max_retries() {
                            // Back off, then retransmit; the collector
                            // keeps waiting on this packet.
                            let backoff = hooks.retry_backoff_secs(attempts);
                            assert!(backoff >= 0.0, "backoff must be non-negative");
                            queue.schedule_in(
                                backoff + cfg.upload_secs,
                                Event::UploadDone { stop, upload: fi },
                            );
                            continue;
                        }
                        flats[fi].lost = true;
                        hooks.observe(&SimEvent::UploadDropped {
                            source,
                            stop,
                            t,
                            attempts,
                        });
                    }
                    // Mark consumed (delivered or dropped).
                    stop_uploads[stop].retain(|&x| x != fi);
                    uploading = None;
                    advance_stop!(queue, stop);
                }
                Event::CollectorReturn => {
                    return_time = t;
                    hooks.observe(&SimEvent::CollectorReturned { t });
                }
            }
        }

        RoundReport {
            duration_secs: return_time,
            packets_delivered: delivered,
            packets_expected: expected,
            ledger,
        }
    }
}

impl RoundScheme for MobileGatheringSim {
    fn n_nodes(&self) -> usize {
        self.scenario.sensors.len()
    }

    fn round(&mut self, alive: &[bool]) -> RoundReport {
        self.run_round(alive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdg_geom::closed_tour_length;

    /// Sink at origin; two stops; three sensors. Sensor 2 relays through
    /// sensor 1 to stop 1.
    fn scenario() -> MobileScenario {
        MobileScenario {
            sensors: vec![
                Point::new(10.0, 0.0),
                Point::new(20.0, 0.0),
                Point::new(28.0, 0.0),
            ],
            sink: Point::ORIGIN,
            stops: vec![
                Stop {
                    pos: Point::new(10.0, 0.0),
                    uploads: vec![Upload::direct(0)],
                },
                Stop {
                    pos: Point::new(20.0, 0.0),
                    uploads: vec![
                        Upload::direct(1),
                        Upload {
                            source: 2,
                            relay_path: vec![2, 1],
                        },
                    ],
                },
            ],
        }
    }

    fn config() -> SimConfig {
        SimConfig {
            speed_mps: 1.0,
            upload_secs: 0.5,
            hop_secs: 0.005,
            ..SimConfig::default()
        }
    }

    #[test]
    fn full_round_timing() {
        let sim = MobileGatheringSim::new(scenario(), config());
        let r = sim.run();
        assert_eq!(r.packets_expected, 3);
        assert_eq!(r.packets_delivered, 3);
        assert!((r.delivery_ratio() - 1.0).abs() < 1e-12);
        // Travel: 0→10→20→0 = 40 s at 1 m/s; pauses: 3 uploads × 0.5 s.
        let tour =
            closed_tour_length(&[Point::ORIGIN, Point::new(10.0, 0.0), Point::new(20.0, 0.0)]);
        assert!(
            (r.duration_secs - (tour + 1.5)).abs() < 1e-9,
            "got {}",
            r.duration_secs
        );
    }

    #[test]
    fn energy_accounting_matches_model() {
        let sim = MobileGatheringSim::new(scenario(), config());
        let r = sim.run();
        let m = config().radio;
        // Sensor 0: one tx at distance 0 (collector at its position).
        assert!((r.ledger.joules_of(0) - m.tx_cost(0.0)).abs() < 1e-15);
        // Sensor 2: one relay tx over 8 m.
        assert!((r.ledger.joules_of(2) - m.tx_cost(8.0)).abs() < 1e-15);
        // Sensor 1: rx of sensor 2's packet + two uploads at distance 0
        // (its own + the relayed one).
        let expect1 = m.rx_cost() + 2.0 * m.tx_cost(0.0);
        assert!((r.ledger.joules_of(1) - expect1).abs() < 1e-15);
        assert_eq!(r.total_transmissions(), 4, "3 uploads + 1 relay hop");
    }

    #[test]
    fn pure_single_hop_has_one_tx_per_sensor() {
        // The SHDG invariant: every sensor transmits exactly once.
        let mut scen = scenario();
        scen.stops[1].uploads[1] = Upload::direct(2); // no more relay
        let sim = MobileGatheringSim::new(scen, config());
        let r = sim.run();
        for node in 0..3 {
            assert_eq!(r.ledger.tx_of(node), 1, "node {node}");
            assert_eq!(r.ledger.rx_of(node), 0, "node {node}");
        }
    }

    #[test]
    fn dead_source_loses_its_packet_only() {
        let sim = MobileGatheringSim::new(scenario(), config());
        let r = sim.run_round(&[true, true, false]);
        assert_eq!(r.packets_expected, 2);
        assert_eq!(r.packets_delivered, 2);
        assert_eq!(r.ledger.tx_of(2), 0);
        assert_eq!(r.ledger.rx_of(1), 0, "no relay happened");
    }

    #[test]
    fn dead_relay_loses_the_packet_but_round_completes() {
        let sim = MobileGatheringSim::new(scenario(), config());
        let r = sim.run_round(&[true, false, true]);
        // Sensor 1 is dead: its own packet is not generated, and sensor
        // 2's relayed packet is lost mid-path.
        assert_eq!(
            r.packets_expected, 2,
            "sensors 0 and 2 are alive and generate packets"
        );
        assert_eq!(
            r.packets_delivered, 1,
            "sensor 0 delivers; sensor 2's packet dies in relay"
        );
        assert!(r.duration_secs > 0.0);
    }

    #[test]
    fn empty_scenario() {
        let sim = MobileGatheringSim::new(
            MobileScenario {
                sensors: vec![],
                sink: Point::ORIGIN,
                stops: vec![],
            },
            config(),
        );
        let r = sim.run();
        assert_eq!(r.packets_expected, 0);
        assert_eq!(r.duration_secs, 0.0);
        assert_eq!(r.delivery_ratio(), 1.0);
    }

    #[test]
    fn slow_relay_makes_collector_wait() {
        // Relay takes 100 s per hop; collector arrives at stop 1 after
        // 20 s and must wait for the relayed packet.
        let cfg = SimConfig {
            hop_secs: 100.0,
            ..config()
        };
        let sim = MobileGatheringSim::new(scenario(), cfg);
        let r = sim.run();
        assert_eq!(r.packets_delivered, 3);
        // Upload of relayed packet cannot start before t = 100.
        assert!(r.duration_secs > 100.0, "got {}", r.duration_secs);
    }

    #[test]
    #[should_panic(expected = "uploads twice")]
    fn duplicate_upload_rejected() {
        let mut scen = scenario();
        scen.stops[0].uploads.push(Upload::direct(0));
        MobileGatheringSim::new(scen, config());
    }

    #[test]
    fn determinism() {
        let sim = MobileGatheringSim::new(scenario(), config());
        let a = sim.run();
        let b = sim.run();
        assert_eq!(a.duration_secs, b.duration_secs);
        assert_eq!(a.packets_delivered, b.packets_delivered);
        assert_eq!(a.ledger.total_joules(), b.ledger.total_joules());
    }

    /// Hooks that fail the first `fail_first` attempts of every upload,
    /// allow `retries` retries with a fixed backoff, and log events.
    struct TestFaults {
        fail_first: u32,
        retries: u32,
        backoff: f64,
        speed: f64,
        events: Vec<SimEvent>,
    }

    impl RoundHooks for TestFaults {
        fn speed_factor(&mut self, _leg: usize) -> f64 {
            self.speed
        }
        fn upload_succeeds(&mut self, _s: usize, _u: usize, _st: usize, attempt: u32) -> bool {
            attempt > self.fail_first
        }
        fn max_retries(&mut self) -> u32 {
            self.retries
        }
        fn retry_backoff_secs(&mut self, _attempt: u32) -> f64 {
            self.backoff
        }
        fn observe(&mut self, event: &SimEvent) {
            self.events.push(*event);
        }
    }

    #[test]
    fn no_faults_hooks_match_plain_round() {
        let sim = MobileGatheringSim::new(scenario(), config());
        let plain = sim.run();
        let hooked = sim.run_round_with(&[true; 3], &mut NoFaults);
        assert_eq!(plain.duration_secs, hooked.duration_secs);
        assert_eq!(plain.packets_delivered, hooked.packets_delivered);
        assert_eq!(plain.ledger.total_joules(), hooked.ledger.total_joules());
    }

    #[test]
    fn retry_recovers_lost_upload_and_charges_energy() {
        let sim = MobileGatheringSim::new(scenario(), config());
        let mut h = TestFaults {
            fail_first: 1,
            retries: 2,
            backoff: 1.0,
            speed: 1.0,
            events: Vec::new(),
        };
        let r = sim.run_round_with(&[true; 3], &mut h);
        assert_eq!(r.packets_delivered, 3, "every packet recovered on retry");
        // Each packet: 1 failed + 1 successful attempt = 2 transmissions.
        assert_eq!(r.total_transmissions(), 7, "6 uploads + 1 relay hop");
        // Round stretches by 3 × (backoff + retransmission).
        let baseline = sim.run();
        let stretch = 3.0 * (1.0 + config().upload_secs);
        assert!(
            (r.duration_secs - baseline.duration_secs - stretch).abs() < 1e-9,
            "got {} vs {}",
            r.duration_secs,
            baseline.duration_secs
        );
        let failed = h
            .events
            .iter()
            .filter(|e| matches!(e, SimEvent::UploadAttemptFailed { .. }))
            .count();
        assert_eq!(failed, 3);
    }

    #[test]
    fn exhausted_retries_drop_the_packet() {
        let sim = MobileGatheringSim::new(scenario(), config());
        let mut h = TestFaults {
            fail_first: u32::MAX,
            retries: 2,
            backoff: 0.0,
            speed: 1.0,
            events: Vec::new(),
        };
        let r = sim.run_round_with(&[true; 3], &mut h);
        assert_eq!(r.packets_delivered, 0);
        assert_eq!(r.packets_expected, 3);
        let dropped = h
            .events
            .iter()
            .filter(|e| matches!(e, SimEvent::UploadDropped { attempts: 3, .. }))
            .count();
        assert_eq!(dropped, 3, "each packet dropped after 1 + 2 attempts");
        // The round still terminates and the collector returns.
        assert!(h
            .events
            .iter()
            .any(|e| matches!(e, SimEvent::CollectorReturned { .. })));
    }

    #[test]
    fn degraded_speed_stretches_travel_only() {
        let sim = MobileGatheringSim::new(scenario(), config());
        let baseline = sim.run();
        let mut h = TestFaults {
            fail_first: 0,
            retries: 0,
            backoff: 0.0,
            speed: 0.5,
            events: Vec::new(),
        };
        let r = sim.run_round_with(&[true; 3], &mut h);
        assert_eq!(r.packets_delivered, 3);
        // Travel doubles (40 s → 80 s); the 1.5 s of uploads does not.
        let travel = baseline.duration_secs - 1.5;
        assert!(
            (r.duration_secs - (2.0 * travel + 1.5)).abs() < 1e-9,
            "got {}",
            r.duration_secs
        );
    }

    #[test]
    fn events_observed_in_time_order() {
        let sim = MobileGatheringSim::new(scenario(), config());
        let mut h = TestFaults {
            fail_first: 1,
            retries: 1,
            backoff: 0.25,
            speed: 1.0,
            events: Vec::new(),
        };
        sim.run_round_with(&[true; 3], &mut h);
        let times: Vec<f64> = h
            .events
            .iter()
            .map(|e| match e {
                SimEvent::CollectorArrived { t, .. }
                | SimEvent::UploadDelivered { t, .. }
                | SimEvent::UploadAttemptFailed { t, .. }
                | SimEvent::UploadDropped { t, .. }
                | SimEvent::PacketLostInRelay { t, .. }
                | SimEvent::CollectorReturned { t } => *t,
            })
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
        assert!(matches!(
            h.events.last(),
            Some(SimEvent::CollectorReturned { .. })
        ));
    }
}
