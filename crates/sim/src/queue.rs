//! The discrete-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the event queue: fires at `time`; `seq` makes ordering
/// FIFO-stable among equal times (and total, sidestepping NaN).
struct Entry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for min-heap behavior on a max-heap.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue: events pop in non-decreasing time order;
/// events scheduled for the same instant pop in insertion (FIFO) order.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is NaN or earlier than the current time (causality).
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(
            time >= self.now - 1e-12,
            "cannot schedule into the past: t={time} < now={}",
            self.now
        );
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules `event` `delay` seconds from now.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(delay >= 0.0, "delay must be non-negative");
        self.schedule(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to its time.
    ///
    /// The clock never moves backwards: [`EventQueue::schedule`] tolerates
    /// times up to `1e-12` before `now` (float-noise slack), so a popped
    /// entry can carry a time fractionally in the past. The clamp keeps
    /// `now()` monotone so a follow-up `schedule_in(0.0, …)` from the
    /// handler cannot trip the causality assert.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let entry = self.heap.pop()?;
        self.now = self.now.max(entry.time);
        Some((entry.time, entry.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.now(), 1.0);
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(5.0, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((5.0, i)));
        }
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(10.0, "later");
        q.pop();
        q.schedule_in(2.5, "relative");
        assert_eq!(q.pop(), Some((12.5, "relative")));
    }

    #[test]
    fn interleaved_scheduling() {
        // Popping an event may schedule new ones; ordering must hold.
        let mut q = EventQueue::new();
        q.schedule(1.0, 1u32);
        let mut seen = Vec::new();
        while let Some((t, e)) = q.pop() {
            seen.push((t, e));
            if e < 4 {
                q.schedule_in(1.0, e + 1);
                q.schedule_in(0.5, 100 + e);
            }
        }
        // Times are non-decreasing.
        for w in seen.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        assert_eq!(seen.len(), 7, "1..4 plus three 100+ interleavings");
    }

    #[test]
    fn clock_never_moves_backwards() {
        // `schedule` tolerates times up to 1e-12 in the past; popping such
        // an entry must not rewind the clock, or the handler's own
        // `schedule_in(0.0, …)` would panic on the causality assert.
        let mut q = EventQueue::new();
        q.schedule(1.0, "first");
        q.pop();
        q.schedule(1.0 - 1e-13, "slack");
        let (t, _) = q.pop().unwrap();
        assert!(t < 1.0, "entry keeps its own (past) timestamp");
        assert_eq!(q.now(), 1.0, "clock is clamped, not rewound");
        q.schedule_in(0.0, "immediate"); // must not panic
        assert_eq!(q.pop().map(|(_, e)| e), Some("immediate"));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn causality_violation_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }
}
