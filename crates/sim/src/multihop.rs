//! Simulation of classic multi-hop relay routing to a static sink.
//!
//! Every alive sensor generates one packet per round and forwards it along
//! the minimum-hop tree toward the sink (the paper's baseline: what the
//! network does *without* a mobile collector). Dead nodes force tree
//! rebuilds; sensors disconnected from the sink (by death or by the
//! topology itself) cannot deliver at all — the structural weakness mobile
//! collection removes.

use crate::report::RoundReport;
use crate::{RoundScheme, SimConfig};
use mdg_energy::EnergyLedger;
use mdg_geom::Point;
use mdg_net::{bfs_tree, Csr, Network, UNREACHABLE};

/// Multi-hop routing round simulator over a fixed deployment.
#[derive(Debug, Clone)]
pub struct MultihopRoutingSim {
    positions: Vec<Point>, // sensors then sink
    n_sensors: usize,
    full_graph: Csr,
    config: SimConfig,
}

impl MultihopRoutingSim {
    /// Builds the simulator from a network (uses the graph that includes
    /// the sink).
    pub fn new(net: &Network, config: SimConfig) -> Self {
        config.validate();
        let mut positions = net.deployment.sensors.clone();
        positions.push(net.deployment.sink);
        MultihopRoutingSim {
            positions,
            n_sensors: net.n_sensors(),
            full_graph: net.full_graph.clone(),
            config,
        }
    }

    /// Node id of the sink.
    fn sink(&self) -> usize {
        self.n_sensors
    }

    /// Runs one routing round with all sensors alive.
    pub fn run(&self) -> RoundReport {
        self.run_round(&vec![true; self.n_sensors])
    }

    /// Runs one round over the subgraph induced by alive sensors (the sink
    /// never dies). Each alive sensor routes one packet along its current
    /// min-hop path; unreachable sensors deliver nothing and spend
    /// nothing.
    pub fn run_round(&self, alive: &[bool]) -> RoundReport {
        assert_eq!(alive.len(), self.n_sensors, "alive mask size mismatch");
        // Induced subgraph over alive sensors + sink.
        let keep: Vec<usize> = (0..self.n_sensors)
            .filter(|&v| alive[v])
            .chain(std::iter::once(self.sink()))
            .collect();
        let (sub, map) = self.full_graph.induced_subgraph(&keep);
        let sink_new = keep.len() - 1;
        let tree = bfs_tree(&sub, sink_new);

        let mut ledger = EnergyLedger::new(self.n_sensors, self.config.radio);
        let mut delivered = 0usize;
        let mut expected = 0usize;
        let mut max_hops = 0u32;
        for new_id in 0..sink_new {
            expected += 1;
            if tree.hops[new_id] == UNREACHABLE {
                continue; // Disconnected: the packet can never leave.
            }
            let path = tree.path_to_source(new_id).expect("reachable");
            max_hops = max_hops.max(tree.hops[new_id]);
            // path = [sensor, …, sink] in new ids; walk the hops.
            for w in path.windows(2) {
                let from = map[w[0] as usize];
                let to = map[w[1] as usize];
                let d = self.positions[from].dist(self.positions[to]);
                ledger.record_tx(from, d);
                if to != self.sink() {
                    ledger.record_rx(to);
                }
            }
            delivered += 1;
        }
        RoundReport {
            // All packets flow concurrently; the round lasts as long as
            // the deepest relay chain.
            duration_secs: max_hops as f64 * self.config.hop_secs,
            packets_delivered: delivered,
            packets_expected: expected,
            ledger,
        }
    }

    /// Mean hop count to the sink over reachable sensors (all alive) — the
    /// paper's "average relay hops" metric for static routing.
    pub fn mean_hops(&self) -> f64 {
        let tree = bfs_tree(&self.full_graph, self.sink());
        tree.mean_hops()
    }
}

impl RoundScheme for MultihopRoutingSim {
    fn n_nodes(&self) -> usize {
        self.n_sensors
    }

    fn round(&mut self, alive: &[bool]) -> RoundReport {
        self.run_round(alive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdg_net::{Deployment, DeploymentConfig};

    /// Chain: sink at 0, sensors at 10, 20, 30 (R = 12).
    fn chain() -> Network {
        let dep = Deployment {
            sensors: vec![
                Point::new(10.0, 0.0),
                Point::new(20.0, 0.0),
                Point::new(30.0, 0.0),
            ],
            sink: Point::ORIGIN,
            field: mdg_geom::Aabb::square(40.0),
        };
        Network::build(dep, 12.0)
    }

    #[test]
    fn chain_routing_counts() {
        let sim = MultihopRoutingSim::new(&chain(), SimConfig::default());
        let r = sim.run();
        assert_eq!(r.packets_expected, 3);
        assert_eq!(r.packets_delivered, 3);
        // Transmissions: sensor 0 forwards 3 packets (its own + 2 relayed),
        // sensor 1 forwards 2, sensor 2 forwards 1 → 6 tx.
        assert_eq!(r.ledger.tx_of(0), 3);
        assert_eq!(r.ledger.tx_of(1), 2);
        assert_eq!(r.ledger.tx_of(2), 1);
        // Receptions: sensor 0 receives 2, sensor 1 receives 1.
        assert_eq!(r.ledger.rx_of(0), 2);
        assert_eq!(r.ledger.rx_of(1), 1);
        assert_eq!(r.ledger.rx_of(2), 0);
        // Duration: deepest chain is 3 hops.
        assert!((r.duration_secs - 3.0 * SimConfig::default().hop_secs).abs() < 1e-12);
        assert!((sim.mean_hops() - 2.0).abs() < 1e-12, "(1+2+3)/3");
    }

    #[test]
    fn energy_hotspot_near_sink() {
        // The funneling effect: the sensor adjacent to the sink spends the
        // most energy — the non-uniformity mobile collection eliminates.
        let sim = MultihopRoutingSim::new(&chain(), SimConfig::default());
        let r = sim.run();
        assert!(r.ledger.joules_of(0) > r.ledger.joules_of(1));
        assert!(r.ledger.joules_of(1) > r.ledger.joules_of(2));
        assert!(r.ledger.fairness() < 1.0);
    }

    #[test]
    fn dead_relay_disconnects_downstream() {
        let sim = MultihopRoutingSim::new(&chain(), SimConfig::default());
        // Kill the middle sensor: sensor 2 (at 30 m) loses its route.
        let r = sim.run_round(&[true, false, true]);
        assert_eq!(r.packets_expected, 2);
        assert_eq!(r.packets_delivered, 1, "only sensor 0 can still deliver");
        assert_eq!(r.ledger.tx_of(2), 0, "unreachable sensors spend nothing");
    }

    #[test]
    fn disconnected_topology_never_delivers_fully() {
        let dep = Deployment {
            sensors: vec![Point::new(10.0, 0.0), Point::new(200.0, 0.0)],
            sink: Point::ORIGIN,
            field: mdg_geom::Aabb::square(250.0),
        };
        let net = Network::build(dep, 12.0);
        let sim = MultihopRoutingSim::new(&net, SimConfig::default());
        let r = sim.run();
        assert_eq!(r.packets_delivered, 1);
        assert!(r.delivery_ratio() < 1.0);
    }

    #[test]
    fn random_field_delivers_everything_when_connected() {
        let net = Network::build(DeploymentConfig::uniform(150, 200.0).generate(3), 35.0);
        let sim = MultihopRoutingSim::new(&net, SimConfig::default());
        let r = sim.run();
        if net.is_connected() {
            assert_eq!(r.packets_delivered, r.packets_expected);
        }
        // Conservation: every delivered packet's tx count ≥ rx count + …
        assert!(r.ledger.total_tx() >= r.packets_delivered as u64);
        assert_eq!(
            r.ledger.total_tx() as i64 - r.ledger.total_rx() as i64,
            r.packets_delivered as i64,
            "each packet's final hop lands on the (untracked) sink"
        );
    }

    #[test]
    fn empty_network() {
        let dep = Deployment {
            sensors: vec![],
            sink: Point::ORIGIN,
            field: mdg_geom::Aabb::square(10.0),
        };
        let sim = MultihopRoutingSim::new(&Network::build(dep, 10.0), SimConfig::default());
        let r = sim.run();
        assert_eq!(r.packets_expected, 0);
        assert_eq!(r.delivery_ratio(), 1.0);
        assert_eq!(r.duration_secs, 0.0);
    }
}
