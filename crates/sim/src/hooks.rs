//! Fault-injection and observation hooks threaded through the mobile DES.
//!
//! [`MobileGatheringSim::run_round_with`] accepts a [`RoundHooks`]
//! implementation that can perturb the round (per-attempt upload loss with
//! bounded retry/backoff, collector speed degradation) and observe every
//! externally meaningful event. The fault-free default, [`NoFaults`],
//! reduces the instrumented round to the plain one bit-for-bit.
//!
//! Hook implementations drive their own randomness (typically a seeded
//! PRNG); the simulator itself stays deterministic — identical hook
//! decisions replay identical rounds.
//!
//! [`MobileGatheringSim::run_round_with`]: crate::MobileGatheringSim::run_round_with

/// An externally meaningful event inside one simulated round. Times are
/// seconds since the round started.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimEvent {
    /// The collector arrived at stop `stop`.
    CollectorArrived {
        /// Stop index in visiting order.
        stop: usize,
        /// Arrival time.
        t: f64,
    },
    /// `source`'s packet was received by the collector.
    UploadDelivered {
        /// Originating sensor.
        source: usize,
        /// Stop where the upload completed.
        stop: usize,
        /// Completion time.
        t: f64,
        /// Total attempts made (1 = first try succeeded).
        attempts: u32,
    },
    /// One upload attempt of `source`'s packet was lost (it may retry).
    UploadAttemptFailed {
        /// Originating sensor.
        source: usize,
        /// Stop where the attempt happened.
        stop: usize,
        /// Failure time.
        t: f64,
        /// 1-based attempt number that failed.
        attempt: u32,
    },
    /// `source`'s packet was abandoned after exhausting its retries.
    UploadDropped {
        /// Originating sensor.
        source: usize,
        /// Stop where the packet was abandoned.
        stop: usize,
        /// Drop time.
        t: f64,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// `source`'s packet died mid-relay (a hop endpoint was dead).
    PacketLostInRelay {
        /// Originating sensor.
        source: usize,
        /// Loss time.
        t: f64,
    },
    /// The collector completed the tour.
    CollectorReturned {
        /// Return time — the round duration.
        t: f64,
    },
}

/// Per-round fault and observation hooks.
///
/// Legs are indexed by destination: leg `0` is sink → first stop, leg `i`
/// is stop `i-1` → stop `i`, and leg `n_stops` is the return to the sink.
pub trait RoundHooks {
    /// Speed multiplier for the collector on `leg` (`1.0` = nominal,
    /// `< 1.0` = degraded/stalled). Must be positive and finite.
    fn speed_factor(&mut self, leg: usize) -> f64 {
        let _ = leg;
        1.0
    }

    /// Whether upload attempt `attempt` (1-based) of `source`'s packet at
    /// `stop` reaches the collector. Called once per attempt; the uploader
    /// spends transmission energy either way.
    fn upload_succeeds(
        &mut self,
        source: usize,
        uploader: usize,
        stop: usize,
        attempt: u32,
    ) -> bool {
        let _ = (source, uploader, stop, attempt);
        true
    }

    /// Retries allowed after a failed upload attempt before the packet is
    /// dropped (0 = a single attempt, no retry).
    fn max_retries(&mut self) -> u32 {
        0
    }

    /// Extra idle time before retry attempt `attempt` (1-based retry
    /// counter) begins. The collector waits this long on top of the
    /// retransmission itself.
    fn retry_backoff_secs(&mut self, attempt: u32) -> f64 {
        let _ = attempt;
        0.0
    }

    /// Observes a round event, in simulation-time order.
    fn observe(&mut self, event: &SimEvent) {
        let _ = event;
    }
}

/// The fault-free hooks: nominal speed, lossless uploads, no observation.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl RoundHooks for NoFaults {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_transparent() {
        let mut h = NoFaults;
        assert_eq!(h.speed_factor(3), 1.0);
        assert!(h.upload_succeeds(0, 0, 0, 1));
        assert_eq!(h.max_retries(), 0);
        assert_eq!(h.retry_backoff_secs(1), 0.0);
        h.observe(&SimEvent::CollectorReturned { t: 1.0 }); // no-op
    }
}
