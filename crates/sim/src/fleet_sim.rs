//! Simulation of multi-collector (fleet) rounds.
//!
//! All collectors depart the sink simultaneously, each driving its own
//! sub-tour; the round completes when the slowest returns. Each
//! collector's leg is simulated by the same DES as single-collector
//! rounds, so energy accounting and waiting semantics are identical.

use crate::bridge::scenario_from_plan;
use crate::mobile::{MobileGatheringSim, MobileScenario, Stop, Upload};
use crate::report::RoundReport;
use crate::SimConfig;
use mdg_core::{FleetPlan, GatheringPlan};
use mdg_energy::EnergyLedger;
use mdg_geom::Point;

/// Outcome of one fleet round.
#[derive(Debug, Clone)]
pub struct FleetRoundReport {
    /// Per-collector round reports, in fleet order.
    pub per_collector: Vec<RoundReport>,
    /// Makespan: the slowest collector's round duration.
    pub duration_secs: f64,
    /// Combined per-sensor energy ledger.
    pub ledger: EnergyLedger,
    /// Total packets collected by the whole fleet.
    pub packets_delivered: usize,
    /// Total packets expected (one per alive sensor).
    pub packets_expected: usize,
}

impl FleetRoundReport {
    /// Delivery ratio across the fleet.
    pub fn delivery_ratio(&self) -> f64 {
        if self.packets_expected == 0 {
            1.0
        } else {
            self.packets_delivered as f64 / self.packets_expected as f64
        }
    }
}

/// Builds the per-collector scenario: only the stops (and uploads) of that
/// collector's sub-tour.
fn collector_scenario(
    plan: &GatheringPlan,
    sensors: &[Point],
    polling_points: &[usize],
) -> MobileScenario {
    let stops: Vec<Stop> = polling_points
        .iter()
        .map(|&i| {
            let pp = &plan.polling_points[i];
            Stop {
                pos: pp.pos,
                uploads: pp
                    .covered
                    .iter()
                    .map(|&s| Upload::direct(s as usize))
                    .collect(),
            }
        })
        .collect();
    MobileScenario {
        sensors: sensors.to_vec(),
        sink: plan.sink,
        stops,
    }
}

/// Simulates one round of `fleet` over `plan` with all sensors alive.
///
/// # Panics
/// Panics if the fleet does not partition the plan's polling points
/// (validate it first).
pub fn simulate_fleet_round(
    plan: &GatheringPlan,
    fleet: &FleetPlan,
    sensors: &[Point],
    cfg: SimConfig,
) -> FleetRoundReport {
    fleet
        .validate(plan)
        .expect("fleet must partition the plan's polling points");
    if fleet.collectors.is_empty() {
        // Degenerate: no collectors (empty plan). One empty "round".
        let scen = scenario_from_plan(plan, sensors);
        let r = MobileGatheringSim::new(scen, cfg).run();
        let ledger = r.ledger.clone();
        return FleetRoundReport {
            duration_secs: r.duration_secs,
            packets_delivered: r.packets_delivered,
            packets_expected: r.packets_expected,
            per_collector: vec![r],
            ledger,
        };
    }
    let mut per_collector = Vec::with_capacity(fleet.n_collectors());
    let mut ledger = EnergyLedger::new(sensors.len(), cfg.radio);
    let mut delivered = 0;
    let mut expected = 0;
    let mut makespan = 0.0f64;
    for c in &fleet.collectors {
        let scen = collector_scenario(plan, sensors, &c.polling_points);
        let r = MobileGatheringSim::new(scen, cfg).run();
        makespan = makespan.max(r.duration_secs);
        delivered += r.packets_delivered;
        expected += r.packets_expected;
        ledger.merge(&r.ledger);
        per_collector.push(r);
    }
    FleetRoundReport {
        per_collector,
        duration_secs: makespan,
        ledger,
        packets_delivered: delivered,
        packets_expected: expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdg_core::{fleet::plan_fleet, ShdgPlanner};
    use mdg_net::{DeploymentConfig, Network};

    fn setup(k: usize) -> (GatheringPlan, FleetPlan, Network) {
        let net = Network::build(DeploymentConfig::uniform(120, 250.0).generate(3), 30.0);
        let plan = ShdgPlanner::new().plan(&net).unwrap();
        let fleet = plan_fleet(&plan, k);
        (plan, fleet, net)
    }

    #[test]
    fn fleet_round_collects_everything() {
        let (plan, fleet, net) = setup(3);
        let r = simulate_fleet_round(&plan, &fleet, &net.deployment.sensors, SimConfig::default());
        assert_eq!(r.packets_delivered, net.n_sensors());
        assert_eq!(r.packets_expected, net.n_sensors());
        assert!((r.delivery_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(r.per_collector.len(), fleet.n_collectors());
    }

    #[test]
    fn makespan_matches_fleet_plan_estimate() {
        let (plan, fleet, net) = setup(4);
        let cfg = SimConfig::default();
        let r = simulate_fleet_round(&plan, &fleet, &net.deployment.sensors, cfg);
        let estimate = fleet.makespan(cfg.speed_mps, cfg.upload_secs);
        assert!(
            (r.duration_secs - estimate).abs() < 1e-6,
            "DES {} vs closed form {}",
            r.duration_secs,
            estimate
        );
    }

    #[test]
    fn fleet_energy_equals_single_collector_energy() {
        // Energy is a property of the uploads, not of who drives: the
        // fleet round must charge the sensors exactly what the single
        // round does.
        let (plan, fleet, net) = setup(3);
        let cfg = SimConfig::default();
        let single =
            MobileGatheringSim::new(scenario_from_plan(&plan, &net.deployment.sensors), cfg).run();
        let fleet_r = simulate_fleet_round(&plan, &fleet, &net.deployment.sensors, cfg);
        assert!((fleet_r.ledger.total_joules() - single.total_joules()).abs() < 1e-12);
        assert_eq!(fleet_r.ledger.total_tx(), single.ledger.total_tx());
    }

    #[test]
    fn more_collectors_shrink_the_simulated_makespan() {
        let (plan, _, net) = setup(1);
        let cfg = SimConfig::default();
        let mut prev = f64::INFINITY;
        for k in [1, 2, 4] {
            let fleet = plan_fleet(&plan, k);
            let r = simulate_fleet_round(&plan, &fleet, &net.deployment.sensors, cfg);
            assert!(r.duration_secs <= prev + 1e-9, "k={k}");
            prev = r.duration_secs;
        }
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn invalid_fleet_is_rejected() {
        let (plan, mut fleet, net) = setup(2);
        fleet.collectors[0].polling_points.pop(); // drop a point
        simulate_fleet_round(&plan, &fleet, &net.deployment.sensors, SimConfig::default());
    }
}
