//! Time-parameterized collector trajectories.
//!
//! The DES in [`crate::mobile`] answers *when* things happen; this module
//! answers *where the collector is* at any instant — the primitive needed
//! for animation, rendezvous analysis, or co-simulation with other mobile
//! entities. A [`Trajectory`] is built from a [`GatheringPlan`] assuming
//! constant driving speed and a fixed pause per packet at each stop (the
//! same model the DES uses when relays are instantaneous).

use mdg_core::GatheringPlan;
use mdg_geom::Point;

/// One piece of the trajectory: the collector moves (or pauses, when
/// `from == to`) between `start_t` and `end_t`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Piece {
    start_t: f64,
    end_t: f64,
    from: Point,
    to: Point,
}

/// A collector's full round trajectory: sink → stops… → sink, with pauses.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    pieces: Vec<Piece>,
    arrivals: Vec<f64>,
}

impl Trajectory {
    /// Builds the trajectory for `plan` at `speed_mps` with `upload_secs`
    /// pause per packet served at each stop.
    ///
    /// # Panics
    /// Panics if `speed_mps` is not positive.
    pub fn from_plan(plan: &GatheringPlan, speed_mps: f64, upload_secs: f64) -> Trajectory {
        assert!(speed_mps > 0.0, "collector speed must be positive");
        assert!(upload_secs >= 0.0, "upload time must be non-negative");
        let mut pieces = Vec::new();
        let mut arrivals = Vec::with_capacity(plan.n_polling_points());
        let mut t = 0.0;
        let mut pos = plan.sink;
        for pp in &plan.polling_points {
            let travel = pos.dist(pp.pos) / speed_mps;
            pieces.push(Piece {
                start_t: t,
                end_t: t + travel,
                from: pos,
                to: pp.pos,
            });
            t += travel;
            arrivals.push(t);
            let pause = upload_secs * pp.covered.len() as f64;
            if pause > 0.0 {
                pieces.push(Piece {
                    start_t: t,
                    end_t: t + pause,
                    from: pp.pos,
                    to: pp.pos,
                });
                t += pause;
            }
            pos = pp.pos;
        }
        let home = pos.dist(plan.sink) / speed_mps;
        if plan.n_polling_points() > 0 {
            pieces.push(Piece {
                start_t: t,
                end_t: t + home,
                from: pos,
                to: plan.sink,
            });
        }
        Trajectory { pieces, arrivals }
    }

    /// Total round time in seconds.
    pub fn total_time(&self) -> f64 {
        self.pieces.last().map_or(0.0, |p| p.end_t)
    }

    /// Arrival time at each polling point, in tour order.
    pub fn arrival_times(&self) -> &[f64] {
        &self.arrivals
    }

    /// Collector position at time `t` (clamped to `[0, total_time]`).
    pub fn position_at(&self, t: f64) -> Point {
        let Some(first) = self.pieces.first() else {
            return Point::ORIGIN;
        };
        if t <= first.start_t {
            return first.from;
        }
        // Binary search the piece containing t.
        let idx = self
            .pieces
            .partition_point(|p| p.end_t < t)
            .min(self.pieces.len() - 1);
        let p = &self.pieces[idx];
        let dur = p.end_t - p.start_t;
        if dur <= 0.0 {
            return p.to;
        }
        let frac = ((t - p.start_t) / dur).clamp(0.0, 1.0);
        p.from.lerp(p.to, frac)
    }

    /// Samples the trajectory every `dt` seconds (inclusive of both ends).
    pub fn sample(&self, dt: f64) -> Vec<(f64, Point)> {
        assert!(dt > 0.0, "sample interval must be positive");
        let total = self.total_time();
        let mut out = Vec::new();
        let mut t = 0.0;
        while t < total {
            out.push((t, self.position_at(t)));
            t += dt;
        }
        out.push((total, self.position_at(total)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scenario_from_plan, MobileGatheringSim, SimConfig};
    use mdg_core::ShdgPlanner;
    use mdg_net::{DeploymentConfig, Network};

    fn plan() -> (GatheringPlan, Network) {
        let net = Network::build(DeploymentConfig::uniform(80, 200.0).generate(6), 30.0);
        (ShdgPlanner::new().plan(&net).unwrap(), net)
    }

    #[test]
    fn total_time_matches_plan_estimate_and_des() {
        let (plan, net) = plan();
        let cfg = SimConfig::default();
        let traj = Trajectory::from_plan(&plan, cfg.speed_mps, cfg.upload_secs);
        let estimate = plan.collection_time(cfg.speed_mps, cfg.upload_secs);
        assert!((traj.total_time() - estimate).abs() < 1e-9);
        // And the DES (with instantaneous relays) agrees.
        let scen = scenario_from_plan(&plan, &net.deployment.sensors);
        let round = MobileGatheringSim::new(scen, cfg).run();
        assert!((traj.total_time() - round.duration_secs).abs() < 1e-6);
    }

    #[test]
    fn starts_and_ends_at_the_sink() {
        let (plan, _) = plan();
        let traj = Trajectory::from_plan(&plan, 1.0, 0.5);
        assert_eq!(traj.position_at(0.0), plan.sink);
        assert!(traj.position_at(traj.total_time()).dist(plan.sink) < 1e-9);
        // Clamping beyond the round.
        assert!(traj.position_at(traj.total_time() + 100.0).dist(plan.sink) < 1e-9);
        assert_eq!(traj.position_at(-5.0), plan.sink);
    }

    #[test]
    fn collector_is_at_each_stop_at_its_arrival_time() {
        let (plan, _) = plan();
        let traj = Trajectory::from_plan(&plan, 1.0, 0.5);
        let arrivals = traj.arrival_times().to_vec();
        assert_eq!(arrivals.len(), plan.n_polling_points());
        for (k, &t) in arrivals.iter().enumerate() {
            let pos = traj.position_at(t);
            assert!(
                pos.dist(plan.polling_points[k].pos) < 1e-9,
                "stop {k}: at {pos} expected {}",
                plan.polling_points[k].pos
            );
        }
        // Arrivals are strictly increasing.
        for w in arrivals.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn pauses_hold_position() {
        let (plan, _) = plan();
        let upload = 2.0;
        let traj = Trajectory::from_plan(&plan, 1.0, upload);
        let t_arrive = traj.arrival_times()[0];
        let pause = upload * plan.polling_points[0].covered.len() as f64;
        let during = traj.position_at(t_arrive + 0.5 * pause);
        assert!(during.dist(plan.polling_points[0].pos) < 1e-9);
    }

    #[test]
    fn speed_is_respected_between_samples() {
        let (plan, _) = plan();
        let speed = 2.0;
        let traj = Trajectory::from_plan(&plan, speed, 0.5);
        let samples = traj.sample(0.25);
        for w in samples.windows(2) {
            let dt = w[1].0 - w[0].0;
            let dist = w[0].1.dist(w[1].1);
            assert!(
                dist <= speed * dt + 1e-6,
                "moved {dist} m in {dt} s at {speed} m/s"
            );
        }
        // The samples end exactly at the total time.
        assert!((samples.last().unwrap().0 - traj.total_time()).abs() < 1e-12);
    }

    #[test]
    fn empty_plan_trajectory() {
        let empty = GatheringPlan::new(Point::new(3.0, 4.0), vec![], vec![]);
        let traj = Trajectory::from_plan(&empty, 1.0, 1.0);
        assert_eq!(traj.total_time(), 0.0);
        assert!(traj.arrival_times().is_empty());
        // No pieces: position falls back to the origin (documented quirk of
        // an empty trajectory — there is nowhere meaningful to be).
        assert_eq!(traj.position_at(0.0), Point::ORIGIN);
    }
}
