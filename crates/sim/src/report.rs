//! Simulation round reports.

use mdg_energy::EnergyLedger;

/// Outcome of one data-gathering round.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Wall-clock duration of the round in seconds (tour time for mobile
    /// schemes; slowest relay chain for multi-hop routing).
    pub duration_secs: f64,
    /// Packets that reached the sink / collector.
    pub packets_delivered: usize,
    /// Packets that should have been collected (one per alive sensor).
    pub packets_expected: usize,
    /// Per-node energy expenditure of this round.
    pub ledger: EnergyLedger,
}

impl RoundReport {
    /// Delivery ratio in `[0, 1]` (1 for an empty round).
    pub fn delivery_ratio(&self) -> f64 {
        if self.packets_expected == 0 {
            1.0
        } else {
            self.packets_delivered as f64 / self.packets_expected as f64
        }
    }

    /// Total sensor-side joules spent this round.
    pub fn total_joules(&self) -> f64 {
        self.ledger.total_joules()
    }

    /// Total sensor transmissions this round (the paper's "number of
    /// transmissions" metric; SHDG achieves exactly one per packet).
    pub fn total_transmissions(&self) -> u64 {
        self.ledger.total_tx()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdg_energy::RadioModel;

    #[test]
    fn ratios_and_totals() {
        let mut ledger = EnergyLedger::new(3, RadioModel::default());
        ledger.record_tx(0, 10.0);
        ledger.record_tx(1, 10.0);
        ledger.record_rx(2);
        let r = RoundReport {
            duration_secs: 12.0,
            packets_delivered: 2,
            packets_expected: 3,
            ledger,
        };
        assert!((r.delivery_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.total_transmissions(), 2);
        assert!(r.total_joules() > 0.0);
    }

    #[test]
    fn empty_round_delivers_fully() {
        let r = RoundReport {
            duration_secs: 0.0,
            packets_delivered: 0,
            packets_expected: 0,
            ledger: EnergyLedger::new(0, RadioModel::default()),
        };
        assert_eq!(r.delivery_ratio(), 1.0);
    }
}
