//! Protocol robustness: every way a client can misbehave must produce a
//! structured error response or a clean close — never a dead daemon, and
//! never a poisoned session table. Each test drives a real server over
//! real sockets.

use mdg_geom::Point;
use mdg_serve::client::Client;
use mdg_serve::protocol::{Ack, ErrorResponse, PlanSummary};
use mdg_serve::server::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn start(cfg: ServeConfig) -> Server {
    Server::start(cfg).expect("server starts")
}

fn error_code(response: &str) -> String {
    let err: ErrorResponse = serde_json::from_str(response)
        .unwrap_or_else(|e| panic!("not an error response: {response} ({e})"));
    assert!(!err.ok);
    err.error.code
}

/// Creates a small session the poisoning checks can probe afterwards.
fn seed_session(client: &mut Client, name: &str) -> PlanSummary {
    client
        .plan_uniform(name, 150, 200.0, 9, 30.0)
        .expect("transport")
        .expect("plan accepted")
}

#[test]
fn truncated_json_gets_a_bad_json_error() {
    let server = start(ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    let resp = client.send_raw("{\"cmd\":\"plan\",\"field\":").unwrap();
    assert_eq!(error_code(&resp), "bad_json");
    // The connection survives a parse error.
    let resp = client.send_raw("{\"cmd\":\"metrics\"}").unwrap();
    let ack: Ack = serde_json::from_str(&resp).unwrap();
    assert!(ack.ok);
    server.shutdown();
    server.join();
}

#[test]
fn unknown_cmd_and_missing_cmd_are_structured_errors() {
    let server = start(ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    let resp = client.send_raw("{\"cmd\":\"frobnicate\"}").unwrap();
    assert_eq!(error_code(&resp), "unknown_cmd");
    let resp = client.send_raw("{\"field\":\"x\"}").unwrap();
    assert_eq!(error_code(&resp), "bad_request");
    // Wrong JSON *type* for a field is bad_json, not a crash.
    let resp = client
        .send_raw("{\"cmd\":\"plan\",\"field\":\"x\",\"n\":\"many\"}")
        .unwrap();
    assert_eq!(error_code(&resp), "bad_json");
    server.shutdown();
    server.join();
}

#[test]
fn oversized_payload_is_rejected_and_the_connection_closed() {
    let server = start(ServeConfig {
        max_line_bytes: 4096,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();
    let huge = format!(
        "{{\"cmd\":\"plan\",\"field\":\"{}\"}}",
        "x".repeat(16 * 1024)
    );
    let resp = client.send_raw(&huge).unwrap();
    assert_eq!(error_code(&resp), "oversized");
    // The server closes the connection after an oversized line (it cannot
    // trust the stream's framing any more): the next request sees EOF.
    let after = client.send_raw("{\"cmd\":\"metrics\"}");
    assert!(after.is_err(), "connection must be closed, got {after:?}");
    // The daemon itself is fine.
    let mut fresh = Client::connect(server.local_addr()).unwrap();
    assert!(fresh.metrics().unwrap().is_ok());
    server.shutdown();
    server.join();
}

#[test]
fn mid_request_disconnect_leaves_the_daemon_serving() {
    let server = start(ServeConfig::default());
    // Open a raw socket, send half a request, and vanish.
    {
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        s.write_all(b"{\"cmd\":\"plan\",\"field\":\"half").unwrap();
        // Dropped here without a newline: the server's reader sees EOF
        // mid-line and must simply clean up.
    }
    std::thread::sleep(Duration::from_millis(50));
    let mut client = Client::connect(server.local_addr()).unwrap();
    let summary = seed_session(&mut client, "alive");
    assert_eq!(summary.mode, "cold");
    server.shutdown();
    server.join();
}

#[test]
fn garbage_requests_do_not_poison_existing_sessions() {
    let server = start(ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    let cold = seed_session(&mut client, "victim");

    // A barrage of malformed traffic on a second connection.
    let mut attacker = Client::connect(server.local_addr()).unwrap();
    for garbage in [
        "not json at all",
        "{\"cmd\":\"delta\",\"field\":\"victim\",\"died\":[999999]}",
        "{\"cmd\":\"delta\",\"field\":\"victim\",\"range\":-5}",
        "{\"cmd\":\"delta\",\"field\":\"no-such-session\"}",
        "{\"cmd\":\"plan\",\"field\":\"victim2\",\"n\":0,\"side\":100,\"range\":30}",
        "[1,2,3]",
        "\"just a string\"",
    ] {
        let resp = attacker.send_raw(garbage).unwrap();
        let ack: Ack = serde_json::from_str(&resp).unwrap();
        assert!(!ack.ok, "garbage must be rejected: {garbage} -> {resp}");
    }

    // The existing session still answers and still repairs correctly.
    let patched = client
        .delta("victim", vec![0, 1], vec![], None)
        .unwrap()
        .unwrap();
    assert_eq!(patched.generation, cold.generation + 1);
    assert_eq!(patched.live, cold.live - 2);
    let got = client.get_plan("victim").unwrap().unwrap();
    assert_eq!(got.generation, patched.generation);
    server.shutdown();
    server.join();
}

#[test]
fn lru_eviction_bounds_the_session_table() {
    let server = start(ServeConfig {
        max_sessions: 2,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();
    seed_session(&mut client, "a");
    seed_session(&mut client, "b");
    // Touch `a` so `b` is the LRU victim when `c` arrives.
    client.get_plan("a").unwrap().unwrap();
    seed_session(&mut client, "c");
    let metrics = client.metrics().unwrap().unwrap();
    assert_eq!(metrics.sessions.len(), 2);
    assert_eq!(metrics.evictions, 1);
    let names: Vec<&str> = metrics.sessions.iter().map(|s| s.field.as_str()).collect();
    assert!(names.contains(&"a") && names.contains(&"c"), "{names:?}");
    let err = client.get_plan("b").unwrap().unwrap_err();
    assert_eq!(err.code, "unknown_session");
    server.shutdown();
    server.join();
}

#[test]
fn byte_budget_eviction_sheds_many_small_sessions_for_one_big() {
    // Five small sessions fit the byte budget; one big session landing on
    // top must evict several of them (LRU-first) — the count cap alone
    // would have kept everything.
    let server = start(ServeConfig {
        max_sessions: 16,
        max_session_bytes: 64 << 10,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();
    for i in 0..5 {
        client
            .plan_uniform(&format!("small-{i}"), 100, 200.0, i, 30.0)
            .unwrap()
            .unwrap();
    }
    let before = client.metrics().unwrap().unwrap();
    assert_eq!(before.sessions.len(), 5);
    assert_eq!(before.evictions, 0);

    client
        .plan_uniform("big", 400, 400.0, 7, 30.0)
        .unwrap()
        .unwrap();
    let after = client.metrics().unwrap().unwrap();
    let names: Vec<&str> = after.sessions.iter().map(|s| s.field.as_str()).collect();
    assert!(names.contains(&"big"), "{names:?}");
    assert!(
        after.evictions >= 2,
        "one big session must displace several small ones, evictions={}",
        after.evictions
    );
    // The survivors (the big session possibly excepted) fit the budget.
    let total: u64 = after.sessions.iter().map(|s| s.approx_bytes).sum();
    assert!(
        total <= 64 << 10 || after.sessions.len() == 1,
        "table still over budget: {total} bytes across {names:?}"
    );
    server.shutdown();
    server.join();
}

#[test]
fn large_fields_get_hier_sessions_over_the_wire() {
    // Above the threshold the daemon plans hierarchically; plan, delta,
    // and get_plan flow through the same protocol unchanged.
    // Default auto tile sizing targets ~2048 sensors per tile, so the
    // field needs ~10k sensors to span several tiles — below that a
    // small delta dirties the only tile and escalates to a full replan.
    let server = start(ServeConfig {
        hier_threshold: 2_000,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();
    let cold = client
        .plan_uniform("tiled", 10_000, 1_000.0, 3, 30.0)
        .unwrap()
        .unwrap();
    assert_eq!(cold.mode, "cold");
    assert_eq!(cold.live, 10_000);

    let metrics = client.metrics().unwrap().unwrap();
    let info = metrics
        .sessions
        .iter()
        .find(|s| s.field == "tiled")
        .unwrap();
    assert_eq!(info.kind, "hier");
    assert!(info.approx_bytes > 0);

    let patched = client
        .delta(
            "tiled",
            vec![1, 2, 3],
            vec![Point { x: 20.0, y: 20.0 }],
            None,
        )
        .unwrap()
        .unwrap();
    assert_eq!(patched.mode, "repair");
    assert_eq!(patched.generation, cold.generation + 1);
    assert_eq!(patched.live, 9_998);

    let got = client.get_plan("tiled").unwrap().unwrap();
    assert_eq!(got.generation, patched.generation);
    assert!((got.range - 30.0).abs() < 1e-12);
    assert!(got.plan.tour_length > 0.0);

    // A small flat session next to it keeps its flavor.
    client
        .plan_uniform("smallf", 120, 200.0, 4, 30.0)
        .unwrap()
        .unwrap();
    let metrics = client.metrics().unwrap().unwrap();
    let info = metrics
        .sessions
        .iter()
        .find(|s| s.field == "smallf")
        .unwrap();
    assert_eq!(info.kind, "flat");
    server.shutdown();
    server.join();
}

#[test]
fn shutdown_drains_and_stops_accepting() {
    let server = start(ServeConfig::default());
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    seed_session(&mut client, "s");
    let down = client.shutdown().unwrap().unwrap();
    assert!(down.draining);
    server.join();
    // After the drain the listener is gone; a fresh connection must fail
    // (or be refused immediately on read).
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut s) => {
            s.set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            s.write_all(b"{\"cmd\":\"metrics\"}\n").unwrap();
            let mut buf = [0u8; 1];
            assert!(
                !matches!(s.read(&mut buf), Ok(n) if n > 0),
                "drained daemon must not answer"
            );
        }
    }
}

#[test]
fn concurrent_clients_get_isolated_sessions() {
    let server = start(ServeConfig::default());
    let addr = server.local_addr();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let name = format!("conc-{i}");
                let cold = c.plan_uniform(&name, 120, 180.0, i, 25.0).unwrap().unwrap();
                let patched = c
                    .delta(&name, vec![i, i + 1], vec![], None)
                    .unwrap()
                    .unwrap();
                assert_eq!(patched.generation, 1);
                assert_eq!(patched.live, cold.live - 2);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let mut c = Client::connect(addr).unwrap();
    let metrics = c.metrics().unwrap().unwrap();
    assert_eq!(metrics.sessions.len(), 4);
    server.shutdown();
    server.join();
}

#[test]
fn hostile_coordinates_get_structured_errors_and_the_session_survives() {
    let server = start(ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    let cold = seed_session(&mut client, "survivor");

    // Non-finite and absurd-magnitude coordinates are the classic way to
    // smuggle NaN/inf into the warm state (distances overflow, tours go
    // non-finite). Every one must come back as a structured reject, with
    // the session untouched.
    for hostile in [
        "{\"cmd\":\"delta\",\"field\":\"survivor\",\"added\":[{\"x\":1e300,\"y\":0}]}",
        "{\"cmd\":\"delta\",\"field\":\"survivor\",\"added\":[{\"x\":0,\"y\":-1e300}]}",
        "{\"cmd\":\"delta\",\"field\":\"survivor\",\"added\":[{\"x\":5e12,\"y\":5e12}]}",
        "{\"cmd\":\"delta\",\"field\":\"survivor\",\"range\":1e300}",
        "{\"cmd\":\"plan\",\"field\":\"poisoned\",\"sensors\":[{\"x\":1e300,\"y\":0}],\"range\":30}",
        "{\"cmd\":\"plan\",\"field\":\"poisoned\",\"sensors\":[{\"x\":1,\"y\":2}],\"sink\":{\"x\":-7e12,\"y\":0},\"range\":30}",
    ] {
        let resp = client.send_raw(hostile).unwrap();
        assert_eq!(error_code(&resp), "bad_request", "for {hostile}");
    }

    // The warm session was not mutated by any rejected request: the
    // generation is unchanged and a well-formed delta still repairs.
    let got = client.get_plan("survivor").unwrap().unwrap();
    assert_eq!(got.generation, cold.generation);
    let patched = client
        .delta("survivor", vec![3], vec![Point { x: 40.0, y: 55.0 }], None)
        .unwrap()
        .unwrap();
    assert_eq!(patched.generation, cold.generation + 1);
    // No half-created session leaked from the rejected `plan` requests.
    let metrics = client.metrics().unwrap().unwrap();
    assert_eq!(metrics.sessions.len(), 1);
    server.shutdown();
    server.join();
}
