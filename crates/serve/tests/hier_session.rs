//! Hier-session delta-sequence equivalence: across many seeded fields, a
//! hierarchical session that absorbed rounds of death/addition churn
//! through the dirty-tile path must hold a plan that is (a) valid on the
//! mutated field, (b) within a bounded length ratio of rebuilding the
//! churned field cold with the same tiled planner, and (c) bit-identical
//! at any `mdg-par` thread count. Bound (b) pins the quality cost of
//! replanning only dirty tiles; bound (c) is the determinism contract the
//! daemon's reproducibility story rests on.

use mdg_core::{GatheringPlan, HierConfig, HierPlan};
use mdg_geom::Point;
use mdg_net::DeploymentConfig;
use mdg_serve::session::FieldSession;

const N: usize = 500;
const SIDE: f64 = 400.0;
const RANGE: f64 = 30.0;
const SEEDS: u64 = 20;
const ROUNDS: u64 = 4;

/// Churned tour may exceed the cold tiled rebuild by at most this factor.
/// Clean tiles keep their retained sub-tours while the stitch order and
/// seam geometry drift from what a fresh tiling would choose, so some
/// slack is inherent; observed ratios sit well below this.
const MAX_LENGTH_RATIO: f64 = 1.35;

fn cfg() -> HierConfig {
    HierConfig {
        // 5 × 30 m = 150 m tiles: a 400 m field spans a 3×3 lattice, so
        // small deltas stay below the 50%-dirty escalation bar.
        tile_cells: Some(5.0),
        ..HierConfig::default()
    }
}

fn cold_session(seed: u64) -> FieldSession {
    FieldSession::plan_cold_hier(
        format!("hier-eq-{seed}"),
        DeploymentConfig::uniform(N, SIDE).generate(seed),
        RANGE,
        cfg(),
    )
    .unwrap_or_else(|e| panic!("seed {seed}: cold hier plan failed: {e}"))
}

/// One deterministic churn round: a scatter of deaths over the original
/// id space plus two additions drifting across the field.
fn churn(seed: u64, round: u64) -> (Vec<u64>, Vec<Point>) {
    let mut died: Vec<u64> = (0..8u64)
        .map(|i| (seed * 7919 + round * 104_729 + i * 15_485_863) % N as u64)
        .collect();
    died.sort_unstable();
    died.dedup();
    let t = (seed * ROUNDS + round + 1) as f64 / (SEEDS * ROUNDS + 2) as f64;
    let added = vec![
        Point::new(SIDE * t, SIDE * (1.0 - t)),
        Point::new(10.0 + SIDE * 0.8 * (1.0 - t), 10.0 + SIDE * 0.8 * t),
    ];
    (died, added)
}

/// Runs the full churn sequence for one seed and returns the session.
fn churned_session(seed: u64) -> FieldSession {
    let mut session = cold_session(seed);
    for round in 0..ROUNDS {
        let (died, added) = churn(seed, round);
        session
            .apply_delta(&died, &added, None)
            .unwrap_or_else(|e| panic!("seed {seed} round {round}: delta failed: {e}"));
        session
            .plan()
            .validate_live(session.sensors(), session.range(), session.alive())
            .unwrap_or_else(|e| panic!("seed {seed} round {round}: invalid plan: {e}"));
    }
    session
}

/// Rebuilds the session's *current* live field cold with the same tiled
/// planner and returns the tour length — the quality baseline the
/// dirty-tile path is judged against.
fn cold_rebuild_tour(session: &FieldSession) -> f64 {
    let live: Vec<Point> = session
        .sensors()
        .iter()
        .zip(session.alive())
        .filter(|&(_, &a)| a)
        .map(|(&p, _)| p)
        .collect();
    let hier = HierPlan::build(&live, session.sink(), RANGE, cfg()).expect("cold rebuild plans");
    hier.plan()
        .validate(&live, RANGE)
        .expect("cold rebuild is valid");
    hier.plan().tour_length
}

#[test]
fn churned_hier_sessions_track_cold_tiled_rebuilds() {
    let mut worst: f64 = 0.0;
    for seed in 0..SEEDS {
        let session = churned_session(seed);
        assert!(
            session.generation >= 1,
            "seed {seed}: churn must advance the generation"
        );
        let cold = cold_rebuild_tour(&session);
        let ratio = session.plan().tour_length / cold;
        assert!(
            ratio <= MAX_LENGTH_RATIO,
            "seed {seed}: churned tour {:.1} m is {ratio:.3}x the cold rebuild {cold:.1} m \
             (bound {MAX_LENGTH_RATIO})",
            session.plan().tour_length
        );
        worst = worst.max(ratio);
    }
    println!("worst churned/cold tour ratio over {SEEDS} hier fields: {worst:.3}");
}

#[test]
fn dirty_tile_replans_are_bit_identical_across_thread_counts() {
    // The same churn sequence must produce byte-for-byte the same plan at
    // 1 worker and at 4 — dirty-tile fan-out, splice scans, and seam
    // touch-up all preserve order under `mdg-par`'s determinism contract.
    for seed in [0u64, 5, 11] {
        mdg_par::set_threads(1);
        let serial = churned_session(seed);
        mdg_par::set_threads(4);
        let parallel = churned_session(seed);
        mdg_par::set_threads(0);
        let (a, b): (&GatheringPlan, &GatheringPlan) = (serial.plan(), parallel.plan());
        assert_eq!(
            a.tour_length.to_bits(),
            b.tour_length.to_bits(),
            "seed {seed}: tour length diverged across thread counts"
        );
        assert_eq!(a, b, "seed {seed}: plan diverged across thread counts");
        assert_eq!(serial.generation, parallel.generation);
    }
}

#[test]
fn escalation_and_incremental_paths_agree_on_coverage() {
    // Force both paths on the same field: a massive delta (escalates to a
    // full tiled rebuild) and the same deaths applied in small chunks
    // (stays incremental). Both must end fully covering the same live set.
    let seed = 3;
    let mut bulk = cold_session(seed);
    let mut stepped = cold_session(seed);
    let victims: Vec<u64> = (0..N as u64).filter(|v| v % 3 == 0).collect();
    bulk.apply_delta(&victims, &[], None).unwrap();
    for chunk in victims.chunks(5) {
        stepped.apply_delta(chunk, &[], None).unwrap();
    }
    for s in [&bulk, &stepped] {
        assert_eq!(s.n_live(), N - victims.len());
        s.plan()
            .validate_live(s.sensors(), s.range(), s.alive())
            .unwrap();
    }
}
