//! Delta-repair equivalence: across many seeded fields, a session that
//! absorbed churn through `apply_delta` must hold a plan that is (a) valid
//! on the mutated field — every live sensor single-hop covered, tour
//! invariants intact — and (b) within a bounded length ratio of planning
//! the mutated field cold. Bound (a) is correctness; bound (b) pins the
//! *quality* cost of incremental repair, which is the number a user trades
//! against the latency win measured in `BENCH_serve.json`.

use mdg_core::{PlannerConfig, ShdgPlanner};
use mdg_geom::{Aabb, Point};
use mdg_net::{Deployment, DeploymentConfig, Network};
use mdg_serve::session::{DeltaMode, FieldSession};

const N: usize = 300;
const SIDE: f64 = 250.0;
const RANGE: f64 = 30.0;
const SEEDS: u64 = 20;

/// Repaired tour may exceed the cold-replan tour by at most this factor.
/// Repair preserves the surviving tour's structure instead of re-solving
/// globally, so some slack is inherent; observed ratios sit well below
/// this (see the printed maximum).
const MAX_LENGTH_RATIO: f64 = 1.5;

/// Deterministic churn for one seed: kill the anchors of a few stops (the
/// worst case — those stops go stale), kill a scatter of ordinary ids, add
/// three sensors near the field edges.
fn churn(session: &FieldSession, seed: u64) -> (Vec<u64>, Vec<Point>) {
    let mut died: Vec<u64> = session.plan().polling_points[..3]
        .iter()
        .map(|pp| pp.candidate as u64)
        .collect();
    died.extend((0..10u64).map(|i| (seed * 7919 + i * 104_729) % N as u64));
    died.sort_unstable();
    died.dedup();
    let t = (seed as f64 + 1.0) / (SEEDS as f64 + 1.0);
    let added = vec![
        Point::new(SIDE * t, 5.0),
        Point::new(5.0, SIDE * (1.0 - t)),
        Point::new(SIDE - 5.0, SIDE * t),
    ];
    (died, added)
}

/// Plans the session's *current* live field from scratch and returns the
/// cold tour length — the quality baseline repair is judged against.
fn cold_replan_tour(session: &FieldSession) -> f64 {
    let live: Vec<Point> = session
        .sensors()
        .iter()
        .zip(session.alive())
        .filter(|&(_, &a)| a)
        .map(|(&p, _)| p)
        .collect();
    let deployment = Deployment {
        sensors: live.clone(),
        sink: session.sink(),
        field: Aabb::from_points(&live).expect("live sensors remain"),
    };
    let net = Network::build(deployment, RANGE);
    let plan = ShdgPlanner::new().plan(&net).expect("mutated field plans");
    plan.validate(&net.deployment.sensors, RANGE)
        .expect("cold replan is valid");
    plan.tour_length
}

#[test]
fn repaired_plans_match_cold_replans_across_seeded_fields() {
    let mut worst: f64 = 0.0;
    for seed in 0..SEEDS {
        let deployment = DeploymentConfig::uniform(N, SIDE).generate(seed);
        let mut session = FieldSession::plan_cold(
            format!("eq-{seed}"),
            deployment,
            RANGE,
            PlannerConfig::default(),
        )
        .unwrap_or_else(|e| panic!("seed {seed}: cold plan failed: {e}"));
        let (died, added) = churn(&session, seed);
        let outcome = session
            .apply_delta(&died, &added, None)
            .unwrap_or_else(|e| panic!("seed {seed}: delta failed: {e}"));
        assert_ne!(
            outcome.mode,
            DeltaMode::Noop,
            "seed {seed}: churn with stop-anchor deaths must change the plan"
        );

        // (a) Correctness on the mutated field.
        session
            .plan()
            .validate_live(session.sensors(), RANGE, session.alive())
            .unwrap_or_else(|e| panic!("seed {seed}: repaired plan invalid: {e}"));

        // (b) Bounded quality loss vs a cold replan of the same field.
        let cold = cold_replan_tour(&session);
        let ratio = session.plan().tour_length / cold;
        assert!(
            ratio <= MAX_LENGTH_RATIO,
            "seed {seed}: repaired tour {:.1} m is {ratio:.3}x the cold replan {cold:.1} m \
             (bound {MAX_LENGTH_RATIO})",
            session.plan().tour_length
        );
        worst = worst.max(ratio);
    }
    println!("worst repaired/cold tour ratio over {SEEDS} fields: {worst:.3}");
}
