//! The wire protocol: line-delimited JSON over TCP.
//!
//! Every request and every response is exactly one JSON object on one
//! `\n`-terminated line. Requests are a single flat struct ([`Request`])
//! whose `cmd` field selects the operation; fields irrelevant to a command
//! are ignored, missing fields deserialize to `None`. Responses always
//! carry an `ok` boolean: `true` responses are command-specific
//! ([`PlanSummary`], [`GetPlanResponse`], [`MetricsResponse`],
//! [`ShutdownResponse`]), `false` responses are an [`ErrorResponse`] with a
//! stable machine-readable [`ErrorBody::code`].
//!
//! ## Commands
//!
//! | `cmd` | consumes | returns |
//! |---|---|---|
//! | `plan` | `field`, `range`, and either `n`+`side`(+`seed`) or `sensors`(+`sink`) | [`PlanSummary`] (`mode: "cold"`) |
//! | `delta` | `field`, any of `died`, `added`, `range` | [`PlanSummary`] (`mode: "repair"`/`"replan"`/`"noop"`) |
//! | `get_plan` | `field` | [`GetPlanResponse`] with the full plan |
//! | `metrics` | — | [`MetricsResponse`] |
//! | `shutdown` | — | [`ShutdownResponse`], then the daemon drains |
//!
//! ## Error codes
//!
//! `bad_json`, `unknown_cmd`, `bad_request`, `unknown_session`,
//! `oversized` (the offending connection is closed after the response),
//! `shutting_down`, and `internal` (a handler panicked; the session it was
//! mutating is evicted so no corrupt state survives).

use mdg_core::GatheringPlan;
use mdg_geom::Point;
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, Write};

/// Protocol version reported by [`MetricsResponse`]. Version 2 added the
/// `kind` and `approx_bytes` fields to [`SessionInfo`] (hierarchical
/// sessions and byte-aware eviction); requests are unchanged.
pub const PROTOCOL_VERSION: u64 = 2;

/// A client request: one flat struct for every command. `cmd` selects the
/// operation; the vendored serde treats absent JSON fields as `None`, so a
/// request only carries what its command needs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Request {
    /// `plan` | `delta` | `get_plan` | `metrics` | `shutdown`.
    pub cmd: Option<String>,
    /// Session (field) name; required by `plan`, `delta`, `get_plan`.
    pub field: Option<String>,
    /// `plan`: number of sensors for a generated uniform deployment.
    pub n: Option<u64>,
    /// `plan`: side of the square field in meters (generated deployment).
    pub side: Option<f64>,
    /// `plan`: RNG seed for the generated deployment (default 42).
    pub seed: Option<u64>,
    /// `plan`: explicit sensor positions (alternative to `n`/`side`).
    pub sensors: Option<Vec<Point>>,
    /// `plan`: sink position for an explicit deployment (default: field
    /// bounding-box center).
    pub sink: Option<Point>,
    /// `plan`: transmission range in meters (required). `delta`: new range
    /// (optional; triggers coverage revalidation + repair).
    pub range: Option<f64>,
    /// `delta`: sensor ids that died since the last request.
    pub died: Option<Vec<u64>>,
    /// `delta`: positions of sensors added since the last request.
    pub added: Option<Vec<Point>>,
}

/// Machine-readable error payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Stable error code (see module docs).
    pub code: String,
    /// Human-readable detail.
    pub message: String,
}

/// `ok: false` response envelope.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Always `false`.
    pub ok: bool,
    /// What went wrong.
    pub error: ErrorBody,
}

impl ErrorResponse {
    /// Builds an error response with the given code and message.
    pub fn new(code: &str, message: impl Into<String>) -> Self {
        ErrorResponse {
            ok: false,
            error: ErrorBody {
                code: code.to_string(),
                message: message.into(),
            },
        }
    }
}

/// Successful `plan`/`delta` response: a summary of the session's current
/// plan (fetch the full plan with `get_plan`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanSummary {
    /// Always `true`.
    pub ok: bool,
    /// Session name.
    pub field: String,
    /// How the plan was produced: `cold` (fresh plan), `repair`
    /// (incremental adopt/splice), `replan` (repair escalated to a full
    /// re-plan of the live sub-network), or `noop` (nothing to do).
    pub mode: String,
    /// Monotonic plan generation within the session (0 = cold plan).
    pub generation: u64,
    /// Total sensors the session tracks (alive + dead).
    pub n_sensors: u64,
    /// Sensors currently alive.
    pub live: u64,
    /// Polling points in the current tour.
    pub polling_points: u64,
    /// Closed tour length in meters.
    pub tour_m: f64,
    /// Server-side wall time spent planning/repairing, milliseconds.
    pub elapsed_ms: f64,
}

/// Successful `get_plan` response: the session's full current plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GetPlanResponse {
    /// Always `true`.
    pub ok: bool,
    /// Session name.
    pub field: String,
    /// Plan generation (matches the last `plan`/`delta` summary).
    pub generation: u64,
    /// Transmission range the plan was built for.
    pub range: f64,
    /// The complete gathering plan (tour-ordered polling points +
    /// assignment). Dead sensors carry `assignment[s] == usize::MAX`.
    pub plan: GatheringPlan,
}

/// One phase-span record in a [`MetricsResponse`] (mirrors
/// `mdg_obs::SpanRecord`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpanEntry {
    /// `/`-joined span path, e.g. `serve/delta/repair`.
    pub path: String,
    /// Spans closed under this path.
    pub calls: u64,
    /// Total wall nanoseconds.
    pub wall_nanos: u64,
    /// Items attributed to the span.
    pub items: u64,
}

/// One counter record in a [`MetricsResponse`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Counter path, e.g. `serve/requests/delta`.
    pub path: String,
    /// Accumulated value since server start.
    pub value: u64,
}

/// One log2-histogram record in a [`MetricsResponse`] (mirrors
/// `mdg_obs::HistRecord`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistEntry {
    /// Histogram path, e.g. `serve/latency_us/delta`.
    pub path: String,
    /// Total samples.
    pub count: u64,
    /// Non-empty `(log2 bucket index, count)` pairs, ascending.
    pub buckets: Vec<(u32, u64)>,
}

/// Per-session summary in a [`MetricsResponse`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionInfo {
    /// Session name.
    pub field: String,
    /// Session flavor: `"flat"` (adopt/splice repair) or `"hier"`
    /// (retained tiled plan, dirty-tile deltas).
    pub kind: String,
    /// Total sensors tracked.
    pub n_sensors: u64,
    /// Sensors alive.
    pub live: u64,
    /// Polling points in the current tour.
    pub polling_points: u64,
    /// Current tour length, meters.
    pub tour_m: f64,
    /// Plan generation.
    pub generation: u64,
    /// Estimated heap footprint of the warm session, bytes (drives the
    /// server's byte-aware LRU eviction).
    pub approx_bytes: u64,
    /// Wall time of the session's cold plan, milliseconds.
    pub cold_plan_ms: f64,
    /// Delta requests applied.
    pub deltas: u64,
    /// Deltas resolved by incremental repair.
    pub repairs: u64,
    /// Deltas that escalated to a full re-plan.
    pub full_replans: u64,
}

/// Successful `metrics` response: server totals plus the `mdg-obs`
/// profile delta since server start (the server snapshots its baseline at
/// startup and diffs against it, so the host process's registry is never
/// reset).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsResponse {
    /// Always `true`.
    pub ok: bool,
    /// Protocol version ([`PROTOCOL_VERSION`]).
    pub protocol: u64,
    /// Seconds since the server started.
    pub uptime_secs: f64,
    /// Requests handled (all commands, including errors).
    pub requests: u64,
    /// Requests answered with an error response.
    pub errors: u64,
    /// Sessions evicted by the LRU bound.
    pub evictions: u64,
    /// Live sessions, most-recently-used last.
    pub sessions: Vec<SessionInfo>,
    /// Span deltas since server start.
    pub spans: Vec<SpanEntry>,
    /// Counter deltas since server start.
    pub counters: Vec<CounterEntry>,
    /// Histogram deltas since server start.
    pub hists: Vec<HistEntry>,
}

/// Successful `shutdown` response, written before the daemon drains.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShutdownResponse {
    /// Always `true`.
    pub ok: bool,
    /// Always `true`: the daemon stops accepting and drains in-flight
    /// connections after this response.
    pub draining: bool,
}

/// Minimal envelope for clients that only need to know whether a response
/// succeeded before committing to a command-specific parse.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ack {
    /// The response's success flag.
    pub ok: bool,
}

/// Outcome of [`read_request_line`].
#[derive(Debug)]
pub enum LineRead {
    /// A complete `\n`-terminated line (terminator stripped).
    Line(String),
    /// Clean end of stream (at a line boundary, or mid-line — a truncated
    /// trailing line is dropped, not parsed).
    Eof,
    /// The line exceeded the configured byte bound before a `\n` arrived.
    Oversized,
}

/// Status of one [`read_request_line_into`] call; on `Line` the bytes
/// live in the caller's buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineStatus {
    /// A complete line was read into the buffer (terminator stripped).
    Line,
    /// Clean end of stream; the buffer holds any truncated trailing bytes.
    Eof,
    /// The line exceeded the byte bound before a `\n` arrived.
    Oversized,
}

/// Reads one `\n`-terminated line of at most `max_bytes` bytes.
///
/// The bound is enforced *while reading*: an attacker streaming an endless
/// line is cut off after `max_bytes`, never buffered whole. I/O errors
/// (including read timeouts) surface as `Err`.
pub fn read_request_line<R: BufRead>(reader: &mut R, max_bytes: usize) -> io::Result<LineRead> {
    let mut line = Vec::new();
    Ok(
        match read_request_line_into(reader, max_bytes, &mut line)? {
            LineStatus::Line => LineRead::Line(String::from_utf8_lossy(&line).into_owned()),
            LineStatus::Eof => LineRead::Eof,
            LineStatus::Oversized => LineRead::Oversized,
        },
    )
}

/// [`read_request_line`] into a caller-owned buffer (cleared first), so a
/// connection serving many requests reuses one line buffer at its
/// high-water capacity instead of allocating per request.
pub fn read_request_line_into<R: BufRead>(
    reader: &mut R,
    max_bytes: usize,
    line: &mut Vec<u8>,
) -> io::Result<LineStatus> {
    line.clear();
    loop {
        let buf = match reader.fill_buf() {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            // EOF. A partial trailing line (truncated request) is dropped:
            // there is no one left to answer.
            return Ok(LineStatus::Eof);
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if line.len() + pos > max_bytes {
                    reader.consume(pos + 1);
                    return Ok(LineStatus::Oversized);
                }
                line.extend_from_slice(&buf[..pos]);
                reader.consume(pos + 1);
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(LineStatus::Line);
            }
            None => {
                let len = buf.len();
                if line.len() + len > max_bytes {
                    reader.consume(len);
                    return Ok(LineStatus::Oversized);
                }
                line.extend_from_slice(buf);
                reader.consume(len);
            }
        }
    }
}

/// Serializes `value` and writes it as one `\n`-terminated line, flushing.
pub fn write_response_line<W: Write, T: Serialize>(writer: &mut W, value: &T) -> io::Result<()> {
    let json = serde_json::to_string(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    writer.write_all(json.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_roundtrip_with_missing_fields() {
        let req: Request =
            serde_json::from_str(r#"{"cmd":"plan","field":"f","n":100,"side":200,"range":30}"#)
                .unwrap();
        assert_eq!(req.cmd.as_deref(), Some("plan"));
        assert_eq!(req.n, Some(100));
        assert!(req.died.is_none());
        assert!(req.sensors.is_none());
        // Unknown fields are ignored.
        let req: Request = serde_json::from_str(r#"{"cmd":"metrics","bogus":1}"#).unwrap();
        assert_eq!(req.cmd.as_deref(), Some("metrics"));
    }

    #[test]
    fn read_line_splits_and_strips() {
        let mut r = BufReader::new(&b"{\"a\":1}\r\n{\"b\":2}\n"[..]);
        match read_request_line(&mut r, 1024).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "{\"a\":1}"),
            other => panic!("{other:?}"),
        }
        match read_request_line(&mut r, 1024).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "{\"b\":2}"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            read_request_line(&mut r, 1024).unwrap(),
            LineRead::Eof
        ));
    }

    #[test]
    fn truncated_trailing_line_is_eof() {
        let mut r = BufReader::new(&b"{\"cmd\":\"plan\""[..]);
        assert!(matches!(
            read_request_line(&mut r, 1024).unwrap(),
            LineRead::Eof
        ));
    }

    #[test]
    fn oversized_line_is_cut_off_not_buffered() {
        let big = vec![b'x'; 4096];
        let mut r = BufReader::new(&big[..]);
        assert!(matches!(
            read_request_line(&mut r, 64).unwrap(),
            LineRead::Oversized
        ));
    }

    #[test]
    fn oversized_with_newline_resyncs_to_next_line() {
        let mut data = vec![b'x'; 256];
        data.extend_from_slice(b"\n{\"ok\":1}\n");
        let mut r = BufReader::new(&data[..]);
        assert!(matches!(
            read_request_line(&mut r, 64).unwrap(),
            LineRead::Oversized
        ));
    }

    #[test]
    fn error_response_serializes() {
        let e = ErrorResponse::new("bad_json", "oops");
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"ok\":false"), "{json}");
        assert!(json.contains("\"code\":\"bad_json\""), "{json}");
        let back: ErrorResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back.error.code, "bad_json");
    }
}
