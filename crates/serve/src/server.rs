//! The TCP daemon: accept loop, connection handling, session table,
//! metrics, and graceful drain.
//!
//! ## Threading model
//!
//! One nonblocking accept loop thread plus one plain `std::thread` per
//! connection. The *planning work inside a request* fans out on the
//! process-wide `mdg-par` worker pool; the pool runs one job at a time and
//! lets late arrivals degrade to inline sequential execution, so
//! concurrent requests contend for the pool but never deadlock and never
//! change any plan (the `mdg-par` determinism contract).
//!
//! ## Robustness
//!
//! A connection can fail in exactly four ways, and none of them kills the
//! daemon or poisons the session table:
//!
//! * **Malformed JSON** → `bad_json` error response, connection stays up.
//! * **Oversized line** → `oversized` error response, connection closed
//!   (there is no reliable way to resynchronize an unbounded line).
//! * **Disconnect / timeout** (including mid-request) → the connection
//!   thread cleans up and exits; sessions are untouched.
//! * **Handler panic** → caught per request; the session being mutated is
//!   evicted (its state can no longer be trusted) and the client gets an
//!   `internal` error response.
//!
//! ## Metrics without smearing
//!
//! Request latencies are measured per request on the connection thread and
//! recorded into `serve/latency_us/<cmd>` histograms — each sample is one
//! request's own wall time, so concurrent requests cannot smear each
//! other's numbers. Registry-level spans/counters are reported by
//! `metrics` as a [`Profile::diff`] against the snapshot taken at server
//! start, which leaves the host process's global registry untouched
//! (no reset).

use crate::protocol::*;
use crate::session::{DeltaError, DeltaMode, FieldSession, MAX_COORD};
use mdg_core::PlannerConfig;
use mdg_geom::Aabb;
use mdg_net::{Deployment, DeploymentConfig};
use mdg_obs::Profile;
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Session-table bound; inserting past it evicts the least-recently
    /// used session.
    pub max_sessions: usize,
    /// Per-request socket read timeout (idle connections are dropped).
    pub read_timeout: Option<Duration>,
    /// Socket write timeout for responses.
    pub write_timeout: Option<Duration>,
    /// Hard bound on one request line, enforced while reading.
    pub max_line_bytes: usize,
    /// Hard bound on a session's sensor count (`n`, or `sensors` length
    /// plus later additions).
    pub max_sensors: usize,
    /// `plan` requests above this sensor count get a hierarchical
    /// session (retained tiled plan, dirty-tile deltas) instead of a
    /// flat one — the flat session's quadratic coverage bitmap makes
    /// warm million-sensor sessions impossible.
    pub hier_threshold: usize,
    /// Byte budget for the whole session table (estimated footprints,
    /// see `FieldSession::approx_bytes`). Crossing it evicts
    /// least-recently-used sessions until back under budget; a single
    /// session over the budget is kept (evicting it would make the
    /// daemon useless for exactly the large fields it exists to serve).
    pub max_session_bytes: u64,
    /// How long shutdown waits for in-flight connections to drain before
    /// giving up.
    pub drain_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            max_sessions: 64,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(10)),
            max_line_bytes: 32 << 20,
            max_sensors: 1_000_000,
            hier_threshold: 50_000,
            max_session_bytes: 4 << 30,
            drain_timeout: Duration::from_secs(30),
        }
    }
}

/// LRU-bounded session table. The table lock is held only for lookups and
/// bookkeeping — never across planning or repair.
struct SessionTable {
    map: HashMap<String, TableEntry>,
    tick: u64,
    evictions: u64,
}

struct TableEntry {
    session: Arc<Mutex<FieldSession>>,
    last_used: u64,
    /// Estimated session footprint, refreshed after every delta (deltas
    /// can grow a session far past its cold size).
    bytes: u64,
}

impl SessionTable {
    fn new() -> Self {
        SessionTable {
            map: HashMap::new(),
            tick: 0,
            evictions: 0,
        }
    }

    /// Looks up a session and marks it most-recently used.
    fn touch(&mut self, name: &str) -> Option<Arc<Mutex<FieldSession>>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(name).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.session)
        })
    }

    /// Inserts (or replaces) a session, then evicts least-recently-used
    /// entries until both bounds hold. Returns the evicted names,
    /// LRU-first. The just-inserted session carries the freshest tick,
    /// so it is only ever chosen when it is the table's sole entry —
    /// which the `len > 1` guard on the byte bound forbids: one session
    /// over the byte budget alone is kept (a big field is the point of
    /// the daemon), it just evicts everything else.
    fn insert(
        &mut self,
        name: String,
        session: FieldSession,
        cap: usize,
        max_bytes: u64,
    ) -> Vec<String> {
        self.tick += 1;
        let bytes = session.approx_bytes();
        self.map.insert(
            name,
            TableEntry {
                session: Arc::new(Mutex::new(session)),
                last_used: self.tick,
                bytes,
            },
        );
        self.enforce(cap, max_bytes)
    }

    /// Refreshes one session's byte estimate, then re-applies the byte
    /// bound (a delta that added sensors may have pushed the table over
    /// budget). Returns the evicted names.
    fn set_bytes(&mut self, name: &str, bytes: u64, cap: usize, max_bytes: u64) -> Vec<String> {
        if let Some(e) = self.map.get_mut(name) {
            e.bytes = bytes;
        }
        self.enforce(cap, max_bytes)
    }

    /// Evicts LRU entries until the count cap and byte budget both hold.
    fn enforce(&mut self, cap: usize, max_bytes: u64) -> Vec<String> {
        let mut evicted = Vec::new();
        loop {
            let total: u64 = self.map.values().map(|e| e.bytes).sum();
            let over_count = self.map.len() > cap.max(1);
            let over_bytes = total > max_bytes && self.map.len() > 1;
            if !(over_count || over_bytes) {
                break;
            }
            let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            self.map.remove(&victim);
            self.evictions += 1;
            evicted.push(victim);
        }
        evicted
    }

    fn remove(&mut self, name: &str) -> bool {
        self.map.remove(name).is_some()
    }

    /// Session summaries, least-recently-used first.
    fn infos(&self) -> Vec<SessionInfo> {
        let mut entries: Vec<(&TableEntry, u64)> =
            self.map.values().map(|e| (e, e.last_used)).collect();
        entries.sort_by_key(|&(_, t)| t);
        entries
            .iter()
            .map(|(e, _)| lock_unpoisoned(&e.session).info())
            .collect()
    }
}

/// Locks a mutex, recovering from poisoning: a poisoned session is evicted
/// by the panic path before anyone else can lock it, and the remaining
/// shared structures (table, baseline) are plain data safe to read after a
/// panic.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One live connection as the drain logic sees it: a handle to force the
/// socket closed, and whether the connection thread is currently serving
/// a request (vs blocked waiting for the next line).
struct ConnEntry {
    stream: TcpStream,
    busy: Arc<AtomicBool>,
}

struct Shared {
    cfg: ServeConfig,
    sessions: Mutex<SessionTable>,
    shutdown: AtomicBool,
    active_conns: AtomicUsize,
    conns: Mutex<HashMap<u64, ConnEntry>>,
    next_conn_id: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    started: Instant,
    obs_baseline: Mutex<Profile>,
}

/// A running planning daemon. Dropping the handle does **not** stop it;
/// call [`Server::shutdown`] (or send a `shutdown` request) and then
/// [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving in background threads.
    ///
    /// Recording is enabled on the global `mdg-obs` registry (it is the
    /// metrics substrate) and a baseline snapshot is taken so `metrics`
    /// responses report deltas without ever resetting the registry.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        mdg_obs::set_enabled(true);
        let shared = Arc::new(Shared {
            cfg,
            sessions: Mutex::new(SessionTable::new()),
            shutdown: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            started: Instant::now(),
            obs_baseline: Mutex::new(mdg_obs::snapshot()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("mdg-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Server {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests the daemon stop accepting and drain. Returns immediately;
    /// use [`Server::join`] to wait.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested (by handle or by request).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Waits until the accept loop has exited and in-flight connections
    /// have drained (bounded by [`ServeConfig::drain_timeout`]).
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let id = shared.next_conn_id.fetch_add(1, Ordering::SeqCst);
                let busy = Arc::new(AtomicBool::new(false));
                if let Ok(clone) = stream.try_clone() {
                    lock_unpoisoned(&shared.conns).insert(
                        id,
                        ConnEntry {
                            stream: clone,
                            busy: Arc::clone(&busy),
                        },
                    );
                }
                shared.active_conns.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("mdg-serve-conn".into())
                    .spawn(move || {
                        // The guard deregisters even if the handler panics
                        // through (it cannot — dispatch catches — but the
                        // drain count must never leak regardless).
                        let _guard = ConnGuard {
                            shared: &conn_shared,
                            id,
                        };
                        handle_connection(stream, &conn_shared, &busy);
                    });
                if spawned.is_err() {
                    lock_unpoisoned(&shared.conns).remove(&id);
                    shared.active_conns.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                eprintln!("mdg-serve: accept failed: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    // Drain. A connection mid-request finishes, writes its response, and
    // exits (its loop re-checks the shutdown flag). A connection sitting
    // idle in a blocking read has nothing to answer, so its socket is
    // closed out from under it — that is what makes the drain prompt
    // instead of waiting out every idle client's read timeout.
    let deadline = Instant::now() + shared.cfg.drain_timeout;
    while shared.active_conns.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        for entry in lock_unpoisoned(&shared.conns).values() {
            if !entry.busy.load(Ordering::SeqCst) {
                let _ = entry.stream.shutdown(std::net::Shutdown::Both);
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

struct ConnGuard<'a> {
    shared: &'a Shared,
    id: u64,
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        lock_unpoisoned(&self.shared.conns).remove(&self.id);
        self.shared.active_conns.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared, busy: &AtomicBool) {
    let _ = stream.set_read_timeout(shared.cfg.read_timeout);
    let _ = stream.set_write_timeout(shared.cfg.write_timeout);
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    // One line buffer per connection: a warm session replaying thousands of
    // deltas reuses it at its high-water capacity instead of allocating a
    // fresh Vec + String per request.
    let mut line_buf: Vec<u8> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match read_request_line_into(&mut reader, shared.cfg.max_line_bytes, &mut line_buf) {
            Ok(LineStatus::Line) => {}
            Ok(LineStatus::Eof) => break,
            Ok(LineStatus::Oversized) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                mdg_obs::counter("serve/errors/oversized").add(1);
                let resp = ErrorResponse::new(
                    "oversized",
                    format!(
                        "request line exceeds {} bytes; closing connection",
                        shared.cfg.max_line_bytes
                    ),
                );
                let _ = write_response_line(&mut writer, &resp);
                break;
            }
            // Read timeout or disconnect mid-line: nothing to answer.
            Err(_) => break,
        }
        // Borrowed Cow in the valid-UTF-8 common case — no copy.
        let line = String::from_utf8_lossy(&line_buf);
        if line.trim().is_empty() {
            continue;
        }
        shared.requests.fetch_add(1, Ordering::Relaxed);
        // Busy window: from accepted line to written response. The drain
        // logic only force-closes sockets outside this window, so an
        // in-flight request always gets its answer.
        busy.store(true, Ordering::SeqCst);
        let (response_json, close_after) = dispatch_guarded(&line, shared);
        let write_result = write_json_line(&mut writer, &response_json);
        busy.store(false, Ordering::SeqCst);
        if write_result.is_err() {
            // Client vanished mid-request; state is already consistent.
            break;
        }
        if close_after {
            break;
        }
    }
}

/// Writes an already-serialized JSON response as one `\n`-terminated line
/// (the dispatcher serializes each concrete response type itself so one
/// writer call can send any of them).
fn write_json_line<W: io::Write>(writer: &mut W, json: &str) -> io::Result<()> {
    writer.write_all(json.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Runs the dispatcher under `catch_unwind`. A panic evicts the session
/// the request named (its invariants can no longer be trusted) and
/// reports `internal` — the daemon itself never dies.
fn dispatch_guarded(line: &str, shared: &Shared) -> (String, bool) {
    match catch_unwind(AssertUnwindSafe(|| dispatch(line, shared))) {
        Ok(result) => result,
        Err(panic) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            mdg_obs::counter("serve/errors/internal").add(1);
            let msg = panic_message(&panic);
            if let Ok(req) = serde_json::from_str::<Request>(line) {
                if let Some(field) = req.field {
                    if lock_unpoisoned(&shared.sessions).remove(&field) {
                        eprintln!("mdg-serve: handler panicked ({msg}); evicted session `{field}`");
                    }
                }
            }
            (
                error_json("internal", format!("request handler panicked: {msg}")),
                false,
            )
        }
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".into()
    }
}

/// Hand-written last-resort error line for when serialization itself
/// fails: the one response that cannot fail to build.
const FALLBACK_ERROR: &str =
    r#"{"ok":false,"error":{"code":"internal","message":"response serialization failed"}}"#;

fn error_json(code: &str, message: impl Into<String>) -> String {
    // Serialization of these plain structs cannot realistically fail
    // (the vendored serializer maps non-finite floats to `null` rather
    // than erroring), but a panic here would tear down the request path
    // on the least-expected line — degrade to a static error instead.
    serde_json::to_string(&ErrorResponse::new(code, message))
        .unwrap_or_else(|_| FALLBACK_ERROR.to_string())
}

fn ok_json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap_or_else(|_| FALLBACK_ERROR.to_string())
}

/// Parses and executes one request line. Returns the response JSON and
/// whether the connection should close afterwards.
fn dispatch(line: &str, shared: &Shared) -> (String, bool) {
    let req: Request = match serde_json::from_str(line) {
        Ok(r) => r,
        Err(e) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            mdg_obs::counter("serve/errors/bad_json").add(1);
            return (
                error_json("bad_json", format!("malformed request: {e}")),
                false,
            );
        }
    };
    let cmd = req.cmd.clone().unwrap_or_default();
    let t0 = Instant::now();
    let result = match cmd.as_str() {
        "plan" => handle_plan(&req, shared).map(|r| (r, false)),
        "delta" => handle_delta(&req, shared).map(|r| (r, false)),
        "get_plan" => handle_get_plan(&req, shared).map(|r| (r, false)),
        "metrics" => Ok((handle_metrics(shared), false)),
        "shutdown" => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Ok((
                ok_json(&ShutdownResponse {
                    ok: true,
                    draining: true,
                }),
                true,
            ))
        }
        "" => Err(("bad_request".to_string(), "missing `cmd`".to_string())),
        other => Err((
            "unknown_cmd".to_string(),
            format!("unknown cmd `{other}` (plan|delta|get_plan|metrics|shutdown)"),
        )),
    };
    // Per-request latency, measured on this thread for this request only —
    // immune to concurrent-request smearing by construction.
    let known_cmd = matches!(
        cmd.as_str(),
        "plan" | "delta" | "get_plan" | "metrics" | "shutdown"
    );
    if known_cmd {
        mdg_obs::counter(&format!("serve/requests/{cmd}")).add(1);
        mdg_obs::histogram(&format!("serve/latency_us/{cmd}"))
            .record(t0.elapsed().as_micros() as u64);
    }
    match result {
        Ok((json, close)) => (json, close),
        Err((code, message)) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            mdg_obs::counter(&format!("serve/errors/{code}")).add(1);
            (error_json(&code, message), false)
        }
    }
}

type HandlerError = (String, String);

fn bad_request(msg: impl Into<String>) -> HandlerError {
    ("bad_request".into(), msg.into())
}

fn required_field(req: &Request) -> Result<String, HandlerError> {
    match &req.field {
        Some(f) if !f.is_empty() => Ok(f.clone()),
        _ => Err(bad_request("missing `field` (session name)")),
    }
}

fn handle_plan(req: &Request, shared: &Shared) -> Result<String, HandlerError> {
    let _sp = mdg_obs::span("serve/plan");
    let field = required_field(req)?;
    let range = req.range.ok_or_else(|| bad_request("plan needs `range`"))?;
    if !(range.is_finite() && range > 0.0) {
        return Err(bad_request(format!("range must be positive, got {range}")));
    }
    if range > MAX_COORD {
        return Err(bad_request(format!(
            "range {range} exceeds the {MAX_COORD:e} m bound"
        )));
    }
    let deployment = build_deployment(req, shared)?;
    if deployment.sensors.is_empty() {
        return Err(bad_request("plan needs at least one sensor"));
    }
    // Planning runs outside the table lock: a slow cold plan must not
    // block lookups for other sessions. Large fields get a hierarchical
    // session (dirty-tile deltas); small ones keep the flat planner.
    let session = FieldSession::plan_cold_auto(
        &field,
        deployment,
        range,
        PlannerConfig::default(),
        shared.cfg.hier_threshold,
    )
    .map_err(|e| bad_request(format!("planning failed: {e}")))?;
    let summary = summarize(&session, "cold", session.stats.cold_plan_ms);
    let evicted = lock_unpoisoned(&shared.sessions).insert(
        field,
        session,
        shared.cfg.max_sessions,
        shared.cfg.max_session_bytes,
    );
    log_evictions(&evicted);
    Ok(ok_json(&summary))
}

fn build_deployment(req: &Request, shared: &Shared) -> Result<Deployment, HandlerError> {
    if let Some(sensors) = &req.sensors {
        if sensors.len() > shared.cfg.max_sensors {
            return Err(bad_request(format!(
                "{} sensors exceeds the per-session bound of {}",
                sensors.len(),
                shared.cfg.max_sensors
            )));
        }
        for p in sensors {
            if !(p.x.is_finite() && p.y.is_finite()) {
                return Err(bad_request("sensor positions must be finite"));
            }
            if p.x.abs() > MAX_COORD || p.y.abs() > MAX_COORD {
                return Err(bad_request(format!(
                    "sensor positions must be within ±{MAX_COORD:e} m"
                )));
            }
        }
        let field = Aabb::from_points(sensors)
            .ok_or_else(|| bad_request("plan needs at least one sensor"))?;
        let sink = req.sink.unwrap_or_else(|| field.center());
        if !(sink.x.is_finite() && sink.y.is_finite()) {
            return Err(bad_request("sink position must be finite"));
        }
        if sink.x.abs() > MAX_COORD || sink.y.abs() > MAX_COORD {
            return Err(bad_request(format!(
                "sink position must be within ±{MAX_COORD:e} m"
            )));
        }
        Ok(Deployment {
            sensors: sensors.clone(),
            sink,
            field,
        })
    } else {
        let n = req
            .n
            .ok_or_else(|| bad_request("plan needs `sensors` or `n`+`side`"))?
            as usize;
        if n == 0 || n > shared.cfg.max_sensors {
            return Err(bad_request(format!(
                "n must be in 1..={}, got {n}",
                shared.cfg.max_sensors
            )));
        }
        let side = req
            .side
            .ok_or_else(|| bad_request("generated plan needs `side`"))?;
        if !(side.is_finite() && side > 0.0) {
            return Err(bad_request(format!("side must be positive, got {side}")));
        }
        let seed = req.seed.unwrap_or(42);
        Ok(DeploymentConfig::uniform(n, side).generate(seed))
    }
}

fn handle_delta(req: &Request, shared: &Shared) -> Result<String, HandlerError> {
    let _sp = mdg_obs::span("serve/delta");
    let field = required_field(req)?;
    let session = lock_unpoisoned(&shared.sessions)
        .touch(&field)
        .ok_or_else(|| {
            (
                "unknown_session".to_string(),
                format!("no session named `{field}` (create it with `plan`)"),
            )
        })?;
    // Borrow the request's own slices — no per-delta clone of the died /
    // added lists (at n=1M churn these are the largest request payloads).
    let died: &[u64] = req.died.as_deref().unwrap_or(&[]);
    let added = req.added.as_deref().unwrap_or(&[]);
    let mut session = lock_unpoisoned(&session);
    if session.alive().len() + added.len() > shared.cfg.max_sensors {
        return Err(bad_request(format!(
            "delta would grow the session past the {}-sensor bound",
            shared.cfg.max_sensors
        )));
    }
    let outcome = match session.apply_delta(died, added, req.range) {
        Ok(outcome) => outcome,
        // Rejected during validation: the session is untouched and stays.
        Err(DeltaError::Invalid(msg)) => return Err(bad_request(msg)),
        // Mutated and then failed validation: serving this session again
        // would hand out a corrupt plan. Evict it (the delta handler's
        // equivalent of the panic path) and tell the client to re-plan.
        Err(DeltaError::Corrupt(msg)) => {
            drop(session);
            if lock_unpoisoned(&shared.sessions).remove(&field) {
                mdg_obs::counter("serve/sessions/evicted").add(1);
                eprintln!("mdg-serve: delta corrupted session `{field}` ({msg}); evicted");
            }
            return Err((
                "internal".to_string(),
                format!(
                    "delta left the session invalid ({msg}); session evicted, re-plan with `plan`"
                ),
            ));
        }
    };
    match outcome.mode {
        DeltaMode::Repair => mdg_obs::counter("serve/repairs").add(1),
        DeltaMode::Replan => mdg_obs::counter("serve/full_replans").add(1),
        DeltaMode::Noop => {}
    }
    let response = ok_json(&summarize(
        &session,
        outcome.mode.as_str(),
        outcome.elapsed_ms,
    ));
    // Refresh the footprint estimate under the table lock only — the
    // session guard is dropped first (metrics holds the table lock while
    // locking sessions, so the reverse order would be a deadlock).
    let bytes = session.approx_bytes();
    drop(session);
    let evicted = lock_unpoisoned(&shared.sessions).set_bytes(
        &field,
        bytes,
        shared.cfg.max_sessions,
        shared.cfg.max_session_bytes,
    );
    log_evictions(&evicted);
    Ok(response)
}

fn log_evictions(evicted: &[String]) {
    for name in evicted {
        mdg_obs::counter("serve/sessions/evicted").add(1);
        eprintln!("mdg-serve: session table over budget; evicted LRU session `{name}`");
    }
}

fn handle_get_plan(req: &Request, shared: &Shared) -> Result<String, HandlerError> {
    let _sp = mdg_obs::span("serve/get_plan");
    let field = required_field(req)?;
    let session = lock_unpoisoned(&shared.sessions)
        .touch(&field)
        .ok_or_else(|| {
            (
                "unknown_session".to_string(),
                format!("no session named `{field}` (create it with `plan`)"),
            )
        })?;
    let session = lock_unpoisoned(&session);
    Ok(ok_json(&GetPlanResponse {
        ok: true,
        field: session.name.clone(),
        generation: session.generation,
        range: session.range(),
        plan: session.plan().clone(),
    }))
}

fn handle_metrics(shared: &Shared) -> String {
    let _sp = mdg_obs::span("serve/metrics");
    let now = mdg_obs::snapshot();
    let delta = now.diff(&lock_unpoisoned(&shared.obs_baseline));
    let (sessions, evictions) = {
        let table = lock_unpoisoned(&shared.sessions);
        (table.infos(), table.evictions)
    };
    ok_json(&MetricsResponse {
        ok: true,
        protocol: PROTOCOL_VERSION,
        uptime_secs: shared.started.elapsed().as_secs_f64(),
        requests: shared.requests.load(Ordering::Relaxed),
        errors: shared.errors.load(Ordering::Relaxed),
        evictions,
        sessions,
        spans: delta
            .spans
            .iter()
            .map(|s| SpanEntry {
                path: s.path.clone(),
                calls: s.calls,
                wall_nanos: s.wall_nanos,
                items: s.items,
            })
            .collect(),
        counters: delta
            .counters
            .iter()
            .map(|(path, value)| CounterEntry {
                path: path.clone(),
                value: *value,
            })
            .collect(),
        hists: delta
            .hists
            .iter()
            .map(|h| HistEntry {
                path: h.path.clone(),
                count: h.count,
                buckets: h.buckets.clone(),
            })
            .collect(),
    })
}

fn summarize(session: &FieldSession, mode: &str, elapsed_ms: f64) -> PlanSummary {
    PlanSummary {
        ok: true,
        field: session.name.clone(),
        mode: mode.to_string(),
        generation: session.generation,
        n_sensors: session.alive().len() as u64,
        live: session.n_live() as u64,
        polling_points: session.plan().n_polling_points() as u64,
        tour_m: session.plan().tour_length,
        elapsed_ms,
    }
}
