//! A small blocking client for the daemon's line-delimited JSON protocol.
//!
//! Used by the CLI (`mdg serve --request …`), the smoke/CI driver, the
//! churn bench, and the integration tests; external clients can speak the
//! protocol from any language with a TCP socket and a JSON library.

use crate::protocol::*;
use mdg_geom::Point;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Result of a request: the server answered (`Ok`) with either the parsed
/// success payload or a structured error body, or transport failed (`Err`).
pub type Reply<T> = io::Result<Result<T, ErrorBody>>;

/// One persistent connection to a running daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Bound on a response line; the full-plan response for a large field
    /// is megabytes, so this is generous by default (64 MiB).
    pub max_line_bytes: usize,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            max_line_bytes: 64 << 20,
        })
    }

    /// Sets both socket timeouts (None = block forever).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        let stream = self.reader.get_ref();
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)
    }

    /// Sends one raw request line (no trailing newline needed) and returns
    /// the raw response line. The building block for every typed helper —
    /// and for the robustness tests, which deliberately send garbage.
    pub fn send_raw(&mut self, line: &str) -> io::Result<String> {
        self.writer_line(line)?;
        self.read_line()
    }

    fn writer_line(&mut self, line: &str) -> io::Result<()> {
        use io::Write;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    fn read_line(&mut self) -> io::Result<String> {
        match read_request_line(&mut self.reader, self.max_line_bytes)? {
            LineRead::Line(l) => Ok(l),
            LineRead::Eof => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            LineRead::Oversized => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "response line exceeded the client bound",
            )),
        }
    }

    /// Sends a typed request and parses the response as `T`, or as an
    /// [`ErrorResponse`] when the server reports `ok: false`.
    pub fn request<T: serde::Deserialize>(&mut self, req: &Request) -> Reply<T> {
        let line = serde_json::to_string(req)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let resp = self.send_raw(&line)?;
        let ack: Ack = serde_json::from_str(&resp).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unparseable response: {e}"),
            )
        })?;
        if ack.ok {
            serde_json::from_str::<T>(&resp)
                .map(Ok)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
        } else {
            let err: ErrorResponse = serde_json::from_str(&resp)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            Ok(Err(err.error))
        }
    }

    /// `plan` with a server-generated uniform deployment.
    pub fn plan_uniform(
        &mut self,
        field: &str,
        n: u64,
        side: f64,
        seed: u64,
        range: f64,
    ) -> Reply<PlanSummary> {
        self.request(&Request {
            cmd: Some("plan".into()),
            field: Some(field.into()),
            n: Some(n),
            side: Some(side),
            seed: Some(seed),
            range: Some(range),
            ..Request::default()
        })
    }

    /// `plan` with explicit sensor positions.
    pub fn plan_sensors(
        &mut self,
        field: &str,
        sensors: Vec<Point>,
        sink: Option<Point>,
        range: f64,
    ) -> Reply<PlanSummary> {
        self.request(&Request {
            cmd: Some("plan".into()),
            field: Some(field.into()),
            sensors: Some(sensors),
            sink,
            range: Some(range),
            ..Request::default()
        })
    }

    /// `delta`: report deaths/additions/range change, get the repaired
    /// plan's summary.
    pub fn delta(
        &mut self,
        field: &str,
        died: Vec<u64>,
        added: Vec<Point>,
        range: Option<f64>,
    ) -> Reply<PlanSummary> {
        self.request(&Request {
            cmd: Some("delta".into()),
            field: Some(field.into()),
            died: Some(died),
            added: Some(added),
            range,
            ..Request::default()
        })
    }

    /// `get_plan`: fetch the session's full current plan.
    pub fn get_plan(&mut self, field: &str) -> Reply<GetPlanResponse> {
        self.request(&Request {
            cmd: Some("get_plan".into()),
            field: Some(field.into()),
            ..Request::default()
        })
    }

    /// `metrics`: server totals + obs profile delta + session summaries.
    pub fn metrics(&mut self) -> Reply<MetricsResponse> {
        self.request(&Request {
            cmd: Some("metrics".into()),
            ..Request::default()
        })
    }

    /// `shutdown`: ask the daemon to drain and exit. The server closes
    /// this connection after responding.
    pub fn shutdown(&mut self) -> Reply<ShutdownResponse> {
        self.request(&Request {
            cmd: Some("shutdown".into()),
            ..Request::default()
        })
    }
}
