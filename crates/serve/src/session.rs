//! Warm per-field planning sessions.
//!
//! A [`FieldSession`] is the reason the daemon exists: it keeps everything
//! that is expensive to build and slow to change — the deployment, the
//! unit-disk graph and spatial grid ([`Network`]), the sensor-site
//! coverage instance, the alive mask, and the current plan — resident
//! between requests, so a `delta` request runs `mdg-runtime`'s
//! adopt/splice/cheapest-insertion repair over warm state instead of
//! planning cold.
//!
//! ## Repair-vs-replan decision
//!
//! A delta takes one of three paths, in increasing cost:
//!
//! 1. **Repair** (the common case): deaths only. Nothing is rebuilt; the
//!    alive mask flips and [`repair_plan`] patches the tour locally.
//! 2. **Rebuild + repair**: sensors were added or the range changed. The
//!    spatial structures (`Network`, [`CoverageInstance`]) are rebuilt for
//!    the new geometry — `O(n)` spatial work, still far from a cold plan —
//!    then added sensors enter the plan as orphans (adopted by in-range
//!    stops, else covered by spliced-in stops) and a range *decrease*
//!    first unassigns every sensor its stop can no longer reach.
//! 3. **Full replan**: [`repair_plan`] itself escalates when repair lost
//!    too much of the tour ([`RepairConfig::full_replan_stop_fraction`]);
//!    the session reports the delta as `mode: "replan"`.
//!
//! Every delta ends with [`GatheringPlan::validate_live`]: an invalid
//! repaired plan is a hard error, never silently served. The error type
//! distinguishes the two failure worlds — [`DeltaError::Invalid`] (the
//! request was rejected before any mutation; the session is fine) versus
//! [`DeltaError::Corrupt`] (the session mutated and then failed
//! validation; the server evicts it rather than serve corrupt state).

use crate::protocol::SessionInfo;
use mdg_core::{GatheringPlan, PlannerConfig, ShdgPlanner, UNASSIGNED};
use mdg_cover::CoverageInstance;
use mdg_geom::{Aabb, Point};
use mdg_net::{Deployment, Network};
use mdg_runtime::{repair_plan, RepairConfig};
use std::time::Instant;

/// Largest coordinate magnitude a session accepts, in meters.
///
/// Distance arithmetic squares coordinates, so positions beyond ~1e12
/// push `dist_sq` toward `f64` overflow and tour lengths degrade to
/// `inf`/`NaN` — *after* the session has already mutated, which is how a
/// finite-but-absurd `added` position used to corrupt a warm session.
/// Rejecting astronomically large positions up front (like non-finite
/// ones) keeps that failure in the validation phase, where the session
/// is still untouched. 10⁹ km is eight orders of magnitude beyond any
/// deployable field, so no legitimate request is affected.
pub const MAX_COORD: f64 = 1e12;

/// Why a delta failed — and, critically, whether the session survived it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The request was rejected during validation, before any state
    /// changed. The session is still consistent and must be retained;
    /// the client gets a `bad_request`.
    Invalid(String),
    /// The session mutated and the repaired plan then failed validation.
    /// Its state can no longer be trusted: the caller MUST evict it (the
    /// client gets an `internal` error and re-plans cold).
    Corrupt(String),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::Invalid(msg) => write!(f, "{msg}"),
            DeltaError::Corrupt(msg) => write!(f, "session corrupted: {msg}"),
        }
    }
}

impl std::error::Error for DeltaError {}

/// How a delta was resolved (the `mode` field of a `delta` response).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaMode {
    /// The delta required no plan change.
    Noop,
    /// Incremental adopt/splice repair.
    Repair,
    /// Repair escalated to a full re-plan of the live sub-network.
    Replan,
}

impl DeltaMode {
    /// Wire name of the mode.
    pub fn as_str(self) -> &'static str {
        match self {
            DeltaMode::Noop => "noop",
            DeltaMode::Repair => "repair",
            DeltaMode::Replan => "replan",
        }
    }
}

/// What one [`FieldSession::apply_delta`] call did.
#[derive(Debug, Clone, Copy)]
pub struct DeltaOutcome {
    /// Resolution path.
    pub mode: DeltaMode,
    /// Wall time spent applying the delta, milliseconds.
    pub elapsed_ms: f64,
}

/// Cumulative per-session statistics (reported by `metrics`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionStats {
    /// Wall time of the cold plan that created the session, ms.
    pub cold_plan_ms: f64,
    /// Delta requests applied.
    pub deltas: u64,
    /// Deltas resolved by incremental repair.
    pub repairs: u64,
    /// Deltas that escalated to a full re-plan.
    pub full_replans: u64,
}

/// A warm planning session for one named field.
pub struct FieldSession {
    /// Session name (the protocol's `field`).
    pub name: String,
    net: Network,
    inst: CoverageInstance,
    alive: Vec<bool>,
    plan: GatheringPlan,
    repair_cfg: RepairConfig,
    /// Monotonic plan generation (0 = the cold plan).
    pub generation: u64,
    /// Cumulative statistics.
    pub stats: SessionStats,
}

impl FieldSession {
    /// Plans `deployment` cold and wraps the result in a warm session.
    pub fn plan_cold(
        name: impl Into<String>,
        deployment: Deployment,
        range: f64,
        planner_cfg: PlannerConfig,
    ) -> Result<Self, String> {
        let t0 = Instant::now();
        let _sp = mdg_obs::span("cold_plan");
        let net = Network::build(deployment, range);
        let inst = CoverageInstance::sensor_sites(&net.deployment.sensors, range);
        let plan = ShdgPlanner::with_config(planner_cfg)
            .plan(&net)
            .map_err(|e| e.to_string())?;
        plan.validate(&net.deployment.sensors, range)
            .map_err(|e| format!("cold plan failed validation: {e}"))?;
        let alive = vec![true; net.n_sensors()];
        Ok(FieldSession {
            name: name.into(),
            net,
            inst,
            alive,
            plan,
            repair_cfg: RepairConfig::default(),
            generation: 0,
            stats: SessionStats {
                cold_plan_ms: t0.elapsed().as_secs_f64() * 1e3,
                ..SessionStats::default()
            },
        })
    }

    /// The session's current plan.
    pub fn plan(&self) -> &GatheringPlan {
        &self.plan
    }

    /// The session's network (deployment + range + graphs).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The session's alive mask.
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// Number of live sensors.
    pub fn n_live(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Applies a field mutation — `died` sensor ids, `added` sensor
    /// positions, and/or a new transmission `range` — and restores full
    /// live coverage via incremental repair (full-replan fallback).
    ///
    /// Validation errors ([`DeltaError::Invalid`]: out-of-range ids,
    /// non-finite or astronomically large positions, invalid range)
    /// leave the session untouched. A repair-level failure after the
    /// session has mutated surfaces as [`DeltaError::Corrupt`]; the
    /// caller MUST evict the session — its state is no longer trusted.
    pub fn apply_delta(
        &mut self,
        died: &[u64],
        added: &[Point],
        new_range: Option<f64>,
    ) -> Result<DeltaOutcome, DeltaError> {
        let t0 = Instant::now();
        // Validate everything before mutating anything.
        let n = self.alive.len();
        for &s in died {
            if s as usize >= n {
                return Err(DeltaError::Invalid(format!(
                    "died id {s} out of range (session has {n} sensors)"
                )));
            }
        }
        for p in added {
            if !(p.x.is_finite() && p.y.is_finite()) {
                return Err(DeltaError::Invalid(format!(
                    "added sensor at non-finite position ({}, {})",
                    p.x, p.y
                )));
            }
            if p.x.abs() > MAX_COORD || p.y.abs() > MAX_COORD {
                return Err(DeltaError::Invalid(format!(
                    "added sensor at ({}, {}) exceeds the ±{MAX_COORD:e} m coordinate bound",
                    p.x, p.y
                )));
            }
        }
        if let Some(r) = new_range {
            if !(r.is_finite() && r > 0.0) {
                return Err(DeltaError::Invalid(format!(
                    "range must be a positive number, got {r}"
                )));
            }
            if r > MAX_COORD {
                return Err(DeltaError::Invalid(format!(
                    "range {r} exceeds the {MAX_COORD:e} m bound"
                )));
            }
        }
        let range_changed = new_range.is_some_and(|r| (r - self.net.range).abs() > 1e-12);
        if died.is_empty() && added.is_empty() && !range_changed {
            return Ok(DeltaOutcome {
                mode: DeltaMode::Noop,
                elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
            });
        }

        for &s in died {
            self.alive[s as usize] = false;
        }

        // Structural changes (growth, range change) invalidate the spatial
        // structures; rebuild them — O(n) grid/UDG work, no planning.
        if !added.is_empty() || range_changed {
            let _sp = mdg_obs::span("delta/rebuild");
            let range = new_range.unwrap_or(self.net.range);
            let mut sensors = self.net.deployment.sensors.clone();
            sensors.extend_from_slice(added);
            let field = added
                .iter()
                .fold(self.net.deployment.field, |f, &p| f.union(&Aabb::new(p, p)));
            self.net = Network::build(
                Deployment {
                    sensors,
                    sink: self.net.deployment.sink,
                    field,
                },
                range,
            );
            self.inst = CoverageInstance::sensor_sites(&self.net.deployment.sensors, range);
            self.alive.resize(self.net.n_sensors(), true);
            self.plan
                .assignment
                .resize(self.net.n_sensors(), UNASSIGNED);
            if range_changed {
                self.unassign_out_of_range();
            }
        }

        let report = {
            let _sp = mdg_obs::span("delta/repair");
            repair_plan(
                &mut self.plan,
                &self.net,
                &self.inst,
                &self.alive,
                &self.repair_cfg,
            )
        };

        // Past this point the session has mutated: a validation failure
        // is corruption, not a rejectable request.
        self.plan
            .validate_live(&self.net.deployment.sensors, self.net.range, &self.alive)
            .map_err(|e| DeltaError::Corrupt(format!("repaired plan failed validation: {e}")))?;

        self.generation += 1;
        self.stats.deltas += 1;
        let mode = if report.full_replan {
            self.stats.full_replans += 1;
            DeltaMode::Replan
        } else if report.changed() {
            self.stats.repairs += 1;
            DeltaMode::Repair
        } else {
            DeltaMode::Noop
        };
        Ok(DeltaOutcome {
            mode,
            elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
        })
    }

    /// After a range change, drops every assignment the new range no
    /// longer supports; the orphans re-enter coverage through repair.
    fn unassign_out_of_range(&mut self) {
        let sensors = &self.net.deployment.sensors;
        let range = self.net.range;
        let GatheringPlan {
            polling_points,
            assignment,
            ..
        } = &mut self.plan;
        for (k, pp) in polling_points.iter_mut().enumerate() {
            pp.covered.retain(|&s| {
                let keep = sensors[s as usize].dist(pp.pos) <= range + 1e-9;
                if !keep {
                    debug_assert_eq!(assignment[s as usize], k);
                    assignment[s as usize] = UNASSIGNED;
                }
                keep
            });
        }
    }

    /// Per-session summary for the `metrics` response.
    pub fn info(&self) -> SessionInfo {
        SessionInfo {
            field: self.name.clone(),
            n_sensors: self.alive.len() as u64,
            live: self.n_live() as u64,
            polling_points: self.plan.n_polling_points() as u64,
            tour_m: self.plan.tour_length,
            generation: self.generation,
            cold_plan_ms: self.stats.cold_plan_ms,
            deltas: self.stats.deltas,
            repairs: self.stats.repairs,
            full_replans: self.stats.full_replans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdg_net::DeploymentConfig;

    fn session(n: usize, seed: u64) -> FieldSession {
        FieldSession::plan_cold(
            "t",
            DeploymentConfig::uniform(n, 200.0).generate(seed),
            30.0,
            PlannerConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn cold_plan_builds_a_valid_session() {
        let s = session(120, 1);
        assert_eq!(s.generation, 0);
        assert_eq!(s.n_live(), 120);
        assert!(s.plan().n_polling_points() > 0);
        assert!(s.stats.cold_plan_ms >= 0.0);
    }

    #[test]
    fn empty_delta_is_a_noop() {
        let mut s = session(100, 2);
        let out = s.apply_delta(&[], &[], None).unwrap();
        assert_eq!(out.mode, DeltaMode::Noop);
        assert_eq!(s.generation, 0);
    }

    #[test]
    fn deaths_repair_in_place() {
        let mut s = session(150, 3);
        let victims: Vec<u64> = s.plan().polling_points[..2]
            .iter()
            .map(|pp| pp.candidate as u64)
            .collect();
        let out = s.apply_delta(&victims, &[], None).unwrap();
        assert_eq!(out.mode, DeltaMode::Repair);
        assert_eq!(s.generation, 1);
        assert_eq!(s.n_live(), 148);
        s.plan()
            .validate_live(&s.net.deployment.sensors, s.net.range, &s.alive)
            .unwrap();
    }

    #[test]
    fn additions_grow_the_session_and_stay_covered() {
        let mut s = session(100, 4);
        let added = vec![Point::new(10.0, 10.0), Point::new(195.0, 195.0)];
        let out = s.apply_delta(&[], &added, None).unwrap();
        assert_eq!(out.mode, DeltaMode::Repair);
        assert_eq!(s.alive.len(), 102);
        assert_eq!(s.n_live(), 102);
        // Every live sensor (including the new ones) is covered again.
        s.plan()
            .validate_live(&s.net.deployment.sensors, s.net.range, &s.alive)
            .unwrap();
    }

    #[test]
    fn range_shrink_recovers_coverage() {
        let mut s = session(150, 5);
        let out = s.apply_delta(&[], &[], Some(20.0)).unwrap();
        assert!(matches!(out.mode, DeltaMode::Repair | DeltaMode::Replan));
        assert!((s.net.range - 20.0).abs() < 1e-12);
        s.plan()
            .validate_live(&s.net.deployment.sensors, s.net.range, &s.alive)
            .unwrap();
    }

    #[test]
    fn mass_death_escalates_to_replan() {
        let mut s = session(150, 6);
        let victims: Vec<u64> = s
            .plan()
            .polling_points
            .iter()
            .map(|pp| pp.candidate as u64)
            .collect();
        let out = s.apply_delta(&victims, &[], None).unwrap();
        assert_eq!(out.mode, DeltaMode::Replan);
        assert_eq!(s.stats.full_replans, 1);
        s.plan()
            .validate_live(&s.net.deployment.sensors, s.net.range, &s.alive)
            .unwrap();
    }

    #[test]
    fn bad_delta_leaves_the_session_untouched() {
        let mut s = session(80, 7);
        let before_gen = s.generation;
        for err in [
            s.apply_delta(&[80], &[], None).unwrap_err(),
            s.apply_delta(&[], &[Point::new(f64::NAN, 0.0)], None)
                .unwrap_err(),
            s.apply_delta(&[], &[], Some(-1.0)).unwrap_err(),
        ] {
            assert!(
                matches!(err, DeltaError::Invalid(_)),
                "pre-mutation rejection must be Invalid, got {err:?}"
            );
        }
        assert_eq!(s.generation, before_gen);
        assert_eq!(s.n_live(), 80);
    }

    #[test]
    fn huge_finite_coordinates_are_rejected_before_mutation() {
        // 1e300 is finite, but its squared distances overflow to inf and
        // used to corrupt the session *after* it had mutated. The
        // magnitude guard now rejects it in the validation phase.
        let mut s = session(60, 9);
        let before = s.plan().clone();
        for bad in [
            Point::new(1e300, 0.0),
            Point::new(0.0, -1e300),
            Point::new(MAX_COORD * 2.0, 0.0),
        ] {
            let err = s.apply_delta(&[], &[bad], None).unwrap_err();
            assert!(matches!(err, DeltaError::Invalid(_)), "{bad:?}: {err:?}");
        }
        // Session fully intact and still serving the same plan.
        assert_eq!(s.generation, 0);
        assert_eq!(s.alive.len(), 60);
        assert_eq!(*s.plan(), before);
        s.apply_delta(&[], &[Point::new(50.0, 50.0)], None).unwrap();
    }

    #[test]
    fn repeated_deltas_keep_generations_monotone() {
        let mut s = session(200, 8);
        let mut killed = 0u64;
        for i in 0..5 {
            let victim = s
                .alive
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a)
                .map(|(i, _)| i as u64)
                .nth(i * 7)
                .unwrap();
            s.apply_delta(&[victim], &[], None).unwrap();
            killed += 1;
            assert_eq!(s.generation, killed);
        }
        assert_eq!(s.n_live(), 195);
    }
}
