//! Warm per-field planning sessions.
//!
//! A [`FieldSession`] is the reason the daemon exists: it keeps everything
//! that is expensive to build and slow to change resident between
//! requests, so a `delta` request runs over warm state instead of
//! planning cold. A session comes in two flavors, chosen at creation:
//!
//! * **Flat** (the default up to [`FieldSession::plan_cold_auto`]'s threshold): the
//!   deployment, unit-disk graph and spatial grid ([`Network`]), the
//!   sensor-site coverage instance, the alive mask, and the current plan.
//!   Deltas run `mdg-runtime`'s adopt/splice/cheapest-insertion repair.
//! * **Hier** (large fields): a retained [`HierPlan`] — tiling, per-tile
//!   member lists and sub-tours — plus the raw sensor positions and the
//!   alive mask. Deltas run [`HierPlan::apply_delta`]'s dirty-tile
//!   replan: only tiles touched by the delta are re-planned, so a small
//!   delta on a million-sensor field costs a few tiles, not the field.
//!   The flat session's `O(n²)`-bit coverage bitmap is never built,
//!   which is what makes warm million-sensor sessions fit in memory.
//!
//! ## Repair-vs-replan decision
//!
//! A delta takes one of three paths, in increasing cost:
//!
//! 1. **Repair** (the common case): flat sessions flip the alive mask and
//!    patch the tour locally with [`repair_plan`]; hier sessions re-plan
//!    only the dirty tiles and re-stitch.
//! 2. **Rebuild + repair** (flat only): sensors were added or the range
//!    changed. The spatial structures are rebuilt for the new geometry —
//!    `O(n)` spatial work, still far from a cold plan — then repair runs.
//!    Hier sessions absorb additions through the dirty-tile path
//!    directly (the tiling buckets new positions without a rebuild).
//! 3. **Full replan**: flat repair escalates when it lost too much of
//!    the tour ([`RepairConfig::full_replan_stop_fraction`]); hier deltas
//!    escalate when ≥ 50% of occupied tiles are dirty or the range
//!    changed. The session reports the delta as `mode: "replan"`.
//!
//! Every delta ends with [`GatheringPlan::validate_live`]: an invalid
//! repaired plan is a hard error, never silently served. The error type
//! distinguishes the two failure worlds — [`DeltaError::Invalid`] (the
//! request was rejected before any mutation; the session is fine) versus
//! [`DeltaError::Corrupt`] (the session mutated and then failed
//! validation; the server evicts it rather than serve corrupt state).

use crate::protocol::SessionInfo;
use mdg_core::{GatheringPlan, HierConfig, HierPlan, PlannerConfig, ShdgPlanner, UNASSIGNED};
use mdg_cover::CoverageInstance;
use mdg_geom::{Aabb, Point};
use mdg_net::{Deployment, Network};
use mdg_runtime::{repair_plan, RepairConfig};
use std::time::Instant;

/// Largest coordinate magnitude a session accepts, in meters.
///
/// Distance arithmetic squares coordinates, so positions beyond ~1e12
/// push `dist_sq` toward `f64` overflow and tour lengths degrade to
/// `inf`/`NaN` — *after* the session has already mutated, which is how a
/// finite-but-absurd `added` position used to corrupt a warm session.
/// Rejecting astronomically large positions up front (like non-finite
/// ones) keeps that failure in the validation phase, where the session
/// is still untouched. 10⁹ km is eight orders of magnitude beyond any
/// deployable field, so no legitimate request is affected.
pub const MAX_COORD: f64 = 1e12;

/// Why a delta failed — and, critically, whether the session survived it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The request was rejected during validation, before any state
    /// changed. The session is still consistent and must be retained;
    /// the client gets a `bad_request`.
    Invalid(String),
    /// The session mutated and the repaired plan then failed validation.
    /// Its state can no longer be trusted: the caller MUST evict it (the
    /// client gets an `internal` error and re-plans cold).
    Corrupt(String),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::Invalid(msg) => write!(f, "{msg}"),
            DeltaError::Corrupt(msg) => write!(f, "session corrupted: {msg}"),
        }
    }
}

impl std::error::Error for DeltaError {}

/// How a delta was resolved (the `mode` field of a `delta` response).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaMode {
    /// The delta required no plan change.
    Noop,
    /// Incremental repair: adopt/splice for flat sessions, dirty-tile
    /// replan for hier sessions.
    Repair,
    /// Repair escalated to a full re-plan.
    Replan,
}

impl DeltaMode {
    /// Wire name of the mode.
    pub fn as_str(self) -> &'static str {
        match self {
            DeltaMode::Noop => "noop",
            DeltaMode::Repair => "repair",
            DeltaMode::Replan => "replan",
        }
    }
}

/// What one [`FieldSession::apply_delta`] call did.
#[derive(Debug, Clone, Copy)]
pub struct DeltaOutcome {
    /// Resolution path.
    pub mode: DeltaMode,
    /// Wall time spent applying the delta, milliseconds.
    pub elapsed_ms: f64,
}

/// Cumulative per-session statistics (reported by `metrics`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionStats {
    /// Wall time of the cold plan that created the session, ms.
    pub cold_plan_ms: f64,
    /// Delta requests applied.
    pub deltas: u64,
    /// Deltas resolved by incremental repair.
    pub repairs: u64,
    /// Deltas that escalated to a full re-plan.
    pub full_replans: u64,
}

/// The per-flavor warm state behind a [`FieldSession`].
enum State {
    /// Flat planning: full spatial structures + adopt/splice repair.
    Flat {
        net: Network,
        inst: CoverageInstance,
        plan: GatheringPlan,
        repair_cfg: RepairConfig,
    },
    /// Hierarchical planning: retained tiled plan + dirty-tile replan.
    /// Sensor positions live here (dead slots keep their position so ids
    /// stay stable); the plan itself is inside [`HierPlan`].
    Hier { sensors: Vec<Point>, hier: HierPlan },
}

/// A warm planning session for one named field.
pub struct FieldSession {
    /// Session name (the protocol's `field`).
    pub name: String,
    alive: Vec<bool>,
    state: State,
    /// Monotonic plan generation (0 = the cold plan).
    pub generation: u64,
    /// Cumulative statistics.
    pub stats: SessionStats,
}

impl FieldSession {
    /// Plans `deployment` cold with the flat planner and wraps the result
    /// in a warm session.
    pub fn plan_cold(
        name: impl Into<String>,
        deployment: Deployment,
        range: f64,
        planner_cfg: PlannerConfig,
    ) -> Result<Self, String> {
        let t0 = Instant::now();
        let _sp = mdg_obs::span("cold_plan");
        let net = Network::build(deployment, range);
        let inst = CoverageInstance::sensor_sites(&net.deployment.sensors, range);
        let plan = ShdgPlanner::with_config(planner_cfg)
            .plan(&net)
            .map_err(|e| e.to_string())?;
        plan.validate(&net.deployment.sensors, range)
            .map_err(|e| format!("cold plan failed validation: {e}"))?;
        let alive = vec![true; net.n_sensors()];
        Ok(FieldSession {
            name: name.into(),
            alive,
            state: State::Flat {
                net,
                inst,
                plan,
                repair_cfg: RepairConfig::default(),
            },
            generation: 0,
            stats: SessionStats {
                cold_plan_ms: t0.elapsed().as_secs_f64() * 1e3,
                ..SessionStats::default()
            },
        })
    }

    /// Plans `deployment` cold with the hierarchical tiled planner and
    /// wraps the retained [`HierPlan`] in a warm session. Deltas on this
    /// session run the dirty-tile incremental path.
    pub fn plan_cold_hier(
        name: impl Into<String>,
        deployment: Deployment,
        range: f64,
        hier_cfg: HierConfig,
    ) -> Result<Self, String> {
        let t0 = Instant::now();
        let _sp = mdg_obs::span("cold_plan");
        let Deployment { sensors, sink, .. } = deployment;
        let hier = HierPlan::build(&sensors, sink, range, hier_cfg).map_err(|e| e.to_string())?;
        hier.plan()
            .validate(&sensors, range)
            .map_err(|e| format!("cold hier plan failed validation: {e}"))?;
        let alive = vec![true; sensors.len()];
        Ok(FieldSession {
            name: name.into(),
            alive,
            state: State::Hier { sensors, hier },
            generation: 0,
            stats: SessionStats {
                cold_plan_ms: t0.elapsed().as_secs_f64() * 1e3,
                ..SessionStats::default()
            },
        })
    }

    /// Plans cold, picking the session flavor by size: fields larger than
    /// `hier_threshold` sensors get a hierarchical session (the flat
    /// planner's quadratic coverage bitmap is the scaling wall), smaller
    /// fields get the flat planner's better tours.
    pub fn plan_cold_auto(
        name: impl Into<String>,
        deployment: Deployment,
        range: f64,
        planner_cfg: PlannerConfig,
        hier_threshold: usize,
    ) -> Result<Self, String> {
        if deployment.sensors.len() > hier_threshold {
            let hier_cfg = HierConfig {
                base: planner_cfg,
                ..HierConfig::default()
            };
            Self::plan_cold_hier(name, deployment, range, hier_cfg)
        } else {
            Self::plan_cold(name, deployment, range, planner_cfg)
        }
    }

    /// The session's current plan.
    pub fn plan(&self) -> &GatheringPlan {
        match &self.state {
            State::Flat { plan, .. } => plan,
            State::Hier { hier, .. } => hier.plan(),
        }
    }

    /// All sensor positions the session tracks (dead slots included).
    pub fn sensors(&self) -> &[Point] {
        match &self.state {
            State::Flat { net, .. } => &net.deployment.sensors,
            State::Hier { sensors, .. } => sensors,
        }
    }

    /// The data sink (tour start/end).
    pub fn sink(&self) -> Point {
        match &self.state {
            State::Flat { net, .. } => net.deployment.sink,
            State::Hier { hier, .. } => hier.plan().sink,
        }
    }

    /// The transmission range the current plan covers at.
    pub fn range(&self) -> f64 {
        match &self.state {
            State::Flat { net, .. } => net.range,
            State::Hier { hier, .. } => hier.range(),
        }
    }

    /// Session flavor: `"flat"` or `"hier"`.
    pub fn kind(&self) -> &'static str {
        match &self.state {
            State::Flat { .. } => "flat",
            State::Hier { .. } => "hier",
        }
    }

    /// The session's alive mask.
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// Number of live sensors.
    pub fn n_live(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Rough heap footprint of the warm state, in bytes. Feeds the
    /// server's byte-aware LRU eviction; an estimate, not an audit.
    ///
    /// The flat estimate is dominated by the sensor-site coverage
    /// bitmap's `n²` bits; the hier estimate is linear in `n`, which is
    /// the whole point of the hierarchical session.
    pub fn approx_bytes(&self) -> u64 {
        let n = self.alive.len() as u64;
        match &self.state {
            State::Flat { plan, .. } => n * n / 8 + n * 48 + plan.approx_bytes(),
            State::Hier { hier, .. } => n * 17 + hier.approx_bytes(),
        }
    }

    /// Applies a field mutation — `died` sensor ids, `added` sensor
    /// positions, and/or a new transmission `range` — and restores full
    /// live coverage via incremental repair (full-replan fallback).
    ///
    /// Validation errors ([`DeltaError::Invalid`]: out-of-range ids,
    /// non-finite or astronomically large positions, invalid range)
    /// leave the session untouched. A repair-level failure after the
    /// session has mutated surfaces as [`DeltaError::Corrupt`]; the
    /// caller MUST evict the session — its state is no longer trusted.
    pub fn apply_delta(
        &mut self,
        died: &[u64],
        added: &[Point],
        new_range: Option<f64>,
    ) -> Result<DeltaOutcome, DeltaError> {
        let t0 = Instant::now();
        // Validate everything before mutating anything.
        let n = self.alive.len();
        for &s in died {
            if s as usize >= n {
                return Err(DeltaError::Invalid(format!(
                    "died id {s} out of range (session has {n} sensors)"
                )));
            }
        }
        for p in added {
            if !(p.x.is_finite() && p.y.is_finite()) {
                return Err(DeltaError::Invalid(format!(
                    "added sensor at non-finite position ({}, {})",
                    p.x, p.y
                )));
            }
            if p.x.abs() > MAX_COORD || p.y.abs() > MAX_COORD {
                return Err(DeltaError::Invalid(format!(
                    "added sensor at ({}, {}) exceeds the ±{MAX_COORD:e} m coordinate bound",
                    p.x, p.y
                )));
            }
        }
        if let Some(r) = new_range {
            if !(r.is_finite() && r > 0.0) {
                return Err(DeltaError::Invalid(format!(
                    "range must be a positive number, got {r}"
                )));
            }
            if r > MAX_COORD {
                return Err(DeltaError::Invalid(format!(
                    "range {r} exceeds the {MAX_COORD:e} m bound"
                )));
            }
        }
        let range_changed = new_range.is_some_and(|r| (r - self.range()).abs() > 1e-12);
        if died.is_empty() && added.is_empty() && !range_changed {
            return Ok(DeltaOutcome {
                mode: DeltaMode::Noop,
                elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
            });
        }

        let alive = &mut self.alive;
        let mode = match &mut self.state {
            State::Flat {
                net,
                inst,
                plan,
                repair_cfg,
            } => {
                for &s in died {
                    alive[s as usize] = false;
                }

                // Structural changes (growth, range change) invalidate the
                // spatial structures; rebuild them — O(n) grid/UDG work,
                // no planning.
                if !added.is_empty() || range_changed {
                    let _sp = mdg_obs::span("delta/rebuild");
                    let range = new_range.unwrap_or(net.range);
                    let mut sensors = net.deployment.sensors.clone();
                    sensors.extend_from_slice(added);
                    let field = added
                        .iter()
                        .fold(net.deployment.field, |f, &p| f.union(&Aabb::new(p, p)));
                    *net = Network::build(
                        Deployment {
                            sensors,
                            sink: net.deployment.sink,
                            field,
                        },
                        range,
                    );
                    *inst = CoverageInstance::sensor_sites(&net.deployment.sensors, range);
                    alive.resize(net.n_sensors(), true);
                    plan.assignment.resize(net.n_sensors(), UNASSIGNED);
                    if range_changed {
                        unassign_out_of_range(plan, &net.deployment.sensors, net.range);
                    }
                }

                let report = {
                    let _sp = mdg_obs::span("delta/repair");
                    repair_plan(plan, net, inst, alive, repair_cfg)
                };

                // Past this point the session has mutated: a validation
                // failure is corruption, not a rejectable request.
                plan.validate_live(&net.deployment.sensors, net.range, alive)
                    .map_err(|e| {
                        DeltaError::Corrupt(format!("repaired plan failed validation: {e}"))
                    })?;

                if report.full_replan {
                    DeltaMode::Replan
                } else if report.changed() {
                    DeltaMode::Repair
                } else {
                    DeltaMode::Noop
                }
            }
            State::Hier { sensors, hier } => {
                // The dirty-tile path wants *newly* dead ids (a repeated
                // death must not dirty its tile again) and appended
                // positions; the retained HierPlan does the rest.
                let mut newly_dead: Vec<u32> = mdg_par::scratch::take_cap(died.len());
                for &s in died {
                    if alive[s as usize] {
                        alive[s as usize] = false;
                        newly_dead.push(s as u32);
                    }
                }
                sensors.extend_from_slice(added);
                alive.resize(sensors.len(), true);

                let report = hier.apply_delta(sensors, alive, &newly_dead, new_range);
                mdg_par::scratch::put(newly_dead);
                let report = report
                    .map_err(|e| DeltaError::Corrupt(format!("dirty-tile replan failed: {e}")))?;

                hier.plan()
                    .validate_live(sensors, hier.range(), alive)
                    .map_err(|e| {
                        DeltaError::Corrupt(format!("hier delta plan failed validation: {e}"))
                    })?;

                if report.full_rebuild {
                    DeltaMode::Replan
                } else if !report.is_noop() {
                    DeltaMode::Repair
                } else {
                    DeltaMode::Noop
                }
            }
        };

        self.generation += 1;
        self.stats.deltas += 1;
        match mode {
            DeltaMode::Replan => self.stats.full_replans += 1,
            DeltaMode::Repair => self.stats.repairs += 1,
            DeltaMode::Noop => {}
        }
        Ok(DeltaOutcome {
            mode,
            elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
        })
    }

    /// Per-session summary for the `metrics` response.
    pub fn info(&self) -> SessionInfo {
        SessionInfo {
            field: self.name.clone(),
            kind: self.kind().to_string(),
            n_sensors: self.alive.len() as u64,
            live: self.n_live() as u64,
            polling_points: self.plan().n_polling_points() as u64,
            tour_m: self.plan().tour_length,
            generation: self.generation,
            approx_bytes: self.approx_bytes(),
            cold_plan_ms: self.stats.cold_plan_ms,
            deltas: self.stats.deltas,
            repairs: self.stats.repairs,
            full_replans: self.stats.full_replans,
        }
    }
}

/// After a range change, drops every assignment the new range no longer
/// supports; the orphans re-enter coverage through repair.
fn unassign_out_of_range(plan: &mut GatheringPlan, sensors: &[Point], range: f64) {
    let GatheringPlan {
        polling_points,
        assignment,
        ..
    } = plan;
    for (k, pp) in polling_points.iter_mut().enumerate() {
        pp.covered.retain(|&s| {
            let keep = sensors[s as usize].dist(pp.pos) <= range + 1e-9;
            if !keep {
                debug_assert_eq!(assignment[s as usize], k);
                assignment[s as usize] = UNASSIGNED;
            }
            keep
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdg_net::DeploymentConfig;

    fn session(n: usize, seed: u64) -> FieldSession {
        FieldSession::plan_cold(
            "t",
            DeploymentConfig::uniform(n, 200.0).generate(seed),
            30.0,
            PlannerConfig::default(),
        )
        .unwrap()
    }

    fn hier_session(n: usize, seed: u64) -> FieldSession {
        let cfg = HierConfig {
            tile_cells: Some(5.0),
            ..HierConfig::default()
        };
        FieldSession::plan_cold_hier(
            "h",
            DeploymentConfig::uniform(n, 400.0).generate(seed),
            30.0,
            cfg,
        )
        .unwrap()
    }

    #[test]
    fn cold_plan_builds_a_valid_session() {
        let s = session(120, 1);
        assert_eq!(s.generation, 0);
        assert_eq!(s.n_live(), 120);
        assert_eq!(s.kind(), "flat");
        assert!(s.plan().n_polling_points() > 0);
        assert!(s.stats.cold_plan_ms >= 0.0);
    }

    #[test]
    fn empty_delta_is_a_noop() {
        let mut s = session(100, 2);
        let out = s.apply_delta(&[], &[], None).unwrap();
        assert_eq!(out.mode, DeltaMode::Noop);
        assert_eq!(s.generation, 0);
    }

    #[test]
    fn deaths_repair_in_place() {
        let mut s = session(150, 3);
        let victims: Vec<u64> = s.plan().polling_points[..2]
            .iter()
            .map(|pp| pp.candidate as u64)
            .collect();
        let out = s.apply_delta(&victims, &[], None).unwrap();
        assert_eq!(out.mode, DeltaMode::Repair);
        assert_eq!(s.generation, 1);
        assert_eq!(s.n_live(), 148);
        s.plan()
            .validate_live(s.sensors(), s.range(), s.alive())
            .unwrap();
    }

    #[test]
    fn additions_grow_the_session_and_stay_covered() {
        let mut s = session(100, 4);
        let added = vec![Point::new(10.0, 10.0), Point::new(195.0, 195.0)];
        let out = s.apply_delta(&[], &added, None).unwrap();
        assert_eq!(out.mode, DeltaMode::Repair);
        assert_eq!(s.alive().len(), 102);
        assert_eq!(s.n_live(), 102);
        // Every live sensor (including the new ones) is covered again.
        s.plan()
            .validate_live(s.sensors(), s.range(), s.alive())
            .unwrap();
    }

    #[test]
    fn range_shrink_recovers_coverage() {
        let mut s = session(150, 5);
        let out = s.apply_delta(&[], &[], Some(20.0)).unwrap();
        assert!(matches!(out.mode, DeltaMode::Repair | DeltaMode::Replan));
        assert!((s.range() - 20.0).abs() < 1e-12);
        s.plan()
            .validate_live(s.sensors(), s.range(), s.alive())
            .unwrap();
    }

    #[test]
    fn mass_death_escalates_to_replan() {
        let mut s = session(150, 6);
        let victims: Vec<u64> = s
            .plan()
            .polling_points
            .iter()
            .map(|pp| pp.candidate as u64)
            .collect();
        let out = s.apply_delta(&victims, &[], None).unwrap();
        assert_eq!(out.mode, DeltaMode::Replan);
        assert_eq!(s.stats.full_replans, 1);
        s.plan()
            .validate_live(s.sensors(), s.range(), s.alive())
            .unwrap();
    }

    #[test]
    fn bad_delta_leaves_the_session_untouched() {
        let mut s = session(80, 7);
        let before_gen = s.generation;
        for err in [
            s.apply_delta(&[80], &[], None).unwrap_err(),
            s.apply_delta(&[], &[Point::new(f64::NAN, 0.0)], None)
                .unwrap_err(),
            s.apply_delta(&[], &[], Some(-1.0)).unwrap_err(),
        ] {
            assert!(
                matches!(err, DeltaError::Invalid(_)),
                "pre-mutation rejection must be Invalid, got {err:?}"
            );
        }
        assert_eq!(s.generation, before_gen);
        assert_eq!(s.n_live(), 80);
    }

    #[test]
    fn huge_finite_coordinates_are_rejected_before_mutation() {
        // 1e300 is finite, but its squared distances overflow to inf and
        // used to corrupt the session *after* it had mutated. The
        // magnitude guard now rejects it in the validation phase.
        let mut s = session(60, 9);
        let before = s.plan().clone();
        for bad in [
            Point::new(1e300, 0.0),
            Point::new(0.0, -1e300),
            Point::new(MAX_COORD * 2.0, 0.0),
        ] {
            let err = s.apply_delta(&[], &[bad], None).unwrap_err();
            assert!(matches!(err, DeltaError::Invalid(_)), "{bad:?}: {err:?}");
        }
        // Session fully intact and still serving the same plan.
        assert_eq!(s.generation, 0);
        assert_eq!(s.alive().len(), 60);
        assert_eq!(*s.plan(), before);
        s.apply_delta(&[], &[Point::new(50.0, 50.0)], None).unwrap();
    }

    #[test]
    fn repeated_deltas_keep_generations_monotone() {
        let mut s = session(200, 8);
        let mut killed = 0u64;
        for i in 0..5 {
            let victim = s
                .alive()
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a)
                .map(|(i, _)| i as u64)
                .nth(i * 7)
                .unwrap();
            s.apply_delta(&[victim], &[], None).unwrap();
            killed += 1;
            assert_eq!(s.generation, killed);
        }
        assert_eq!(s.n_live(), 195);
    }

    #[test]
    fn hier_session_plans_cold_and_absorbs_deltas() {
        let mut s = hier_session(600, 11);
        assert_eq!(s.kind(), "hier");
        assert_eq!(s.n_live(), 600);
        s.plan().validate(s.sensors(), s.range()).unwrap();

        // Deaths run the dirty-tile path.
        let victims: Vec<u64> = s.plan().polling_points[..2]
            .iter()
            .map(|pp| pp.candidate as u64)
            .collect();
        let out = s.apply_delta(&victims, &[], None).unwrap();
        assert_eq!(out.mode, DeltaMode::Repair);
        assert_eq!(s.generation, 1);
        assert_eq!(s.stats.repairs, 1);
        s.plan()
            .validate_live(s.sensors(), s.range(), s.alive())
            .unwrap();

        // Additions extend the session through the same path.
        let added = vec![Point::new(15.0, 15.0), Point::new(390.0, 390.0)];
        let out = s.apply_delta(&[], &added, None).unwrap();
        assert_eq!(out.mode, DeltaMode::Repair);
        assert_eq!(s.alive().len(), 602);
        assert_eq!(s.n_live(), 600);
        s.plan()
            .validate_live(s.sensors(), s.range(), s.alive())
            .unwrap();
    }

    #[test]
    fn hier_session_range_change_is_a_full_replan() {
        let mut s = hier_session(500, 12);
        let out = s.apply_delta(&[], &[], Some(25.0)).unwrap();
        assert_eq!(out.mode, DeltaMode::Replan);
        assert_eq!(s.stats.full_replans, 1);
        assert!((s.range() - 25.0).abs() < 1e-12);
        s.plan()
            .validate_live(s.sensors(), s.range(), s.alive())
            .unwrap();
    }

    #[test]
    fn hier_session_rejects_bad_deltas_pre_mutation() {
        let mut s = hier_session(400, 13);
        for err in [
            s.apply_delta(&[400], &[], None).unwrap_err(),
            s.apply_delta(&[], &[Point::new(f64::INFINITY, 0.0)], None)
                .unwrap_err(),
            s.apply_delta(&[], &[], Some(0.0)).unwrap_err(),
        ] {
            assert!(matches!(err, DeltaError::Invalid(_)), "{err:?}");
        }
        assert_eq!(s.generation, 0);
        assert_eq!(s.n_live(), 400);
    }

    #[test]
    fn auto_selection_picks_the_flavor_by_size() {
        let small = FieldSession::plan_cold_auto(
            "s",
            DeploymentConfig::uniform(100, 200.0).generate(1),
            30.0,
            PlannerConfig::default(),
            200,
        )
        .unwrap();
        assert_eq!(small.kind(), "flat");
        let big = FieldSession::plan_cold_auto(
            "b",
            DeploymentConfig::uniform(300, 300.0).generate(1),
            30.0,
            PlannerConfig::default(),
            200,
        )
        .unwrap();
        assert_eq!(big.kind(), "hier");
        big.plan().validate(big.sensors(), big.range()).unwrap();
    }

    #[test]
    fn hier_footprint_is_linear_not_quadratic() {
        // The hier session must dodge the flat session's n²-bit coverage
        // bitmap; at 600 sensors the flat estimate already dominates.
        let flat = session(150, 14);
        let hier = hier_session(600, 14);
        assert!(flat.approx_bytes() > 150 * 150 / 8);
        assert!(
            hier.approx_bytes() < (600u64 * 600 / 8) + 600 * 48,
            "hier session footprint {} should undercut a flat session's \
             quadratic bitmap at the same n",
            hier.approx_bytes()
        );
    }
}
