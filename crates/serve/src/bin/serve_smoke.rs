//! CI smoke driver for the planning daemon.
//!
//! Starts an in-process [`Server`] on an ephemeral port, then exercises the
//! protocol over a real TCP socket the way a deployment controller would:
//! `plan` → several `delta` rounds (deterministic victims + additions) →
//! `get_plan` → `metrics` → `shutdown`, asserting at each step.
//!
//! The exit gate is the serving layer's reason to exist: the **median
//! warm `delta` must beat the cold `plan` on the same field**. Exits 0 on
//! success, 1 with a diagnostic on any failed check.
//!
//! Field size is tuned by `MDG_SMOKE_N` (default 2000) so CI stays fast
//! while local runs can push harder.

use mdg_geom::Point;
use mdg_serve::client::Client;
use mdg_serve::server::{ServeConfig, Server};

fn fail(msg: &str) -> ! {
    eprintln!("serve_smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn check(cond: bool, msg: &str) {
    if !cond {
        fail(msg);
    }
}

fn main() {
    let n: u64 = std::env::var("MDG_SMOKE_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000);
    let side = 1_000.0;
    let range = 60.0;
    let rounds = 8usize;

    let server = Server::start(ServeConfig::default())
        .unwrap_or_else(|e| fail(&format!("server failed to start: {e}")));
    let addr = server.local_addr();
    let mut client =
        Client::connect(addr).unwrap_or_else(|e| fail(&format!("connect failed: {e}")));

    // Cold plan.
    let cold = client
        .plan_uniform("smoke", n, side, 42, range)
        .unwrap_or_else(|e| fail(&format!("plan transport error: {e}")))
        .unwrap_or_else(|e| fail(&format!("plan rejected: {} ({})", e.code, e.message)));
    check(cold.mode == "cold", "first plan must be mode=cold");
    check(cold.live == n, "cold plan must cover all sensors");
    check(
        cold.polling_points > 0,
        "cold plan must have polling points",
    );
    println!(
        "serve_smoke: cold plan n={} pp={} tour={:.0}m in {:.1}ms",
        n, cold.polling_points, cold.tour_m, cold.elapsed_ms
    );

    // Churn rounds: deterministic victims spread across the id space, plus
    // a sprinkle of added sensors marching along the diagonal.
    let mut delta_ms: Vec<f64> = Vec::with_capacity(rounds);
    for round in 0..rounds {
        // One sensor is added per round, so the id space is n + round wide.
        let next_id = n + round as u64;
        let died: Vec<u64> = (0..5)
            .map(|i| (round as u64 * 97 + i * 31) % next_id)
            .collect();
        let t = (round as f64 + 1.0) / (rounds as f64 + 1.0);
        let added = vec![Point::new(side * t, side * (1.0 - t))];
        let summary = client
            .delta("smoke", died, added, None)
            .unwrap_or_else(|e| fail(&format!("delta transport error: {e}")))
            .unwrap_or_else(|e| fail(&format!("delta rejected: {} ({})", e.code, e.message)));
        check(summary.ok, "delta response must be ok");
        check(
            summary.generation == round as u64 + 1,
            "delta generations must be monotone",
        );
        delta_ms.push(summary.elapsed_ms);
        println!(
            "serve_smoke: delta round {} mode={} live={} pp={} in {:.1}ms",
            round, summary.mode, summary.live, summary.polling_points, summary.elapsed_ms
        );
    }

    // The repaired plan must still be a valid, fully-covering plan.
    let got = client
        .get_plan("smoke")
        .unwrap_or_else(|e| fail(&format!("get_plan transport error: {e}")))
        .unwrap_or_else(|e| fail(&format!("get_plan rejected: {} ({})", e.code, e.message)));
    check(
        got.plan.n_polling_points() > 0,
        "served plan must have polling points",
    );
    check(
        got.generation == rounds as u64,
        "get_plan generation must match the last delta",
    );

    // Metrics must reflect the traffic.
    let metrics = client
        .metrics()
        .unwrap_or_else(|e| fail(&format!("metrics transport error: {e}")))
        .unwrap_or_else(|e| fail(&format!("metrics rejected: {} ({})", e.code, e.message)));
    check(metrics.sessions.len() == 1, "exactly one session expected");
    check(
        metrics.sessions[0].deltas == rounds as u64,
        "session must count every delta",
    );
    check(
        metrics
            .counters
            .iter()
            .any(|c| c.path == "serve/requests/delta" && c.value == rounds as u64),
        "obs counters must count delta requests",
    );
    check(
        metrics
            .hists
            .iter()
            .any(|h| h.path == "serve/latency_us/delta" && h.count == rounds as u64),
        "obs histograms must record per-request delta latency",
    );

    // The gate: median warm delta beats the cold plan on the same field.
    let mut sorted = delta_ms.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let p50 = sorted[sorted.len() / 2];
    println!(
        "serve_smoke: cold={:.1}ms delta_p50={:.1}ms speedup={:.1}x",
        cold.elapsed_ms,
        p50,
        cold.elapsed_ms / p50.max(1e-9)
    );
    check(
        p50 < cold.elapsed_ms,
        "median delta latency must beat the cold plan",
    );

    // Drain.
    let down = client
        .shutdown()
        .unwrap_or_else(|e| fail(&format!("shutdown transport error: {e}")))
        .unwrap_or_else(|e| fail(&format!("shutdown rejected: {} ({})", e.code, e.message)));
    check(down.draining, "shutdown must report draining");
    server.join();
    check(
        Client::connect(addr).is_err(),
        "daemon must stop accepting after drain",
    );
    println!("serve_smoke: OK");
}
