//! Planning as a service: a TCP daemon with warm field state and
//! incremental replans.
//!
//! Cold SHDG planning on a large field costs seconds; the mutations a
//! deployed network actually experiences — a handful of sensors dying, a
//! batch being added, a transmission-power change — invalidate only a
//! sliver of the plan. This crate keeps the expensive state warm in
//! per-field [`session::FieldSession`]s (deployment, unit-disk graph and
//! spatial grid, coverage instance, alive mask, current tour) behind a
//! small TCP daemon, so a `delta` request runs `mdg-runtime`'s
//! adopt/splice/cheapest-insertion repair in milliseconds instead of
//! replanning cold.
//!
//! The moving parts:
//!
//! * [`protocol`] — the wire format: line-delimited JSON requests and
//!   responses (protocol v2: `SessionInfo` reports each session's
//!   `kind` — flat or hier — and `approx_bytes`), the bounded line
//!   reader, stable error codes.
//! * [`session`] — warm per-field state and the repair-vs-replan
//!   decision. Sessions come in two flavors behind one API: flat
//!   (better tours, quadratic coverage bitmap) and hierarchical
//!   (tiled `HierPlan` with dirty-tile deltas, O(n) footprint) —
//!   [`session::FieldSession::plan_cold_auto`] picks by field size
//!   against [`server::ServeConfig::hier_threshold`].
//! * [`server`] — the daemon: accept loop, session table bounded by
//!   count *and* bytes (byte-aware LRU), per-request panic isolation,
//!   metrics, graceful drain.
//! * [`client`] — a small blocking client used by the CLI, the CI smoke
//!   driver, the churn bench, and the tests.
//!
//! ```no_run
//! use mdg_serve::client::Client;
//! use mdg_serve::server::{ServeConfig, Server};
//!
//! let server = Server::start(ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let cold = client.plan_uniform("field-a", 5_000, 1_000.0, 42, 60.0)
//!     .unwrap().unwrap();
//! let patched = client.delta("field-a", vec![7, 19, 23], vec![], None)
//!     .unwrap().unwrap();
//! assert!(patched.elapsed_ms < cold.elapsed_ms);
//! client.shutdown().unwrap().unwrap();
//! server.join();
//! ```

pub mod client;
pub mod protocol;
pub mod server;
pub mod session;

pub use client::Client;
pub use protocol::{ErrorBody, MetricsResponse, PlanSummary, Request, PROTOCOL_VERSION};
pub use server::{ServeConfig, Server};
pub use session::{DeltaError, DeltaMode, FieldSession, MAX_COORD};
