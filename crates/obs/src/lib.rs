//! `mdg-obs` — zero-dependency observability for the mobile-collectors workspace.
//!
//! The paper's claims are quantitative (tour length, energy uniformity,
//! gathering latency), so the planner and runtime need first-class
//! instrumentation rather than ad-hoc stderr lines. This crate provides it
//! using only `std`:
//!
//! * **Hierarchical phase spans** — [`span()`] / [`span!`] record wall time,
//!   invocation counts, and items processed, keyed by a `/`-separated path
//!   built from the thread-local span stack (`plan` → `plan/cover` →
//!   `plan/cover/lazy_greedy`).
//! * **Counters** — [`counter`] returns a cheap atomic handle that parallel
//!   workers may bump without coordination (relaxed ordering).
//! * **Log2 histograms** — [`histogram`] buckets `u64` samples by power of
//!   two, so distributions (repair ops per round, retries per round) cost one
//!   atomic increment per sample.
//! * **Two exporters** — [`Profile::render_tree`] for a human-readable
//!   summary on stderr and [`Profile::to_jsonl`] for machine-readable JSONL
//!   next to the runtime trace format in `mdg-runtime`.
//!
//! # Determinism contract
//!
//! Instrumentation must never perturb planning results: the workspace-level
//! `obs_equivalence` test asserts plans are **bit-identical** with profiling
//! on and off, at 1 and 4 threads. To keep that invariant trivially true, the
//! API only *observes*: nothing in this crate feeds back into algorithm
//! state, and all recording is gated behind a process-global flag
//! ([`set_enabled`]) that defaults to **off**. When disabled, a span is one
//! relaxed atomic load and a counter add is one relaxed load — within noise
//! on the scale benches.
//!
//! # Threading model
//!
//! Spans use a thread-local path stack, so they should be opened on the
//! orchestrating thread (the one that calls into `mdg-par`), not inside
//! worker closures — a span opened on a worker would start a fresh root path.
//! Workers instead bump [`Counter`]s / [`Histogram`]s, which are shared
//! atomics, or accumulate locally and flush once after the parallel region
//! (preferred: zero contention).
//!
//! # Example
//!
//! ```
//! mdg_obs::set_enabled(true);
//! {
//!     let mut sp = mdg_obs::span("plan");
//!     sp.add_items(100);
//!     let _inner = mdg_obs::span("cover");
//!     mdg_obs::counter("plan/cover/reevals").add(42);
//! }
//! let profile = mdg_obs::snapshot();
//! assert_eq!(profile.spans[0].path, "plan");
//! assert_eq!(profile.spans[1].path, "plan/cover");
//! eprint!("{}", profile.render_tree());
//! mdg_obs::set_enabled(false);
//! mdg_obs::reset();
//! ```

pub mod alloc;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// The workspace's global allocator: a pass-through to the system
/// allocator until [`alloc::set_counting`] turns tallying on. Declared
/// here so every binary linking `mdg-obs` (the whole workspace) can
/// measure its heap traffic without per-binary boilerplate.
#[global_allocator]
static GLOBAL_ALLOC: alloc::CountingAlloc = alloc::CountingAlloc;

/// Number of log2 histogram buckets: bucket 0 holds zeros, bucket `i` (1..=64)
/// holds values in `[2^(i-1), 2^i)`.
pub const HIST_BUCKETS: usize = 65;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Globally enable or disable recording. Disabled by default; flipping this
/// does not clear previously recorded data (see [`reset`]).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

#[derive(Default)]
struct SpanStat {
    calls: u64,
    wall_nanos: u64,
    items: u64,
    alloc_count: u64,
    alloc_bytes: u64,
    alloc_peak: u64,
}

struct HistInner {
    buckets: [AtomicU64; HIST_BUCKETS],
}

struct Registry {
    spans: Mutex<BTreeMap<String, SpanStat>>,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    hists: Mutex<BTreeMap<String, Arc<HistInner>>>,
}

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| Registry {
        spans: Mutex::new(BTreeMap::new()),
        counters: Mutex::new(BTreeMap::new()),
        hists: Mutex::new(BTreeMap::new()),
    })
}

thread_local! {
    /// Current `/`-joined span path for this thread.
    static PATH: RefCell<String> = const { RefCell::new(String::new()) };
}

struct ActiveSpan {
    path: String,
    prev_len: usize,
    start: Instant,
    items: u64,
    /// Thread allocation tallies at open — `Some` only while the counting
    /// allocator is active, so spans stay one atomic load otherwise.
    alloc_mark: Option<alloc::ThreadMark>,
}

/// RAII guard for a phase span. Created by [`span()`]; on drop it accumulates
/// wall time, one call, and any [`Span::add_items`] total under its path.
/// Inert (a no-op) when recording is disabled.
pub struct Span {
    inner: Option<ActiveSpan>,
}

impl Span {
    /// Attribute `n` processed items (sensors, candidates, moves…) to this
    /// span. No-op when the span is inert.
    pub fn add_items(&mut self, n: u64) {
        if let Some(a) = &mut self.inner {
            a.items += n;
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(a) = self.inner.take() {
            let elapsed = a.start.elapsed().as_nanos() as u64;
            let alloc_delta = a.alloc_mark.map(alloc::window);
            PATH.with(|p| p.borrow_mut().truncate(a.prev_len));
            let mut spans = registry().spans.lock().unwrap();
            let st = spans.entry(a.path).or_default();
            st.calls += 1;
            st.wall_nanos += elapsed;
            st.items += a.items;
            if let Some(d) = alloc_delta {
                st.alloc_count += d.count;
                st.alloc_bytes += d.bytes;
                st.alloc_peak = st.alloc_peak.max(d.peak);
            }
        }
    }
}

/// Open a span named `name` nested under the current thread's span path.
/// `name` may itself contain `/` to introduce explicit sub-paths
/// (`span("plan/cover")` at the root is equivalent to nesting two spans).
pub fn span(name: &str) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    let (path, prev_len) = PATH.with(|p| {
        let mut p = p.borrow_mut();
        let prev_len = p.len();
        if !p.is_empty() {
            p.push('/');
        }
        p.push_str(name);
        (p.clone(), prev_len)
    });
    Span {
        inner: Some(ActiveSpan {
            path,
            prev_len,
            start: Instant::now(),
            items: 0,
            alloc_mark: alloc::mark(),
        }),
    }
}

/// Convenience macro form of [`span()`]: `let _sp = span!("plan/cover");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Shared atomic counter handle returned by [`counter`]. Cloning is cheap;
/// clones refer to the same underlying value.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` (relaxed; no-op while recording is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Get or create the counter registered under `path`. Takes a registry lock:
/// call once outside hot loops and reuse the handle (or accumulate locally
/// and `add` once per phase).
pub fn counter(path: &str) -> Counter {
    let mut counters = registry().counters.lock().unwrap();
    let arc = counters
        .entry(path.to_string())
        .or_insert_with(|| Arc::new(AtomicU64::new(0)));
    Counter(Arc::clone(arc))
}

/// Shared log2-bucket histogram handle returned by [`histogram`].
#[derive(Clone)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    /// Record one sample (relaxed; no-op while recording is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.0.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Get or create the histogram registered under `path`. Same locking caveat
/// as [`counter`].
pub fn histogram(path: &str) -> Histogram {
    let mut hists = registry().hists.lock().unwrap();
    let arc = hists.entry(path.to_string()).or_insert_with(|| {
        Arc::new(HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        })
    });
    Histogram(Arc::clone(arc))
}

/// Bucket index for a sample: 0 for 0, else `64 - leading_zeros`, so bucket
/// `i >= 1` covers `[2^(i-1), 2^i)`.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive `[lo, hi]` value range of histogram bucket `i`.
pub fn bucket_range(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        64 => (1u64 << 63, u64::MAX),
        _ => (1u64 << (i - 1), (1u64 << i) - 1),
    }
}

/// Snapshot of one span path's accumulated stats.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanRecord {
    /// `/`-joined hierarchical path, e.g. `plan/cover/lazy_greedy`.
    pub path: String,
    /// Number of times a span with this path was closed.
    pub calls: u64,
    /// Total wall time across all calls, in nanoseconds.
    pub wall_nanos: u64,
    /// Total items attributed via [`Span::add_items`].
    pub items: u64,
    /// Heap allocations performed on the span's thread inside its window
    /// (zero unless the counting allocator was active — see
    /// [`alloc::set_counting`]).
    pub alloc_count: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
    /// High-water mark of the span thread's live bytes inside the window.
    pub alloc_peak: u64,
}

/// Snapshot of one histogram: total sample count plus sparse
/// `(bucket_index, count)` pairs for the non-empty buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistRecord {
    /// Registration path.
    pub path: String,
    /// Total number of recorded samples.
    pub count: u64,
    /// Non-empty buckets as `(bucket_index, count)`, index ascending.
    pub buckets: Vec<(u32, u64)>,
}

/// Immutable snapshot of all recorded data, produced by [`snapshot`].
/// Span/counter/histogram entries are sorted by path; counters and
/// histograms that never recorded anything are omitted.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// All span stats, sorted by path (lexicographic == preorder DFS).
    pub spans: Vec<SpanRecord>,
    /// `(path, value)` for every counter with a non-zero value.
    pub counters: Vec<(String, u64)>,
    /// Every histogram with at least one sample.
    pub hists: Vec<HistRecord>,
}

/// Take a consistent snapshot of everything recorded so far.
pub fn snapshot() -> Profile {
    let reg = registry();
    let spans = reg
        .spans
        .lock()
        .unwrap()
        .iter()
        .map(|(path, st)| SpanRecord {
            path: path.clone(),
            calls: st.calls,
            wall_nanos: st.wall_nanos,
            items: st.items,
            alloc_count: st.alloc_count,
            alloc_bytes: st.alloc_bytes,
            alloc_peak: st.alloc_peak,
        })
        .collect();
    let counters = reg
        .counters
        .lock()
        .unwrap()
        .iter()
        .filter_map(|(path, c)| {
            let v = c.load(Ordering::Relaxed);
            (v != 0).then(|| (path.clone(), v))
        })
        .collect();
    let hists = reg
        .hists
        .lock()
        .unwrap()
        .iter()
        .filter_map(|(path, h)| {
            let mut buckets = Vec::new();
            let mut count = 0u64;
            for (i, b) in h.buckets.iter().enumerate() {
                let n = b.load(Ordering::Relaxed);
                if n != 0 {
                    buckets.push((i as u32, n));
                    count += n;
                }
            }
            (count != 0).then(|| HistRecord {
                path: path.clone(),
                count,
                buckets,
            })
        })
        .collect();
    Profile {
        spans,
        counters,
        hists,
    }
}

/// Clear all recorded spans and zero every counter and histogram in place
/// (existing [`Counter`] / [`Histogram`] handles stay valid).
pub fn reset() {
    let reg = registry();
    reg.spans.lock().unwrap().clear();
    for c in reg.counters.lock().unwrap().values() {
        c.store(0, Ordering::Relaxed);
    }
    for h in reg.hists.lock().unwrap().values() {
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

impl Profile {
    /// The delta recorded between `baseline` and `self` (two [`snapshot`]s
    /// of the same registry, `baseline` taken first): per-path subtraction
    /// of span stats, counter values, and histogram buckets.
    ///
    /// The registry only ever accumulates, so entries new in `self` pass
    /// through unchanged and subtraction cannot underflow in correct use;
    /// mismatched snapshots (a [`reset`] between them, or swapped argument
    /// order) saturate to zero instead of panicking. Paths whose delta is
    /// entirely zero are dropped, so diffing two identical snapshots yields
    /// an empty profile. This is what lets a server report per-window
    /// metrics without resetting the global registry under concurrent
    /// recorders.
    pub fn diff(&self, baseline: &Profile) -> Profile {
        let base_spans: BTreeMap<&str, &SpanRecord> = baseline
            .spans
            .iter()
            .map(|s| (s.path.as_str(), s))
            .collect();
        let spans = self
            .spans
            .iter()
            .filter_map(|s| {
                let d = match base_spans.get(s.path.as_str()) {
                    Some(b) => SpanRecord {
                        path: s.path.clone(),
                        calls: s.calls.saturating_sub(b.calls),
                        wall_nanos: s.wall_nanos.saturating_sub(b.wall_nanos),
                        items: s.items.saturating_sub(b.items),
                        alloc_count: s.alloc_count.saturating_sub(b.alloc_count),
                        alloc_bytes: s.alloc_bytes.saturating_sub(b.alloc_bytes),
                        // A high-water mark is a level, not a monotone
                        // counter: the window's true peak is unknowable
                        // from two cumulative snapshots, so pass the
                        // later (covering) value through.
                        alloc_peak: s.alloc_peak,
                    },
                    None => s.clone(),
                };
                (d.calls != 0 || d.wall_nanos != 0 || d.items != 0 || d.alloc_count != 0)
                    .then_some(d)
            })
            .collect();
        let base_counters: BTreeMap<&str, u64> = baseline
            .counters
            .iter()
            .map(|(p, v)| (p.as_str(), *v))
            .collect();
        let counters = self
            .counters
            .iter()
            .filter_map(|(p, v)| {
                let d = v.saturating_sub(base_counters.get(p.as_str()).copied().unwrap_or(0));
                (d != 0).then(|| (p.clone(), d))
            })
            .collect();
        let base_hists: BTreeMap<&str, &HistRecord> = baseline
            .hists
            .iter()
            .map(|h| (h.path.as_str(), h))
            .collect();
        let hists = self
            .hists
            .iter()
            .filter_map(|h| {
                let base: BTreeMap<u32, u64> = match base_hists.get(h.path.as_str()) {
                    Some(b) => b.buckets.iter().copied().collect(),
                    None => BTreeMap::new(),
                };
                let buckets: Vec<(u32, u64)> = h
                    .buckets
                    .iter()
                    .filter_map(|&(i, n)| {
                        let d = n.saturating_sub(base.get(&i).copied().unwrap_or(0));
                        (d != 0).then_some((i, d))
                    })
                    .collect();
                let count: u64 = buckets.iter().map(|&(_, n)| n).sum();
                (count != 0).then(|| HistRecord {
                    path: h.path.clone(),
                    count,
                    buckets,
                })
            })
            .collect();
        Profile {
            spans,
            counters,
            hists,
        }
    }

    /// Whether the profile contains no spans, counters, or histograms.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty() && self.hists.is_empty()
    }

    /// Render the human-readable summary: an indented span tree (wall time,
    /// calls, items, percent of its root phase) followed by counters and
    /// histograms. Intended for stderr via `mdg … --profile`.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        if self.spans.is_empty() && self.counters.is_empty() && self.hists.is_empty() {
            out.push_str("profile: no data recorded\n");
            return out;
        }
        if !self.spans.is_empty() {
            // Total of root (depth-0) spans, used for the percent column.
            let root_total: u64 = self
                .spans
                .iter()
                .filter(|s| !s.path.contains('/'))
                .map(|s| s.wall_nanos)
                .sum();
            // Allocation columns appear only when the counting allocator
            // recorded something, so the tree is unchanged otherwise.
            let with_alloc = self.spans.iter().any(|s| s.alloc_count > 0);
            let name_w = self
                .spans
                .iter()
                .map(|s| {
                    let depth = s.path.matches('/').count();
                    let name_len = s.path.rsplit('/').next().unwrap_or(&s.path).len();
                    2 * depth + name_len
                })
                .max()
                .unwrap_or(0)
                .max(12);
            let _ = write!(
                out,
                "{:name_w$}  {:>10}  {:>8}  {:>6}  {:>12}",
                "phase", "wall ms", "calls", "%root", "items"
            );
            if with_alloc {
                let _ = write!(
                    out,
                    "  {:>10}  {:>10}  {:>10}",
                    "allocs", "alloc MiB", "peak MiB"
                );
            }
            out.push('\n');
            for s in &self.spans {
                let depth = s.path.matches('/').count();
                let name = s.path.rsplit('/').next().unwrap_or(&s.path);
                let indent = "  ".repeat(depth);
                let ms = s.wall_nanos as f64 / 1e6;
                let pct = if root_total > 0 {
                    100.0 * s.wall_nanos as f64 / root_total as f64
                } else {
                    0.0
                };
                let items = if s.items > 0 {
                    s.items.to_string()
                } else {
                    "-".to_string()
                };
                let _ = write!(
                    out,
                    "{:name_w$}  {:>10.2}  {:>8}  {:>5.1}%  {:>12}",
                    format!("{indent}{name}"),
                    ms,
                    s.calls,
                    pct,
                    items
                );
                if with_alloc {
                    let _ = write!(
                        out,
                        "  {:>10}  {:>10.2}  {:>10.2}",
                        s.alloc_count,
                        s.alloc_bytes as f64 / (1 << 20) as f64,
                        s.alloc_peak as f64 / (1 << 20) as f64
                    );
                }
                out.push('\n');
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (path, v) in &self.counters {
                let _ = writeln!(out, "  {path} = {v}");
            }
        }
        if !self.hists.is_empty() {
            out.push_str("histograms (log2 buckets):\n");
            for h in &self.hists {
                let _ = write!(out, "  {} n={}:", h.path, h.count);
                for &(i, n) in &h.buckets {
                    let (lo, hi) = bucket_range(i as usize);
                    if lo == hi {
                        let _ = write!(out, " [{lo}]={n}");
                    } else {
                        let _ = write!(out, " [{lo}..{hi}]={n}");
                    }
                }
                out.push('\n');
            }
        }
        out
    }

    /// Render machine-readable JSONL: one JSON object per line, with
    /// `"kind"` one of `"span"`, `"counter"`, `"hist"`:
    ///
    /// ```text
    /// {"kind":"span","path":"plan/cover","calls":1,"wall_nanos":123,"items":456}
    /// {"kind":"counter","path":"plan/cover/reevals","value":42}
    /// {"kind":"hist","path":"runtime/repair_ops","count":12,"buckets":[[0,3],[2,9]]}
    /// ```
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            let _ = write!(
                out,
                "{{\"kind\":\"span\",\"path\":{},\"calls\":{},\"wall_nanos\":{},\"items\":{}",
                json_string(&s.path),
                s.calls,
                s.wall_nanos,
                s.items
            );
            // Allocation fields are additive and optional: emitted only
            // when the counting allocator attributed traffic to the span,
            // so existing consumers see byte-identical lines otherwise.
            if s.alloc_count > 0 || s.alloc_bytes > 0 || s.alloc_peak > 0 {
                let _ = write!(
                    out,
                    ",\"alloc_count\":{},\"alloc_bytes\":{},\"alloc_peak\":{}",
                    s.alloc_count, s.alloc_bytes, s.alloc_peak
                );
            }
            out.push_str("}\n");
        }
        for (path, v) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"kind\":\"counter\",\"path\":{},\"value\":{}}}",
                json_string(path),
                v
            );
        }
        for h in &self.hists {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|&(i, n)| format!("[{i},{n}]"))
                .collect();
            let _ = writeln!(
                out,
                "{{\"kind\":\"hist\",\"path\":{},\"count\":{},\"buckets\":[{}]}}",
                json_string(&h.path),
                h.count,
                buckets.join(",")
            );
        }
        out
    }
}

/// Minimal JSON string encoder (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global state is shared across `#[test]` threads in one binary, so the
    /// obs tests serialize on this lock and reset around each body.
    fn with_clean_obs<R>(f: impl FnOnce() -> R) -> R {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        reset();
        let r = f();
        set_enabled(false);
        reset();
        r
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_range(i);
            assert_eq!(bucket_of(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_of(hi), i, "hi of bucket {i}");
        }
    }

    #[test]
    fn spans_nest_and_accumulate() {
        with_clean_obs(|| {
            {
                let mut a = span("plan");
                a.add_items(10);
                {
                    let _b = span!("cover");
                    let _c = span("lazy_greedy");
                }
                let _b2 = span("tour");
            }
            {
                let mut a = span("plan");
                a.add_items(5);
            }
            let p = snapshot();
            let paths: Vec<&str> = p.spans.iter().map(|s| s.path.as_str()).collect();
            assert_eq!(
                paths,
                ["plan", "plan/cover", "plan/cover/lazy_greedy", "plan/tour"]
            );
            let plan = &p.spans[0];
            assert_eq!(plan.calls, 2);
            assert_eq!(plan.items, 15);
            assert!(plan.wall_nanos >= p.spans[1].wall_nanos);
        });
    }

    #[test]
    fn multi_segment_span_names() {
        with_clean_obs(|| {
            {
                let _s = span("plan/cover/lazy_greedy");
            }
            let p = snapshot();
            assert_eq!(p.spans.len(), 1);
            assert_eq!(p.spans[0].path, "plan/cover/lazy_greedy");
        });
    }

    #[test]
    fn disabled_records_nothing() {
        with_clean_obs(|| {
            set_enabled(false);
            let c = counter("noop");
            c.add(7);
            histogram("noop_h").record(3);
            {
                let _s = span("noop_span");
            }
            set_enabled(true);
            let p = snapshot();
            assert!(p.spans.is_empty());
            assert!(p.counters.is_empty());
            assert!(p.hists.is_empty());
        });
    }

    #[test]
    fn counters_and_hists_snapshot() {
        with_clean_obs(|| {
            let c = counter("x/hits");
            c.add(3);
            counter("x/hits").add(2); // same underlying counter
            counter("x/zero"); // never incremented -> omitted
            let h = histogram("x/sizes");
            h.record(0);
            h.record(1);
            h.record(5);
            h.record(5);
            let p = snapshot();
            assert_eq!(p.counters, vec![("x/hits".to_string(), 5)]);
            assert_eq!(p.hists.len(), 1);
            assert_eq!(p.hists[0].count, 4);
            assert_eq!(p.hists[0].buckets, vec![(0, 1), (1, 1), (3, 2)]);
        });
    }

    #[test]
    fn counters_from_worker_threads() {
        with_clean_obs(|| {
            let c = counter("threads/sum");
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let c = c.clone();
                    std::thread::spawn(move || {
                        for _ in 0..1000 {
                            c.add(1);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(c.get(), 4000);
        });
    }

    #[test]
    fn exporters_cover_all_kinds() {
        with_clean_obs(|| {
            {
                let _s = span("root");
                let _t = span("child");
            }
            counter("root/count").add(9);
            histogram("root/hist").record(100);
            let p = snapshot();
            let tree = p.render_tree();
            assert!(tree.contains("root"));
            assert!(tree.contains("child"));
            assert!(tree.contains("root/count = 9"));
            assert!(tree.contains("n=1"));
            let jsonl = p.to_jsonl();
            let lines: Vec<&str> = jsonl.lines().collect();
            assert_eq!(lines.len(), 4);
            assert!(lines[0].starts_with("{\"kind\":\"span\",\"path\":\"root\""));
            assert!(lines
                .iter()
                .any(|l| l.contains("\"kind\":\"counter\"") && l.contains("\"value\":9")));
            assert!(lines
                .iter()
                .any(|l| l.contains("\"kind\":\"hist\"") && l.contains("\"buckets\":[[7,1]]")));
        });
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn diff_subtracts_span_stats_per_path() {
        let earlier = Profile {
            spans: vec![SpanRecord {
                path: "serve/plan".into(),
                calls: 2,
                wall_nanos: 100,
                items: 10,
                ..SpanRecord::default()
            }],
            ..Profile::default()
        };
        let later = Profile {
            spans: vec![
                SpanRecord {
                    path: "serve/delta".into(),
                    calls: 1,
                    wall_nanos: 7,
                    items: 0,
                    ..SpanRecord::default()
                },
                SpanRecord {
                    path: "serve/plan".into(),
                    calls: 5,
                    wall_nanos: 260,
                    items: 31,
                    ..SpanRecord::default()
                },
            ],
            ..Profile::default()
        };
        let d = later.diff(&earlier);
        assert_eq!(d.spans.len(), 2);
        // New-in-later path passes through unchanged.
        assert_eq!(d.spans[0].path, "serve/delta");
        assert_eq!((d.spans[0].calls, d.spans[0].wall_nanos), (1, 7));
        // Shared path subtracts field-wise.
        assert_eq!(d.spans[1].path, "serve/plan");
        assert_eq!(d.spans[1].calls, 3);
        assert_eq!(d.spans[1].wall_nanos, 160);
        assert_eq!(d.spans[1].items, 21);
    }

    #[test]
    fn diff_of_identical_snapshots_is_empty() {
        with_clean_obs(|| {
            {
                let _s = span("serve");
            }
            counter("serve/requests").add(3);
            histogram("serve/latency").record(9);
            let a = snapshot();
            let b = snapshot();
            assert!(!a.is_empty());
            assert!(b.diff(&a).is_empty());
        });
    }

    #[test]
    fn diff_drops_unchanged_counters_and_keeps_deltas() {
        let earlier = Profile {
            counters: vec![("a".into(), 4), ("b".into(), 9)],
            ..Profile::default()
        };
        let later = Profile {
            counters: vec![("a".into(), 4), ("b".into(), 12), ("c".into(), 1)],
            ..Profile::default()
        };
        let d = later.diff(&earlier);
        assert_eq!(d.counters, vec![("b".into(), 3), ("c".into(), 1)]);
    }

    #[test]
    fn diff_subtracts_histogram_buckets() {
        let earlier = Profile {
            hists: vec![HistRecord {
                path: "h".into(),
                count: 3,
                buckets: vec![(0, 1), (3, 2)],
            }],
            ..Profile::default()
        };
        let later = Profile {
            hists: vec![HistRecord {
                path: "h".into(),
                count: 7,
                buckets: vec![(0, 1), (3, 4), (5, 2)],
            }],
            ..Profile::default()
        };
        let d = later.diff(&earlier);
        assert_eq!(d.hists.len(), 1);
        assert_eq!(d.hists[0].count, 4);
        assert_eq!(d.hists[0].buckets, vec![(3, 2), (5, 2)]);
    }

    #[test]
    fn diff_saturates_on_mismatched_snapshots() {
        // A reset between snapshots (or swapped arguments) makes the
        // "later" values smaller; the diff clamps at zero, never panics.
        let bigger = Profile {
            spans: vec![SpanRecord {
                path: "p".into(),
                calls: 9,
                wall_nanos: 900,
                items: 9,
                ..SpanRecord::default()
            }],
            counters: vec![("c".into(), 9)],
            hists: vec![HistRecord {
                path: "h".into(),
                count: 9,
                buckets: vec![(1, 9)],
            }],
        };
        let smaller = Profile {
            spans: vec![SpanRecord {
                path: "p".into(),
                calls: 1,
                wall_nanos: 100,
                items: 1,
                ..SpanRecord::default()
            }],
            counters: vec![("c".into(), 2)],
            hists: vec![HistRecord {
                path: "h".into(),
                count: 2,
                buckets: vec![(1, 2)],
            }],
        };
        let d = smaller.diff(&bigger);
        assert!(d.is_empty());
    }

    #[test]
    fn diff_windows_compose_to_the_whole() {
        with_clean_obs(|| {
            let c = counter("w/reqs");
            c.add(2);
            let t0 = snapshot();
            c.add(5);
            let t1 = snapshot();
            c.add(1);
            let t2 = snapshot();
            let w1 = t1.diff(&t0);
            let w2 = t2.diff(&t1);
            assert_eq!(w1.counters, vec![("w/reqs".into(), 5)]);
            assert_eq!(w2.counters, vec![("w/reqs".into(), 1)]);
            // Window deltas sum to the full-range delta.
            let full = t2.diff(&t0);
            assert_eq!(full.counters[0].1, w1.counters[0].1 + w2.counters[0].1);
        });
    }

    #[test]
    fn reset_clears_everything() {
        with_clean_obs(|| {
            {
                let _s = span("gone");
            }
            let c = counter("gone/count");
            c.add(1);
            reset();
            let p = snapshot();
            assert!(p.spans.is_empty());
            assert!(p.counters.is_empty());
            // Handle from before the reset still works.
            c.add(2);
            assert_eq!(c.get(), 2);
        });
    }
}
