//! Counting global allocator: heap traffic as a first-class profiled
//! quantity.
//!
//! The workspace's steady-state paths (warm `delta`s, per-tile replans)
//! are supposed to be allocation-free; this module makes that property
//! *measurable* instead of aspirational. [`CountingAlloc`] wraps the
//! system allocator and — only while counting is switched on — tallies
//! every allocation's count and bytes, tracks the live-bytes high-water
//! mark, and lets [`crate::span`]s attribute the traffic of their window
//! to the phase tree (`alloc_count` / `alloc_bytes` / `alloc_peak` on
//! [`crate::SpanRecord`]).
//!
//! # Gating and overhead
//!
//! Counting is **off by default** and enabled per process via
//! [`set_counting`] (the CLI's `--count-allocs`, the serve daemon, and
//! the S8 bench flip it) or the `MDG_COUNT_ALLOC` environment variable
//! through [`counting_from_env`]. While off, the allocator adds one
//! relaxed atomic load per heap call — the same cost class as a disabled
//! [`crate::Counter`], and within noise on the scale benches (the CI
//! profile-overhead gate covers it).
//!
//! # Attribution model
//!
//! Tallies are kept per thread (`Cell`s in const-initialised TLS — the
//! recording path never allocates, so the allocator cannot recurse) and
//! mirrored into process-wide atomics for [`totals`]. A span opened on a
//! thread observes *that thread's* tallies at open and close, so worker
//! threads' allocations (the `mdg-par` pool opens no spans) land in the
//! process totals but not under any span path. That split is deliberate:
//! the per-phase tree answers "which orchestrated phase allocates", the
//! totals answer "how much does this request allocate at all".
//!
//! # Determinism contract
//!
//! Like the rest of `mdg-obs`, counting only observes: nothing feeds back
//! into algorithm state, so plans are bit-identical with counting on or
//! off (covered by the workspace `obs_equivalence` suite running under
//! `MDG_COUNT_ALLOC=1` in CI).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static COUNTING: AtomicBool = AtomicBool::new(false);

/// Process-wide tallies (mirrors of the per-thread cells, relaxed).
static TOTAL_COUNT: AtomicU64 = AtomicU64::new(0);
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread tallies; `current`/`peak` track this thread's share of
    /// live bytes so spans can report a high-water mark for their window.
    static TALLY: Tally = const {
        Tally {
            count: Cell::new(0),
            bytes: Cell::new(0),
            current: Cell::new(0),
            peak: Cell::new(0),
        }
    };
}

struct Tally {
    count: Cell<u64>,
    bytes: Cell<u64>,
    current: Cell<u64>,
    peak: Cell<u64>,
}

/// Switch allocation counting on or off (off by default). Independent of
/// [`crate::set_enabled`]: spans only pick allocation columns up while
/// *both* are on, but [`totals`] accumulate whenever counting is on.
pub fn set_counting(on: bool) {
    COUNTING.store(on, Ordering::Relaxed);
}

/// Whether allocation counting is currently on.
#[inline]
pub fn counting() -> bool {
    COUNTING.load(Ordering::Relaxed)
}

/// Enables counting if the `MDG_COUNT_ALLOC` environment variable is set
/// to anything but `0`/empty/`false`; returns whether counting is now on.
pub fn counting_from_env() -> bool {
    if let Ok(v) = std::env::var("MDG_COUNT_ALLOC") {
        if !(v.is_empty() || v == "0" || v.eq_ignore_ascii_case("false")) {
            set_counting(true);
        }
    }
    counting()
}

/// Snapshot of the process-wide allocation tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocTotals {
    /// Number of allocations (allocs + reallocs) since counting began.
    pub count: u64,
    /// Bytes requested across those allocations.
    pub bytes: u64,
    /// Bytes currently live (allocated minus freed while counting).
    pub current: u64,
    /// High-water mark of `current`.
    pub peak: u64,
}

impl AllocTotals {
    /// Field-wise delta since `base` (`count`/`bytes` subtract and
    /// saturate; `current`/`peak` pass through — they are levels, not
    /// monotone counters).
    pub fn since(&self, base: &AllocTotals) -> AllocTotals {
        AllocTotals {
            count: self.count.saturating_sub(base.count),
            bytes: self.bytes.saturating_sub(base.bytes),
            current: self.current,
            peak: self.peak,
        }
    }
}

/// Current process-wide tallies (zeros until [`set_counting`] turns
/// counting on).
pub fn totals() -> AllocTotals {
    AllocTotals {
        count: TOTAL_COUNT.load(Ordering::Relaxed),
        bytes: TOTAL_BYTES.load(Ordering::Relaxed),
        current: LIVE_BYTES.load(Ordering::Relaxed),
        peak: PEAK_BYTES.load(Ordering::Relaxed),
    }
}

/// This thread's tallies at a point in time, captured by spans at open.
#[derive(Clone, Copy)]
pub(crate) struct ThreadMark {
    pub(crate) count: u64,
    pub(crate) bytes: u64,
    /// The thread peak at open, restored (maxed with the window peak) at
    /// close so an enclosing span still sees the true high-water mark.
    pub(crate) saved_peak: u64,
}

/// Marks the current thread's tallies and resets its peak to the current
/// live level, so the window that follows measures its own high water.
/// Returns `None` when counting is off (the span then skips alloc work).
pub(crate) fn mark() -> Option<ThreadMark> {
    if !counting() {
        return None;
    }
    TALLY
        .try_with(|t| {
            let saved_peak = t.peak.get();
            t.peak.set(t.current.get());
            ThreadMark {
                count: t.count.get(),
                bytes: t.bytes.get(),
                saved_peak,
            }
        })
        .ok()
}

/// Window deltas attributed to a closing span.
#[derive(Clone, Copy, Default)]
pub(crate) struct WindowDelta {
    pub(crate) count: u64,
    pub(crate) bytes: u64,
    pub(crate) peak: u64,
}

/// Closes a window opened by [`mark`]: computes the deltas and restores
/// the thread peak so enclosing windows stay correct.
pub(crate) fn window(m: ThreadMark) -> WindowDelta {
    TALLY
        .try_with(|t| {
            let window_peak = t.peak.get();
            t.peak.set(m.saved_peak.max(window_peak));
            WindowDelta {
                count: t.count.get().saturating_sub(m.count),
                bytes: t.bytes.get().saturating_sub(m.bytes),
                peak: window_peak,
            }
        })
        .unwrap_or_default()
}

#[inline]
fn record_alloc(size: u64) {
    // Per-thread cells first (never allocates), then the process mirrors.
    let _ = TALLY.try_with(|t| {
        t.count.set(t.count.get() + 1);
        t.bytes.set(t.bytes.get() + size);
        let cur = t.current.get() + size;
        t.current.set(cur);
        if cur > t.peak.get() {
            t.peak.set(cur);
        }
    });
    TOTAL_COUNT.fetch_add(1, Ordering::Relaxed);
    TOTAL_BYTES.fetch_add(size, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    // Lossy peak update: a stale read can miss a concurrent maximum by a
    // few bytes, which is fine for a profiling high-water mark and keeps
    // the hot path to two relaxed RMWs.
    if live > PEAK_BYTES.load(Ordering::Relaxed) {
        PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    }
}

#[inline]
fn record_dealloc(size: u64) {
    let _ = TALLY.try_with(|t| {
        t.current.set(t.current.get().saturating_sub(size));
    });
    // Saturating via fetch_update would be an RMW loop; a plain sub is
    // fine because frees of pre-counting allocations can only make the
    // (unsigned) level wrap when more is freed than was ever counted —
    // guard with a min against the running total instead.
    let _ = LIVE_BYTES.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_sub(size))
    });
}

/// The counting allocator installed as the workspace's
/// `#[global_allocator]` (declared in the crate root so every binary
/// that links `mdg-obs` gets it). Pure pass-through to [`System`] until
/// [`set_counting`] flips it on.
pub struct CountingAlloc;

// SAFETY: every method forwards to `System` unchanged; the bookkeeping
// around the forwarding never allocates (const-init TLS cells + relaxed
// atomics), so there is no recursion and no change to allocation
// behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if counting() && !p.is_null() {
            record_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if counting() && !p.is_null() {
            record_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if counting() {
            record_dealloc(layout.size() as u64);
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if counting() && !p.is_null() {
            // A realloc counts as one allocation of the new size and a
            // free of the old one (matches what grow-in-loop costs).
            record_alloc(new_size as u64);
            record_dealloc(layout.size() as u64);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Counting state is process-global; serialize the tests that flip it.
    fn with_counting<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_counting(true);
        let r = f();
        set_counting(false);
        r
    }

    #[test]
    fn counting_is_off_by_default_costs_nothing() {
        // (Other tests may have counting on concurrently; only check the
        // flag round-trip, not the totals.)
        set_counting(false);
        assert!(!counting());
    }

    #[test]
    fn totals_grow_with_allocations() {
        with_counting(|| {
            let before = totals();
            let v: Vec<u64> = Vec::with_capacity(1024);
            let after = totals();
            drop(v);
            let d = after.since(&before);
            assert!(d.count >= 1, "allocation not counted");
            assert!(d.bytes >= 8 * 1024, "bytes under-counted: {}", d.bytes);
            assert!(after.peak >= after.current);
        });
    }

    #[test]
    fn window_attributes_thread_local_traffic() {
        with_counting(|| {
            let m = mark().expect("counting is on");
            let v: Vec<u8> = Vec::with_capacity(4096);
            let d = window(m);
            assert!(d.count >= 1);
            assert!(d.bytes >= 4096);
            assert!(d.peak >= 4096);
            drop(v);
        });
    }

    #[test]
    fn nested_windows_restore_the_outer_peak() {
        with_counting(|| {
            let outer = mark().expect("counting is on");
            let big: Vec<u8> = Vec::with_capacity(1 << 16);
            drop(big);
            let inner = mark().expect("counting is on");
            let small: Vec<u8> = Vec::with_capacity(16);
            let di = window(inner);
            drop(small);
            let d = window(outer);
            assert!(di.peak < d.peak, "inner window saw the outer high-water");
            assert!(d.peak >= 1 << 16);
        });
    }

    #[test]
    fn env_gate_parses_common_forms() {
        // Only exercises the parser logic indirectly: unset/0/false must
        // not enable. (Set-forms are covered by the CLI test, which owns
        // its process environment.)
        set_counting(false);
        std::env::remove_var("MDG_COUNT_ALLOC");
        assert!(!counting_from_env());
        std::env::set_var("MDG_COUNT_ALLOC", "0");
        assert!(!counting_from_env());
        std::env::set_var("MDG_COUNT_ALLOC", "false");
        assert!(!counting_from_env());
        std::env::remove_var("MDG_COUNT_ALLOC");
    }
}
