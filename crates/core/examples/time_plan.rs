//! Times planning alone (no I/O) on one seeded field:
//! `time_plan [n] [reps] [side]` (side defaults to `sqrt(n) * 10`).

use mdg_core::ShdgPlanner;
use mdg_net::{DeploymentConfig, Network};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2000);
    let reps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let side: f64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or((n as f64).sqrt() * 10.0);
    let net = Network::build(DeploymentConfig::uniform(n, side).generate(42), 30.0);
    let mut best = f64::INFINITY;
    let mut plan = None;
    for _ in 0..reps {
        let t = Instant::now();
        let p = ShdgPlanner::new().plan(&net).unwrap();
        best = best.min(t.elapsed().as_secs_f64());
        plan = Some(p);
    }
    let p = plan.unwrap();
    println!(
        "n={n} plan_ms={:.2} pps={} tour={:.4}",
        best * 1e3,
        p.n_polling_points(),
        p.tour_length
    );
}
