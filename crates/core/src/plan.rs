//! The data-gathering plan produced by SHDG planning.

use mdg_geom::{closed_tour_length, Point};
use serde::{Deserialize, Serialize};

/// A polling point: a pause location of the mobile collector together with
/// the sensors that upload to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PollingPoint {
    /// Pause position of the collector.
    pub pos: Point,
    /// Index of the originating candidate. For sensor-site candidates this
    /// is the sensor id the collector pauses at; for grid candidates it is
    /// the retained grid-candidate index.
    pub candidate: usize,
    /// Sensor ids assigned to upload at this polling point.
    pub covered: Vec<u32>,
}

/// A complete single-collector data-gathering plan.
///
/// Polling points are stored **in tour order**: the collector drives
/// `sink → polling_points[0] → polling_points[1] → … → sink`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatheringPlan {
    /// The static data sink (tour start and end).
    pub sink: Point,
    /// Polling points in visiting order.
    pub polling_points: Vec<PollingPoint>,
    /// `assignment[sensor] = index into polling_points` of the polling
    /// point the sensor uploads to.
    pub assignment: Vec<usize>,
    /// Closed tour length in meters.
    pub tour_length: f64,
}

impl GatheringPlan {
    /// Builds a plan from tour-ordered polling points, recomputing the tour
    /// length.
    pub fn new(sink: Point, polling_points: Vec<PollingPoint>, assignment: Vec<usize>) -> Self {
        let mut plan = GatheringPlan {
            sink,
            polling_points,
            assignment,
            tour_length: 0.0,
        };
        plan.tour_length = closed_tour_length(&plan.tour_positions());
        plan
    }

    /// Number of polling points.
    pub fn n_polling_points(&self) -> usize {
        self.polling_points.len()
    }

    /// Number of sensors served.
    pub fn n_sensors(&self) -> usize {
        self.assignment.len()
    }

    /// Tour vertices: the sink followed by the polling points in order.
    /// The tour closes back to the sink.
    pub fn tour_positions(&self) -> Vec<Point> {
        let mut pts = Vec::with_capacity(self.polling_points.len() + 1);
        pts.push(self.sink);
        pts.extend(self.polling_points.iter().map(|pp| pp.pos));
        pts
    }

    /// Distance each sensor transmits over when uploading (sensor → its
    /// polling point).
    pub fn upload_distances(&self, sensors: &[Point]) -> Vec<f64> {
        self.assignment
            .iter()
            .enumerate()
            .map(|(s, &pp)| sensors[s].dist(self.polling_points[pp].pos))
            .collect()
    }

    /// Largest number of sensors uploading at a single polling point — the
    /// collector's per-stop buffer requirement (0 for a sensorless plan).
    pub fn max_sensors_per_pp(&self) -> usize {
        self.polling_points
            .iter()
            .map(|pp| pp.covered.len())
            .max()
            .unwrap_or(0)
    }

    /// Time for one full collection round: travel at `speed_mps` plus
    /// `upload_secs` of pause per *sensor served* (each sensor uploads its
    /// packet while the collector pauses at its polling point).
    pub fn collection_time(&self, speed_mps: f64, upload_secs: f64) -> f64 {
        assert!(speed_mps > 0.0, "collector speed must be positive");
        self.tour_length / speed_mps + upload_secs * self.n_sensors() as f64
    }

    /// Rough heap footprint of the plan in bytes — polling-point structs,
    /// covered lists, and the assignment table. Used by the serving
    /// layer's byte-aware session eviction; an estimate, not an audit.
    pub fn approx_bytes(&self) -> u64 {
        let pps: u64 = self
            .polling_points
            .iter()
            .map(|pp| 48 + pp.covered.len() as u64 * 4)
            .sum();
        64 + pps + self.assignment.len() as u64 * 8
    }

    /// Validates internal consistency against the deployment: assignments
    /// in range, every sensor assigned exactly once and within `range` of
    /// its polling point, and the `covered` lists matching the assignment.
    pub fn validate(&self, sensors: &[Point], range: f64) -> Result<(), String> {
        if self.assignment.len() != sensors.len() {
            return Err(format!(
                "assignment covers {} sensors, deployment has {}",
                self.assignment.len(),
                sensors.len()
            ));
        }
        for (s, &pp) in self.assignment.iter().enumerate() {
            let pp_ref = self
                .polling_points
                .get(pp)
                .ok_or_else(|| format!("sensor {s} assigned to missing polling point {pp}"))?;
            let d = sensors[s].dist(pp_ref.pos);
            if d > range + 1e-9 {
                return Err(format!(
                    "sensor {s} is {d:.2} m from its polling point (range {range} m)"
                ));
            }
            if !pp_ref.covered.contains(&(s as u32)) {
                return Err(format!(
                    "polling point {pp} does not list sensor {s} as covered"
                ));
            }
        }
        let listed: usize = self.polling_points.iter().map(|pp| pp.covered.len()).sum();
        if listed != sensors.len() {
            return Err(format!(
                "covered lists contain {listed} entries for {} sensors",
                sensors.len()
            ));
        }
        let recomputed = closed_tour_length(&self.tour_positions());
        if (recomputed - self.tour_length).abs() > 1e-6 {
            return Err(format!(
                "stored tour length {} != recomputed {}",
                self.tour_length, recomputed
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> (GatheringPlan, Vec<Point>, f64) {
        let sensors = vec![
            Point::new(0.0, 10.0),
            Point::new(5.0, 10.0),
            Point::new(40.0, 10.0),
        ];
        let pps = vec![
            PollingPoint {
                pos: Point::new(0.0, 10.0),
                candidate: 0,
                covered: vec![0, 1],
            },
            PollingPoint {
                pos: Point::new(40.0, 10.0),
                candidate: 2,
                covered: vec![2],
            },
        ];
        let plan = GatheringPlan::new(Point::new(20.0, 0.0), pps, vec![0, 0, 1]);
        (plan, sensors, 10.0)
    }

    #[test]
    fn tour_positions_and_length() {
        let (plan, _, _) = sample_plan();
        let pts = plan.tour_positions();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], Point::new(20.0, 0.0));
        let expect = closed_tour_length(&pts);
        assert!((plan.tour_length - expect).abs() < 1e-12);
        assert!(plan.tour_length > 0.0);
    }

    #[test]
    fn validate_accepts_consistent_plan() {
        let (plan, sensors, range) = sample_plan();
        plan.validate(&sensors, range).unwrap();
    }

    #[test]
    fn validate_rejects_out_of_range_assignment() {
        let (plan, sensors, _) = sample_plan();
        let err = plan.validate(&sensors, 1.0).unwrap_err();
        assert!(err.contains("from its polling point"), "{err}");
    }

    #[test]
    fn validate_rejects_wrong_sensor_count() {
        let (plan, sensors, range) = sample_plan();
        let err = plan.validate(&sensors[..2], range).unwrap_err();
        assert!(err.contains("deployment has 2"), "{err}");
    }

    #[test]
    fn validate_rejects_mismatched_covered_list() {
        let (mut plan, sensors, range) = sample_plan();
        plan.polling_points[0].covered = vec![0]; // dropped sensor 1
        assert!(plan.validate(&sensors, range).is_err());
    }

    #[test]
    fn validate_rejects_stale_tour_length() {
        let (mut plan, sensors, range) = sample_plan();
        plan.tour_length += 5.0;
        let err = plan.validate(&sensors, range).unwrap_err();
        assert!(err.contains("tour length"), "{err}");
    }

    #[test]
    fn upload_distances_and_buffer() {
        let (plan, sensors, _) = sample_plan();
        let d = plan.upload_distances(&sensors);
        assert!((d[0] - 0.0).abs() < 1e-12);
        assert!((d[1] - 5.0).abs() < 1e-12);
        assert!((d[2] - 0.0).abs() < 1e-12);
        assert_eq!(plan.max_sensors_per_pp(), 2);
    }

    #[test]
    fn collection_time_travel_plus_uploads() {
        let (plan, _, _) = sample_plan();
        let t = plan.collection_time(1.0, 2.0);
        assert!(
            (t - (plan.tour_length + 6.0)).abs() < 1e-9,
            "travel + 3 sensors × 2 s"
        );
    }

    #[test]
    fn empty_plan() {
        let plan = GatheringPlan::new(Point::ORIGIN, vec![], vec![]);
        assert_eq!(plan.tour_length, 0.0);
        assert_eq!(plan.max_sensors_per_pp(), 0);
        plan.validate(&[], 10.0).unwrap();
        assert_eq!(plan.collection_time(1.0, 5.0), 0.0);
    }
}
