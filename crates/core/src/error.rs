//! Planner error types.

use std::fmt;

/// Errors produced by SHDG planning.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// Some sensors cannot be covered by any candidate polling point
    /// (possible only with grid candidates and coarse spacing). Carries the
    /// uncoverable sensor ids.
    Uncoverable(Vec<usize>),
    /// The exact solver was given an instance beyond its size limits.
    TooLargeForExact {
        /// Number of sensors in the instance.
        n_sensors: usize,
        /// The solver's sensor limit.
        limit: usize,
    },
    /// The exact solver exhausted its search budget without proving
    /// optimality.
    ExactBudgetExhausted,
    /// The requested configuration is not supported by this planning
    /// mode (e.g. grid candidates under hierarchical planning, whose
    /// per-tile instances are sensor-site by construction).
    Unsupported(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Uncoverable(ids) => {
                write!(
                    f,
                    "{} sensor(s) cannot be covered by any candidate polling point",
                    ids.len()
                )
            }
            PlanError::TooLargeForExact { n_sensors, limit } => {
                write!(
                    f,
                    "exact solver limited to {limit} sensors, got {n_sensors}"
                )
            }
            PlanError::ExactBudgetExhausted => {
                write!(f, "exact solver exhausted its search budget")
            }
            PlanError::Unsupported(what) => {
                write!(f, "unsupported configuration: {what}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = PlanError::Uncoverable(vec![1, 2]);
        assert!(e.to_string().contains("2 sensor(s)"));
        let e = PlanError::TooLargeForExact {
            n_sensors: 50,
            limit: 16,
        };
        assert!(e.to_string().contains("16"));
        assert!(e.to_string().contains("50"));
        assert!(PlanError::ExactBudgetExhausted
            .to_string()
            .contains("budget"));
    }
}
