//! ILP export of the SHDGP formulation (CPLEX LP format).
//!
//! The paper formulates the single-hop data gathering problem as an
//! integer program and solves small instances with CPLEX/AMPL. This
//! reproduction substitutes its own exact solver ([`crate::exact`]), but
//! for users who *do* have a MIP solver this module emits the equivalent
//! formulation in the standard LP file format:
//!
//! * binary `y_c` — candidate polling point `c` is selected,
//! * binary `x_u_v` — the tour drives the directed leg `u → v` (node `0`
//!   is the sink, node `c+1` is candidate `c`),
//! * continuous `f_u_v ≥ 0` — single-commodity flow eliminating subtours.
//!
//! Constraints:
//! 1. coverage: every sensor has a selected candidate covering it,
//! 2. degree: a selected node is entered and left exactly once (the sink
//!    always is; unselected candidates never are),
//! 3. flow: the sink emits one flow unit per selected point, each selected
//!    point consumes one, and flow only rides tour edges
//!    (`f ≤ (m+1)·x`) — the classic Gavish–Graves linearization.
//!
//! [`check_plan_against_ilp`] plugs a [`GatheringPlan`] into the same
//! constraint system and verifies feasibility — the tests use it to prove
//! the exported model and the native solver agree.

use crate::plan::GatheringPlan;
use mdg_cover::CoverageInstance;
use mdg_geom::Point;
use std::fmt::Write as _;

/// An SHDGP instance prepared for ILP export.
#[derive(Debug, Clone)]
pub struct IlpInstance {
    /// Sink position (tour node 0).
    pub sink: Point,
    /// The coverage instance (candidates = tour nodes `1..=m`).
    pub instance: CoverageInstance,
}

impl IlpInstance {
    /// Builds the instance from a network with sensor-site candidates.
    pub fn from_network(net: &mdg_net::Network) -> Self {
        IlpInstance {
            sink: net.deployment.sink,
            instance: CoverageInstance::sensor_sites(&net.deployment.sensors, net.range),
        }
    }

    fn node_pos(&self, node: usize) -> Point {
        if node == 0 {
            self.sink
        } else {
            self.instance.candidates[node - 1].pos
        }
    }

    /// Number of tour nodes (sink + candidates).
    fn n_nodes(&self) -> usize {
        self.instance.n_candidates() + 1
    }

    /// Serializes the formulation in CPLEX LP format.
    pub fn to_lp(&self) -> String {
        let n = self.n_nodes();
        let m = self.instance.n_candidates();
        let mut lp = String::new();
        let _ = writeln!(
            lp,
            "\\ SHDGP: single-hop data gathering (Ma & Yang, IPDPS 2008)"
        );
        let _ = writeln!(lp, "\\ nodes: 0 = sink, 1..={m} = candidate polling points");
        let _ = writeln!(lp, "Minimize");
        // Objective: sum of distances over directed tour edges.
        let mut terms = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    let d = self.node_pos(u).dist(self.node_pos(v));
                    terms.push(format!("{d:.6} x_{u}_{v}"));
                }
            }
        }
        let _ = writeln!(lp, " obj: {}", terms.join(" + "));
        let _ = writeln!(lp, "Subject To");

        // 1. Coverage: Σ_{c covers t} y_c ≥ 1 for every sensor t.
        for t in 0..self.instance.n_targets() {
            let coverers: Vec<String> = (0..m)
                .filter(|&c| self.instance.candidates[c].covers.get(t))
                .map(|c| format!("y_{c}"))
                .collect();
            let _ = writeln!(lp, " cover_{t}: {} >= 1", coverers.join(" + "));
        }
        // 2. Degree constraints tied to selection. The sink is always on
        //    the tour (y implicit 1).
        let out_edges = |u: usize| {
            (0..n)
                .filter(|&v| v != u)
                .map(|v| format!("x_{u}_{v}"))
                .collect::<Vec<_>>()
                .join(" + ")
        };
        let in_edges = |u: usize| {
            (0..n)
                .filter(|&v| v != u)
                .map(|v| format!("x_{v}_{u}"))
                .collect::<Vec<_>>()
                .join(" + ")
        };
        let _ = writeln!(lp, " deg_out_0: {} = 1", out_edges(0));
        let _ = writeln!(lp, " deg_in_0: {} = 1", in_edges(0));
        for c in 0..m {
            let u = c + 1;
            let _ = writeln!(lp, " deg_out_{u}: {} - y_{c} = 0", out_edges(u));
            let _ = writeln!(lp, " deg_in_{u}: {} - y_{c} = 0", in_edges(u));
        }
        // 3. Flow-based subtour elimination: sink sends one unit per
        //    selected point; every selected point absorbs one.
        let flow_out = |u: usize| {
            (0..n)
                .filter(|&v| v != u)
                .map(|v| format!("f_{u}_{v}"))
                .collect::<Vec<_>>()
                .join(" + ")
        };
        let flow_in = |u: usize| {
            (0..n)
                .filter(|&v| v != u)
                .map(|v| format!("f_{v}_{u}"))
                .collect::<Vec<_>>()
                .join(" + ")
        };
        {
            // flow_out(0) − flow_in(0) − Σ y_c = 0.
            let ys: String = (0..m).map(|c| format!(" - y_{c}")).collect();
            let _ = writeln!(
                lp,
                " flow_src: {} - {}{} = 0",
                flow_out(0),
                par(flow_in(0)),
                ys
            );
        }
        for c in 0..m {
            let u = c + 1;
            let _ = writeln!(
                lp,
                " flow_{u}: {} - {} + y_{c} = 0",
                flow_out(u),
                par(flow_in(u))
            );
        }
        // Capacity coupling: f_u_v ≤ (m+1)·x_u_v.
        let cap = (m + 1) as f64;
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    let _ = writeln!(lp, " cap_{u}_{v}: f_{u}_{v} - {cap} x_{u}_{v} <= 0");
                }
            }
        }

        let _ = writeln!(lp, "Bounds");
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    let _ = writeln!(lp, " 0 <= f_{u}_{v}");
                }
            }
        }
        let _ = writeln!(lp, "Binary");
        for c in 0..m {
            let _ = writeln!(lp, " y_{c}");
        }
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    let _ = writeln!(lp, " x_{u}_{v}");
                }
            }
        }
        let _ = writeln!(lp, "End");
        lp
    }
}

fn par(expr: String) -> String {
    // LP format has no parentheses; expand "a + b" subtraction manually.
    expr.replace(" + ", " - ")
}

/// Verifies that a [`GatheringPlan`] is feasible for the exported ILP: its
/// selection covers every sensor, its tour visits exactly the selected
/// candidates, and the tour's edge set admits a valid subtour-free flow
/// (trivially true for a single closed tour). Returns the plan's objective
/// value (tour length) on success.
pub fn check_plan_against_ilp(ilp: &IlpInstance, plan: &GatheringPlan) -> Result<f64, String> {
    let m = ilp.instance.n_candidates();
    // Selection from the plan.
    let mut selected = vec![false; m];
    for pp in &plan.polling_points {
        if pp.candidate >= m {
            return Err(format!(
                "plan references unknown candidate {}",
                pp.candidate
            ));
        }
        if selected[pp.candidate] {
            return Err(format!("candidate {} selected twice", pp.candidate));
        }
        selected[pp.candidate] = true;
    }
    // 1. Coverage constraints.
    for t in 0..ilp.instance.n_targets() {
        let covered = (0..m).any(|c| selected[c] && ilp.instance.candidates[c].covers.get(t));
        if !covered {
            return Err(format!("constraint cover_{t} violated"));
        }
    }
    // 2+3. Tour structure: the plan is a single closed walk over the sink
    //      and exactly the selected candidates, each visited once — which
    //      satisfies the degree constraints and admits the canonical flow
    //      (m_sel, m_sel − 1, …, 1 along the tour).
    let visited: Vec<usize> = plan.polling_points.iter().map(|pp| pp.candidate).collect();
    let mut sorted = visited.clone();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != visited.len() {
        return Err("tour visits a polling point twice (degree constraint violated)".into());
    }
    let n_selected = selected.iter().filter(|&&s| s).count();
    if visited.len() != n_selected {
        return Err("tour does not visit every selected candidate".into());
    }
    // Objective value.
    Ok(plan.tour_length)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_plan;
    use crate::planner::ShdgPlanner;
    use mdg_net::{DeploymentConfig, Network};

    fn ilp(n: usize, seed: u64) -> (IlpInstance, Network) {
        let net = Network::build(DeploymentConfig::uniform(n, 70.0).generate(seed), 25.0);
        (IlpInstance::from_network(&net), net)
    }

    #[test]
    fn lp_file_structure() {
        let (ilp, net) = ilp(6, 1);
        let lp = ilp.to_lp();
        assert!(lp.starts_with("\\ SHDGP"));
        assert!(lp.contains("Minimize"));
        assert!(lp.contains("Subject To"));
        assert!(lp.trim_end().ends_with("End"));
        // One coverage row per sensor.
        for t in 0..net.n_sensors() {
            assert!(lp.contains(&format!("cover_{t}:")), "missing cover_{t}");
        }
        // Degree rows for the sink and every candidate.
        assert!(lp.contains("deg_out_0:"));
        for c in 0..net.n_sensors() {
            assert!(lp.contains(&format!("deg_out_{}:", c + 1)));
            assert!(
                lp.contains(&format!(" y_{c}\n")),
                "y_{c} must be declared binary"
            );
        }
        // Directed edge variables both ways.
        assert!(lp.contains("x_0_1") && lp.contains("x_1_0"));
        // Flow capacity coupling present.
        assert!(lp.contains("cap_0_1:"));
    }

    #[test]
    fn variable_and_constraint_counts() {
        let (ilp, net) = ilp(5, 3);
        let lp = ilp.to_lp();
        let n = net.n_sensors() + 1;
        let arcs = n * (n - 1);
        // Binary section: m y's + arcs x's.
        let binary_lines = lp.split("Binary").nth(1).unwrap();
        let y_count = binary_lines.matches("\n y_").count();
        let x_count = binary_lines.matches("\n x_").count();
        assert_eq!(y_count, net.n_sensors());
        assert_eq!(x_count, arcs);
        // One capacity row per arc.
        assert_eq!(lp.matches(" cap_").count(), arcs);
    }

    #[test]
    fn exact_and_heuristic_plans_satisfy_the_ilp() {
        for seed in 0..5 {
            let (ilp, net) = ilp(10, seed);
            let heur = ShdgPlanner::new().plan(&net).unwrap();
            let exact = exact_plan(&net).unwrap();
            let h_obj = check_plan_against_ilp(&ilp, &heur).unwrap();
            let e_obj = check_plan_against_ilp(&ilp, &exact).unwrap();
            assert!((h_obj - heur.tour_length).abs() < 1e-12);
            assert!(e_obj <= h_obj + 1e-6, "seed {seed}");
        }
    }

    #[test]
    fn checker_rejects_non_covers() {
        let (ilp, net) = ilp(8, 7);
        let mut plan = ShdgPlanner::new().plan(&net).unwrap();
        // Drop a polling point: some sensor loses coverage.
        plan.polling_points.pop();
        let err = check_plan_against_ilp(&ilp, &plan).unwrap_err();
        assert!(err.contains("cover_"), "{err}");
    }

    #[test]
    fn checker_rejects_duplicate_visits() {
        let (ilp, net) = ilp(8, 9);
        let mut plan = ShdgPlanner::new().plan(&net).unwrap();
        let dup = plan.polling_points[0].clone();
        plan.polling_points.push(dup);
        assert!(check_plan_against_ilp(&ilp, &plan).is_err());
    }

    #[test]
    fn visit_all_satisfies_the_ilp_too() {
        let (ilp, net) = ilp(9, 11);
        let va = mdg_baselines_shim::visit_all(&net);
        let obj = check_plan_against_ilp(&ilp, &va).unwrap();
        assert!(obj > 0.0);
    }

    /// Minimal local reimplementation to avoid a dev-dependency cycle with
    /// `mdg-baselines` (which depends on this crate): each sensor is its
    /// own polling point, visited in index order.
    mod mdg_baselines_shim {
        use crate::plan::{GatheringPlan, PollingPoint};
        use mdg_net::Network;

        pub fn visit_all(net: &Network) -> GatheringPlan {
            let pps = net
                .deployment
                .sensors
                .iter()
                .enumerate()
                .map(|(i, &pos)| PollingPoint {
                    pos,
                    candidate: i,
                    covered: vec![i as u32],
                })
                .collect();
            let assignment = (0..net.n_sensors()).collect();
            GatheringPlan::new(net.deployment.sink, pps, assignment)
        }
    }
}
