//! Plan metrics reported by the experiment harness.

use crate::plan::GatheringPlan;
use mdg_energy::Summary;
use mdg_geom::Point;
use serde::{Deserialize, Serialize};

/// Aggregate statistics of a [`GatheringPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanMetrics {
    /// Closed tour length in meters.
    pub tour_length: f64,
    /// Number of polling points.
    pub n_polling_points: usize,
    /// Number of sensors served.
    pub n_sensors: usize,
    /// Mean sensor → polling-point upload distance in meters.
    pub mean_upload_dist: f64,
    /// Maximum upload distance in meters (≤ the transmission range by
    /// construction).
    pub max_upload_dist: f64,
    /// Mean sensors per polling point.
    pub mean_sensors_per_pp: f64,
    /// Maximum sensors per polling point (collector buffer requirement at
    /// one stop).
    pub max_sensors_per_pp: usize,
    /// One-round collection time at 1 m/s with zero upload pauses —
    /// numerically equal to the tour length, reported separately for
    /// clarity in tables.
    pub base_latency_secs: f64,
}

impl PlanMetrics {
    /// Computes metrics for `plan` over the deployment's sensor positions.
    pub fn of(plan: &GatheringPlan, sensors: &[Point]) -> PlanMetrics {
        let uploads = plan.upload_distances(sensors);
        let s = Summary::of(&uploads);
        let n_pp = plan.n_polling_points();
        PlanMetrics {
            tour_length: plan.tour_length,
            n_polling_points: n_pp,
            n_sensors: plan.n_sensors(),
            mean_upload_dist: s.mean,
            max_upload_dist: s.max.max(0.0),
            mean_sensors_per_pp: if n_pp == 0 {
                0.0
            } else {
                plan.n_sensors() as f64 / n_pp as f64
            },
            max_sensors_per_pp: plan.max_sensors_per_pp(),
            base_latency_secs: plan.tour_length,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PollingPoint;

    #[test]
    fn metrics_of_simple_plan() {
        let sensors = vec![
            Point::new(0.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(50.0, 0.0),
        ];
        let pps = vec![
            PollingPoint {
                pos: Point::new(0.0, 0.0),
                candidate: 0,
                covered: vec![0, 1],
            },
            PollingPoint {
                pos: Point::new(50.0, 0.0),
                candidate: 2,
                covered: vec![2],
            },
        ];
        let plan = GatheringPlan::new(Point::new(25.0, 0.0), pps, vec![0, 0, 1]);
        let m = PlanMetrics::of(&plan, &sensors);
        assert_eq!(m.n_polling_points, 2);
        assert_eq!(m.n_sensors, 3);
        assert!((m.mean_upload_dist - 2.0).abs() < 1e-12, "(0 + 6 + 0) / 3");
        assert!((m.max_upload_dist - 6.0).abs() < 1e-12);
        assert!((m.mean_sensors_per_pp - 1.5).abs() < 1e-12);
        assert_eq!(m.max_sensors_per_pp, 2);
        assert!(
            (m.tour_length - 100.0).abs() < 1e-9,
            "25→0→50→25 visits both ends"
        );
        assert_eq!(m.base_latency_secs, m.tour_length);
    }

    #[test]
    fn metrics_of_empty_plan() {
        let plan = GatheringPlan::new(Point::ORIGIN, vec![], vec![]);
        let m = PlanMetrics::of(&plan, &[]);
        assert_eq!(m.n_polling_points, 0);
        assert_eq!(m.mean_sensors_per_pp, 0.0);
        assert_eq!(m.max_upload_dist, 0.0);
        assert_eq!(m.tour_length, 0.0);
    }
}
