//! The SHDG heuristic planner.

use crate::error::PlanError;
use crate::plan::{GatheringPlan, PollingPoint};
use crate::tour_aware::{tour_aware_cover, TourAwareConfig};
use mdg_cover::{greedy_cover, prune_cover, CoverageInstance};
use mdg_geom::Point;
use mdg_net::Network;
use mdg_tour::{improve, ImproveConfig, MatrixCost};
use serde::{Deserialize, Serialize};

/// Where candidate polling points come from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CandidateMode {
    /// Candidates are the sensor positions themselves (the paper's
    /// default: the collector pauses at a sensor and collects from it and
    /// its radio neighbors). Always feasible.
    SensorSites,
    /// Candidates are lattice points with the given spacing over the
    /// field ("predefined positions" on a grid). May be infeasible if the
    /// spacing exceeds `√2 · range`.
    Grid {
        /// Lattice spacing in meters.
        spacing: f64,
    },
}

/// How the cover is selected.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CoveringStrategy {
    /// Classic greedy max-coverage, ties broken toward the sink.
    Greedy,
    /// Tour-aware greedy: maximize coverage per meter of tour insertion
    /// cost (the planner default; see [`crate::tour_aware`]).
    TourAware {
        /// Weight of the insertion cost (0 = plain greedy).
        insertion_weight: f64,
    },
}

/// Planner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Candidate generation mode.
    pub candidates: CandidateMode,
    /// Covering strategy.
    pub covering: CoveringStrategy,
    /// Whether to reverse-delete polling points made redundant by later
    /// selections, prioritized by their actual tour detour cost.
    pub prune: bool,
    /// Maximum local-search passes for tour polishing (0 disables
    /// improvement entirely).
    pub improve_passes: usize,
    /// Buffer bound: the maximum number of sensors any single polling
    /// point may serve (`None` = unbounded). When set, the planner uses
    /// capacitated covering and a capacity-respecting assignment; pruning
    /// is skipped (the capacitated selection is already assignment-tight).
    pub max_sensors_per_pp: Option<usize>,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            candidates: CandidateMode::SensorSites,
            covering: CoveringStrategy::TourAware {
                insertion_weight: 1.0,
            },
            prune: true,
            improve_passes: 64,
            max_sensors_per_pp: None,
        }
    }
}

/// The SHDG heuristic planner. See the crate docs for the pipeline.
///
/// ```
/// use mdg_core::ShdgPlanner;
/// use mdg_net::{DeploymentConfig, Network};
///
/// let net = Network::build(DeploymentConfig::uniform(100, 200.0).generate(42), 30.0);
/// let plan = ShdgPlanner::new().plan(&net).unwrap();
/// assert!(plan.n_polling_points() < net.n_sensors(), "polling points aggregate");
/// assert!(plan.validate(&net.deployment.sensors, net.range).is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ShdgPlanner {
    config: PlannerConfig,
}

impl ShdgPlanner {
    /// Planner with the default configuration (sensor-site candidates,
    /// tour-aware covering, pruning, full tour polishing).
    pub fn new() -> Self {
        ShdgPlanner::default()
    }

    /// Planner with an explicit configuration.
    pub fn with_config(config: PlannerConfig) -> Self {
        ShdgPlanner { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Builds the coverage instance for `net` per the candidate mode.
    pub fn coverage_instance(&self, net: &Network) -> CoverageInstance {
        match self.config.candidates {
            CandidateMode::SensorSites => {
                CoverageInstance::sensor_sites(&net.deployment.sensors, net.range)
            }
            CandidateMode::Grid { spacing } => CoverageInstance::grid_candidates(
                &net.deployment.sensors,
                &net.deployment.field,
                spacing,
                net.range,
            ),
        }
    }

    /// Plans a single-collector data-gathering tour for `net`.
    pub fn plan(&self, net: &Network) -> Result<GatheringPlan, PlanError> {
        let mut sp_plan = mdg_obs::span("plan");
        sp_plan.add_items(net.n_sensors() as u64);
        let inst = {
            let _sp = mdg_obs::span("instance");
            self.coverage_instance(net)
        };
        let sink = net.deployment.sink;
        if net.n_sensors() == 0 {
            return Ok(GatheringPlan::new(sink, Vec::new(), Vec::new()));
        }
        let uncoverable = inst.uncoverable_targets();
        if !uncoverable.is_empty() {
            return Err(PlanError::Uncoverable(uncoverable));
        }

        // Buffer-bounded mode: capacitated covering carries its own
        // assignment, so it short-circuits the uncapacitated pipeline.
        if let Some(cap) = self.config.max_sensors_per_pp {
            return Ok(self.plan_capacitated(&inst, sink, cap));
        }

        // 1. Cover.
        let mut selected = {
            let mut sp = mdg_obs::span("cover");
            sp.add_items(inst.candidates.len() as u64);
            match self.config.covering {
                CoveringStrategy::Greedy => {
                    greedy_cover(&inst, |c| inst.candidates[c].pos.dist_sq(sink))
                        .expect("feasibility checked above")
                }
                CoveringStrategy::TourAware { insertion_weight } => {
                    let cfg = TourAwareConfig {
                        insertion_weight,
                        ..TourAwareConfig::default()
                    };
                    tour_aware_cover(&inst, sink, &cfg)
                        .expect("feasibility checked above")
                        .selected
                }
            }
        };

        // 2. Prune redundant polling points, most-detour-costly first. The
        //    detour priority is each point's out-and-back from a
        //    preliminary tour; using the removal gain of the final tour
        //    would be circular.
        if self.config.prune && selected.len() > 1 {
            let _sp = mdg_obs::span("prune");
            let prelim = self.tour_over(&inst, sink, &selected, 0);
            let detour: Vec<f64> = removal_gains(&prelim);
            // Map candidate -> its detour in the preliminary tour order.
            let order_of: std::collections::HashMap<usize, usize> =
                prelim.1.iter().enumerate().map(|(k, &c)| (c, k)).collect();
            selected = prune_cover(&inst, &selected, |c| {
                order_of.get(&c).map_or(0.0, |&k| detour[k])
            });
        }

        // 3. Final tour.
        let (tour_pts, tour_cands) = {
            let mut sp = mdg_obs::span("tour");
            sp.add_items(selected.len() as u64);
            self.tour_over(&inst, sink, &selected, self.config.improve_passes)
        };

        // 4. Assign sensors to their nearest polling point in tour order.
        let assignment_sel = {
            let _sp = mdg_obs::span("assign");
            inst.assign(&tour_cands).expect("selection is a cover")
        };
        let mut covered: Vec<Vec<u32>> = vec![Vec::new(); tour_cands.len()];
        for (s, &k) in assignment_sel.iter().enumerate() {
            covered[k].push(s as u32);
        }
        let polling_points: Vec<PollingPoint> = tour_cands
            .iter()
            .zip(covered)
            .map(|(&c, cov)| PollingPoint {
                pos: inst.candidates[c].pos,
                candidate: c,
                covered: cov,
            })
            .collect();

        let plan = GatheringPlan::new(sink, polling_points, assignment_sel);
        debug_assert!((plan.tour_length - mdg_geom::closed_tour_length(&tour_pts)).abs() < 1e-6);
        Ok(plan)
    }

    /// Capacity-bounded planning: capacitated greedy covering (ties toward
    /// the sink), polished tour, and the covering's own capacity-feasible
    /// assignment remapped into tour order.
    fn plan_capacitated(&self, inst: &CoverageInstance, sink: Point, cap: usize) -> GatheringPlan {
        let cover = mdg_cover::capacitated_greedy_cover(inst, cap, |c| {
            inst.candidates[c].pos.dist_sq(sink)
        })
        .expect("feasibility checked by caller");
        let (tour_pts, tour_cands) =
            self.tour_over(inst, sink, &cover.selected, self.config.improve_passes);
        // Remap: cover.assignment points into `selected`; the plan wants
        // indices into the tour-ordered polling points.
        let sel_to_tour: std::collections::HashMap<usize, usize> = tour_cands
            .iter()
            .enumerate()
            .map(|(tour_idx, &cand)| (cand, tour_idx))
            .collect();
        let assignment: Vec<usize> = cover
            .assignment
            .iter()
            .map(|&k| sel_to_tour[&cover.selected[k]])
            .collect();
        let mut covered: Vec<Vec<u32>> = vec![Vec::new(); tour_cands.len()];
        for (s, &k) in assignment.iter().enumerate() {
            covered[k].push(s as u32);
        }
        let polling_points: Vec<PollingPoint> = tour_cands
            .iter()
            .zip(covered)
            .map(|(&c, cov)| PollingPoint {
                pos: inst.candidates[c].pos,
                candidate: c,
                covered: cov,
            })
            .collect();
        let plan = GatheringPlan::new(sink, polling_points, assignment);
        debug_assert!((plan.tour_length - mdg_geom::closed_tour_length(&tour_pts)).abs() < 1e-6);
        plan
    }

    /// Plans a polished closed tour over `sink` + the selected candidates.
    /// Returns tour positions (sink first) and the candidate ids in tour
    /// order.
    ///
    /// Up to [`DENSE_TOUR_LIMIT`] stops this runs cheapest insertion plus
    /// the dense 2-opt/Or-opt polish over a precomputed cost matrix;
    /// beyond it the matrix (`O(stops²)` memory) and the quadratic dense
    /// sweeps give way to on-the-fly Euclidean costs and neighbor-list
    /// local search, which is how 100k-sensor fields stay plannable.
    fn tour_over(
        &self,
        inst: &CoverageInstance,
        sink: Point,
        selected: &[usize],
        improve_passes: usize,
    ) -> (Vec<Point>, Vec<usize>) {
        /// Stop count (including the sink) above which the planner
        /// switches to the sparse tour pipeline.
        const DENSE_TOUR_LIMIT: usize = 512;
        let mut pts = Vec::with_capacity(selected.len() + 1);
        pts.push(sink);
        pts.extend(selected.iter().map(|&c| inst.candidates[c].pos));
        let tour = if pts.len() <= DENSE_TOUR_LIMIT {
            let cost = MatrixCost::from_points(&pts);
            let tour = mdg_tour::cheapest_insertion(&cost);
            if improve_passes > 0 {
                improve(
                    &cost,
                    tour,
                    &ImproveConfig {
                        max_passes: improve_passes,
                        ..ImproveConfig::default()
                    },
                )
            } else {
                tour.normalized()
            }
        } else {
            let cost = mdg_tour::EuclideanCost::new(&pts);
            let tour = mdg_tour::cheapest_insertion(&cost);
            if improve_passes > 0 {
                let nl = mdg_tour::NeighborLists::build(&pts, 10);
                mdg_tour::improve_neighbors(
                    &pts,
                    tour,
                    &ImproveConfig {
                        max_passes: improve_passes,
                        ..ImproveConfig::default()
                    },
                    &nl,
                )
            } else {
                tour.normalized()
            }
        };
        let order = tour.order();
        debug_assert_eq!(order[0], 0, "normalized tours lead with the depot");
        let tour_pts: Vec<Point> = order.iter().map(|&i| pts[i]).collect();
        let tour_cands: Vec<usize> = order[1..].iter().map(|&i| selected[i - 1]).collect();
        (tour_pts, tour_cands)
    }
}

/// For a closed tour given as (positions with sink first, candidate ids for
/// positions 1..), the length saved by removing each non-sink vertex.
fn removal_gains(tour: &(Vec<Point>, Vec<usize>)) -> Vec<f64> {
    let pts = &tour.0;
    let n = pts.len();
    let mut gains = Vec::with_capacity(n.saturating_sub(1));
    for i in 1..n {
        let prev = pts[i - 1];
        let next = pts[(i + 1) % n];
        gains.push(prev.dist(pts[i]) + pts[i].dist(next) - prev.dist(next));
    }
    gains
}

/// Convenience: plan with the default configuration.
pub fn plan_default(net: &Network) -> Result<GatheringPlan, PlanError> {
    ShdgPlanner::new().plan(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdg_net::DeploymentConfig;

    fn net(n: usize, side: f64, range: f64, seed: u64) -> Network {
        Network::build(DeploymentConfig::uniform(n, side).generate(seed), range)
    }

    #[test]
    fn default_plan_is_valid() {
        let net = net(120, 200.0, 30.0, 1);
        let plan = ShdgPlanner::new().plan(&net).unwrap();
        plan.validate(&net.deployment.sensors, net.range).unwrap();
        assert!(plan.n_polling_points() > 0);
        assert!(
            plan.n_polling_points() < net.n_sensors(),
            "polling points must aggregate"
        );
        assert!(plan.tour_length > 0.0);
    }

    #[test]
    fn plan_is_deterministic() {
        let net = net(80, 200.0, 30.0, 7);
        let a = ShdgPlanner::new().plan(&net).unwrap();
        let b = ShdgPlanner::new().plan(&net).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn all_strategies_produce_valid_plans() {
        let net = net(100, 150.0, 25.0, 3);
        for covering in [
            CoveringStrategy::Greedy,
            CoveringStrategy::TourAware {
                insertion_weight: 1.0,
            },
            CoveringStrategy::TourAware {
                insertion_weight: 0.0,
            },
        ] {
            for prune in [false, true] {
                let cfg = PlannerConfig {
                    covering,
                    prune,
                    ..PlannerConfig::default()
                };
                let plan = ShdgPlanner::with_config(cfg).plan(&net).unwrap();
                plan.validate(&net.deployment.sensors, net.range).unwrap();
            }
        }
    }

    #[test]
    fn grid_candidates_work_with_fine_spacing() {
        let net = net(60, 100.0, 25.0, 5);
        let cfg = PlannerConfig {
            candidates: CandidateMode::Grid { spacing: 15.0 },
            ..PlannerConfig::default()
        };
        let plan = ShdgPlanner::with_config(cfg).plan(&net).unwrap();
        plan.validate(&net.deployment.sensors, net.range).unwrap();
    }

    #[test]
    fn grid_candidates_report_uncoverable() {
        let net = net(10, 300.0, 10.0, 2);
        let cfg = PlannerConfig {
            candidates: CandidateMode::Grid { spacing: 100.0 },
            ..PlannerConfig::default()
        };
        match ShdgPlanner::with_config(cfg).plan(&net) {
            Err(PlanError::Uncoverable(ids)) => assert!(!ids.is_empty()),
            other => panic!("expected Uncoverable, got {other:?}"),
        }
    }

    #[test]
    fn improvement_shortens_or_matches() {
        let net = net(150, 250.0, 30.0, 11);
        let raw = ShdgPlanner::with_config(PlannerConfig {
            improve_passes: 0,
            ..PlannerConfig::default()
        })
        .plan(&net)
        .unwrap();
        let polished = ShdgPlanner::new().plan(&net).unwrap();
        assert!(polished.tour_length <= raw.tour_length + 1e-6);
    }

    #[test]
    fn pruning_never_increases_polling_points() {
        for seed in 0..5 {
            let net = net(100, 200.0, 30.0, seed);
            let with = ShdgPlanner::with_config(PlannerConfig {
                prune: true,
                ..PlannerConfig::default()
            })
            .plan(&net)
            .unwrap();
            let without = ShdgPlanner::with_config(PlannerConfig {
                prune: false,
                ..PlannerConfig::default()
            })
            .plan(&net)
            .unwrap();
            assert!(
                with.n_polling_points() <= without.n_polling_points(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn single_sensor_plan() {
        let net = net(1, 100.0, 20.0, 0);
        let plan = ShdgPlanner::new().plan(&net).unwrap();
        assert_eq!(plan.n_polling_points(), 1);
        assert_eq!(plan.assignment, vec![0]);
        // Tour = sink → sensor → sink.
        let d = net.deployment.sink.dist(net.deployment.sensors[0]);
        assert!((plan.tour_length - 2.0 * d).abs() < 1e-9);
    }

    #[test]
    fn empty_network_plan() {
        let net = net(0, 100.0, 20.0, 0);
        let plan = ShdgPlanner::new().plan(&net).unwrap();
        assert_eq!(plan.n_polling_points(), 0);
        assert_eq!(plan.tour_length, 0.0);
    }

    #[test]
    fn disconnected_network_is_still_planned() {
        use mdg_net::{SinkPlacement, Topology};
        let cfg = DeploymentConfig {
            field_side: 300.0,
            sink: SinkPlacement::Center,
            topology: Topology::Corridors {
                bands: 3,
                per_band: 30,
                band_height: 15.0,
            },
        };
        let net = Network::build(cfg.generate(4), 30.0);
        assert!(!net.is_connected());
        let plan = ShdgPlanner::new().plan(&net).unwrap();
        plan.validate(&net.deployment.sensors, net.range).unwrap();
        assert_eq!(
            plan.n_sensors(),
            90,
            "mobile collection serves disconnected fields"
        );
    }

    #[test]
    fn larger_range_means_fewer_polling_points() {
        let base = DeploymentConfig::uniform(200, 200.0).generate(9);
        let small = ShdgPlanner::new()
            .plan(&Network::build(base.clone(), 20.0))
            .unwrap();
        let large = ShdgPlanner::new()
            .plan(&Network::build(base, 45.0))
            .unwrap();
        assert!(large.n_polling_points() < small.n_polling_points());
        assert!(large.tour_length < small.tour_length);
    }

    #[test]
    fn capacitated_plans_respect_the_buffer_bound() {
        let net = net(150, 200.0, 30.0, 21);
        for cap in [1usize, 3, 8, 20] {
            let cfg = PlannerConfig {
                max_sensors_per_pp: Some(cap),
                ..PlannerConfig::default()
            };
            let plan = ShdgPlanner::with_config(cfg).plan(&net).unwrap();
            plan.validate(&net.deployment.sensors, net.range).unwrap();
            assert!(
                plan.max_sensors_per_pp() <= cap,
                "cap {cap} violated: {}",
                plan.max_sensors_per_pp()
            );
        }
    }

    #[test]
    fn tighter_buffers_need_more_polling_points() {
        let net = net(200, 200.0, 30.0, 23);
        let plan_with = |cap: Option<usize>| {
            ShdgPlanner::with_config(PlannerConfig {
                max_sensors_per_pp: cap,
                ..PlannerConfig::default()
            })
            .plan(&net)
            .unwrap()
        };
        let unbounded = plan_with(None);
        let cap5 = plan_with(Some(5));
        let cap1 = plan_with(Some(1));
        assert!(cap5.n_polling_points() > unbounded.n_polling_points());
        assert_eq!(
            cap1.n_polling_points(),
            net.n_sensors(),
            "cap 1 degenerates to visit-all"
        );
        // And the tour grows as buffers tighten.
        assert!(cap5.tour_length >= unbounded.tour_length - 1e-6);
        assert!(cap1.tour_length > cap5.tour_length);
    }

    #[test]
    fn capacitated_plan_is_deterministic() {
        let net = net(80, 150.0, 30.0, 29);
        let cfg = PlannerConfig {
            max_sensors_per_pp: Some(6),
            ..PlannerConfig::default()
        };
        let a = ShdgPlanner::with_config(cfg).plan(&net).unwrap();
        let b = ShdgPlanner::with_config(cfg).plan(&net).unwrap();
        assert_eq!(a, b);
    }
}
