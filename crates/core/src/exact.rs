//! Exact SHDGP solving for small instances.
//!
//! Substitutes the paper's CPLEX/ILP optimal baseline. The search exploits
//! a structural fact: by the triangle inequality, some optimal solution's
//! polling-point set is an **inclusion-minimal cover** (a redundant polling
//! point could be dropped, and the tour through fewer points is never
//! longer). The solver therefore enumerates inclusion-minimal covers by
//! branching on the hardest uncovered sensor, lower-bounds each partial
//! selection by the convex-hull perimeter of the already-chosen points plus
//! the sink (hull perimeter ≤ any closed tour through those points, and it
//! is monotone under adding points), and evaluates complete covers exactly
//! with Held–Karp.

use crate::error::PlanError;
use crate::plan::{GatheringPlan, PollingPoint};
use mdg_cover::{BitSet, CoverageInstance};
use mdg_geom::{hull_perimeter, Point};
use mdg_net::Network;
use mdg_tour::{exact::HELD_KARP_MAX, held_karp, MatrixCost};

/// Sensor-count limit for the exact solver (keeps minimal-cover
/// enumeration and Held–Karp tractable).
pub const EXACT_MAX_SENSORS: usize = 18;

/// Search-node budget (safety valve; experiment instances finish well
/// below it).
const NODE_BUDGET: u64 = 5_000_000;

/// Solves SHDGP exactly on a small network with sensor-site candidates.
/// Returns the optimal plan (minimum tour length over all valid
/// polling-point sets).
///
/// # Errors
/// * [`PlanError::TooLargeForExact`] above [`EXACT_MAX_SENSORS`] sensors.
/// * [`PlanError::ExactBudgetExhausted`] if the node budget runs out.
pub fn exact_plan(net: &Network) -> Result<GatheringPlan, PlanError> {
    let n = net.n_sensors();
    if n > EXACT_MAX_SENSORS {
        return Err(PlanError::TooLargeForExact {
            n_sensors: n,
            limit: EXACT_MAX_SENSORS,
        });
    }
    let sink = net.deployment.sink;
    if n == 0 {
        return Ok(GatheringPlan::new(sink, Vec::new(), Vec::new()));
    }
    let inst = CoverageInstance::sensor_sites(&net.deployment.sensors, net.range);

    // Seed the incumbent with the heuristic plan.
    let heuristic = crate::planner::ShdgPlanner::new()
        .plan(net)
        .expect("sensor-site instances are always feasible");
    let mut best_len = heuristic.tour_length;
    let mut best_sel: Vec<usize> = heuristic
        .polling_points
        .iter()
        .map(|pp| pp.candidate)
        .collect();

    // Per-target coverer lists.
    let coverers: Vec<Vec<usize>> = (0..n)
        .map(|t| {
            (0..inst.n_candidates())
                .filter(|&c| inst.candidates[c].covers.get(t))
                .collect()
        })
        .collect();

    struct Search<'a> {
        inst: &'a CoverageInstance,
        sink: Point,
        coverers: &'a [Vec<usize>],
        best_len: f64,
        best_sel: Vec<usize>,
        nodes: u64,
        exhausted: bool,
    }

    impl Search<'_> {
        fn optimal_tour_len(&self, sel: &[usize]) -> f64 {
            let mut pts = Vec::with_capacity(sel.len() + 1);
            pts.push(self.sink);
            pts.extend(sel.iter().map(|&c| self.inst.candidates[c].pos));
            if pts.len() > HELD_KARP_MAX {
                // More polling points than Held–Karp handles can only
                // happen with > HELD_KARP_MAX-1 selections; bound instances
                // keep us below this, but degrade gracefully if not.
                let cost = MatrixCost::from_points(&pts);
                return mdg_tour::plan_tour(&cost).length(&cost);
            }
            let cost = MatrixCost::from_points(&pts);
            held_karp(&cost).1
        }

        fn recurse(&mut self, covered: &BitSet, chosen: &mut Vec<usize>) {
            self.nodes += 1;
            if self.nodes > NODE_BUDGET {
                self.exhausted = true;
                return;
            }
            // Hull lower bound on any tour extending `chosen`.
            let mut pts: Vec<Point> = Vec::with_capacity(chosen.len() + 1);
            pts.push(self.sink);
            pts.extend(chosen.iter().map(|&c| self.inst.candidates[c].pos));
            if hull_perimeter(&pts) >= self.best_len - 1e-12 {
                return;
            }
            let n = self.inst.n_targets();
            if covered.count() == n {
                // Complete cover: check inclusion-minimality to avoid
                // re-evaluating supersets (optimality is preserved; see
                // module docs).
                if is_inclusion_minimal(self.inst, chosen) {
                    let len = self.optimal_tour_len(chosen);
                    if len < self.best_len {
                        self.best_len = len;
                        self.best_sel = chosen.clone();
                    }
                }
                return;
            }
            let target = (0..n)
                .filter(|&t| !covered.get(t))
                .min_by_key(|&t| self.coverers[t].len())
                .expect("uncovered target exists");
            for &c in &self.coverers[target] {
                if self.exhausted {
                    return;
                }
                if chosen.contains(&c) {
                    continue;
                }
                let mut next = covered.clone();
                next.union_with(&self.inst.candidates[c].covers);
                chosen.push(c);
                self.recurse(&next, chosen);
                chosen.pop();
            }
        }
    }

    let mut search = Search {
        inst: &inst,
        sink,
        coverers: &coverers,
        best_len,
        best_sel: std::mem::take(&mut best_sel),
        nodes: 0,
        exhausted: false,
    };
    search.recurse(&BitSet::new(n), &mut Vec::new());
    if search.exhausted {
        return Err(PlanError::ExactBudgetExhausted);
    }
    best_len = search.best_len;
    let sel = search.best_sel;

    // Materialize the optimal plan: exact tour order + nearest assignment.
    let mut pts = Vec::with_capacity(sel.len() + 1);
    pts.push(sink);
    pts.extend(sel.iter().map(|&c| inst.candidates[c].pos));
    let cost = MatrixCost::from_points(&pts);
    let tour = if pts.len() <= HELD_KARP_MAX {
        held_karp(&cost).0
    } else {
        mdg_tour::plan_tour(&cost)
    };
    let order = tour.order();
    debug_assert_eq!(order[0], 0);
    let tour_cands: Vec<usize> = order[1..].iter().map(|&i| sel[i - 1]).collect();
    let assignment = inst.assign(&tour_cands).expect("selection is a cover");
    let mut covered_lists: Vec<Vec<u32>> = vec![Vec::new(); tour_cands.len()];
    for (s, &k) in assignment.iter().enumerate() {
        covered_lists[k].push(s as u32);
    }
    let polling_points = tour_cands
        .iter()
        .zip(covered_lists)
        .map(|(&c, cov)| PollingPoint {
            pos: inst.candidates[c].pos,
            candidate: c,
            covered: cov,
        })
        .collect();
    let plan = GatheringPlan::new(sink, polling_points, assignment);
    debug_assert!((plan.tour_length - best_len).abs() < 1e-6);
    Ok(plan)
}

/// Returns `true` if no member of `sel` is redundant (each uniquely covers
/// some target).
fn is_inclusion_minimal(inst: &CoverageInstance, sel: &[usize]) -> bool {
    let n = inst.n_targets();
    let mut count = vec![0u32; n];
    for &c in sel {
        for t in inst.candidates[c].covers.iter_ones() {
            count[t] += 1;
        }
    }
    sel.iter()
        .all(|&c| inst.candidates[c].covers.iter_ones().any(|t| count[t] == 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::ShdgPlanner;
    use mdg_net::DeploymentConfig;

    fn net(n: usize, side: f64, range: f64, seed: u64) -> Network {
        Network::build(DeploymentConfig::uniform(n, side).generate(seed), range)
    }

    #[test]
    fn exact_never_worse_than_heuristic() {
        for seed in 0..8 {
            let net = net(12, 80.0, 25.0, seed);
            let exact = exact_plan(&net).unwrap();
            let heur = ShdgPlanner::new().plan(&net).unwrap();
            exact.validate(&net.deployment.sensors, net.range).unwrap();
            assert!(
                exact.tour_length <= heur.tour_length + 1e-6,
                "seed {seed}: exact {} > heuristic {}",
                exact.tour_length,
                heur.tour_length
            );
        }
    }

    #[test]
    fn exact_beats_or_equals_brute_force_over_covers() {
        // On very small instances, compare against every subset of sensors
        // that is a cover, each evaluated with Held–Karp.
        for seed in [0u64, 3, 5] {
            let net = net(8, 70.0, 25.0, seed);
            let inst = CoverageInstance::sensor_sites(&net.deployment.sensors, net.range);
            let sink = net.deployment.sink;
            let mut brute = f64::INFINITY;
            let m = inst.n_candidates();
            for mask in 1u32..(1 << m) {
                let sel: Vec<usize> = (0..m).filter(|&c| mask & (1 << c) != 0).collect();
                if !inst.is_cover(&sel) {
                    continue;
                }
                let mut pts = vec![sink];
                pts.extend(sel.iter().map(|&c| inst.candidates[c].pos));
                let cost = MatrixCost::from_points(&pts);
                let (_, len) = held_karp(&cost);
                brute = brute.min(len);
            }
            let exact = exact_plan(&net).unwrap();
            assert!(
                (exact.tour_length - brute).abs() < 1e-6,
                "seed {seed}: exact {} vs brute {}",
                exact.tour_length,
                brute
            );
        }
    }

    #[test]
    fn single_sensor_exact() {
        let net = net(1, 60.0, 20.0, 1);
        let plan = exact_plan(&net).unwrap();
        let d = net.deployment.sink.dist(net.deployment.sensors[0]);
        assert!((plan.tour_length - 2.0 * d).abs() < 1e-9);
    }

    #[test]
    fn empty_network_exact() {
        let net = net(0, 60.0, 20.0, 1);
        let plan = exact_plan(&net).unwrap();
        assert_eq!(plan.tour_length, 0.0);
    }

    #[test]
    fn too_large_is_rejected() {
        let net = net(EXACT_MAX_SENSORS + 1, 100.0, 20.0, 1);
        match exact_plan(&net) {
            Err(PlanError::TooLargeForExact { n_sensors, limit }) => {
                assert_eq!(n_sensors, EXACT_MAX_SENSORS + 1);
                assert_eq!(limit, EXACT_MAX_SENSORS);
            }
            other => panic!("expected TooLargeForExact, got {other:?}"),
        }
    }

    #[test]
    fn minimality_check() {
        let sensors: Vec<Point> = [0.0, 10.0, 20.0]
            .iter()
            .map(|&x| Point::new(x, 0.0))
            .collect();
        let inst = CoverageInstance::sensor_sites(&sensors, 12.0);
        assert!(is_inclusion_minimal(&inst, &[1]));
        assert!(
            !is_inclusion_minimal(&inst, &[0, 1]),
            "0 is redundant given 1"
        );
        assert!(is_inclusion_minimal(&inst, &[0, 2]));
    }
}
