//! # mdg-core — single-hop mobile data gathering (SHDG) planning
//!
//! The primary contribution of *"Data gathering in wireless sensor networks
//! with mobile collectors"* (Ma & Yang, IPDPS 2008), reproduced as a
//! library: plan the tour of a mobile collector (an *M-collector*) that
//! starts at the static data sink, pauses at a set of **polling points**,
//! collects data from every sensor via **single-hop** uploads, and returns
//! to the sink.
//!
//! ## The SHDG problem
//!
//! Choose polling points such that every sensor is within transmission
//! range of at least one of them, and find the minimum-length closed tour
//! through the sink and all chosen points. The problem couples set cover
//! with the TSP and is NP-hard (reduction from TSP: shrink the range until
//! every sensor must be visited individually).
//!
//! ## What this crate provides
//!
//! * [`ShdgPlanner`] — the heuristic planner: greedy or **tour-aware**
//!   covering, redundancy pruning against the actual tour, and 2-opt/Or-opt
//!   tour polishing. Produces a [`GatheringPlan`].
//! * [`hier::HierPlanner`] — the hierarchical tiled planner for very
//!   large fields: tile the field, run the flat pipeline per tile in
//!   parallel, stitch the sub-tours, and polish the seams. Plans
//!   million-sensor fields that the flat planner cannot reach.
//! * [`exact`] — an exact SHDGP solver for small instances (enumerates
//!   inclusion-minimal covers with a convex-hull tour lower bound, solving
//!   each tour with Held–Karp), substituting the paper's CPLEX baseline.
//! * [`fleet`] — the multi-collector extension: split the plan into
//!   sub-tours to meet a data-gathering deadline, minimizing the number of
//!   collectors; plus an angular-partition alternative used as an ablation.
//! * [`metrics`] — per-plan statistics feeding the experiment harness.

pub mod error;
pub mod exact;
pub mod fleet;
pub mod hier;
pub mod ilp;
pub mod metrics;
pub mod mutate;
pub mod plan;
pub mod planner;
pub mod tour_aware;

pub use error::PlanError;
pub use exact::exact_plan;
pub use fleet::{
    plan_fleet, plan_fleet_angular, plan_fleet_best, plan_fleet_for_deadline, plan_fleet_hier,
    plan_fleet_streamed, CollectorTour, FleetPlan,
};
pub use hier::{plan_hier, HierConfig, HierDeltaReport, HierPlan, HierPlanner, HierStats};
pub use ilp::{check_plan_against_ilp, IlpInstance};
pub use metrics::PlanMetrics;
pub use mutate::UNASSIGNED;
pub use plan::{GatheringPlan, PollingPoint};
pub use planner::{plan_default, CandidateMode, CoveringStrategy, PlannerConfig, ShdgPlanner};
pub use tour_aware::{
    tour_aware_cover, tour_aware_cover_reference, TourAwareConfig, TourAwareCover,
};
