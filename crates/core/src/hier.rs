//! Hierarchical (tiled) SHDG planning for very large fields.
//!
//! The flat planner's covering stage is superlinear in the sensor count —
//! the coverage instance alone is `O(n²)` bits — which walls it off
//! somewhere past 100k sensors. The standard escape hatch in the
//! mobile-sink literature is spatial decomposition: partition the field
//! geometrically, solve each region as an independent sub-problem, and
//! join the regional tours. This module implements that pipeline:
//!
//! 1. **Tiling** — [`mdg_geom::Tiling`] buckets the sensors into square
//!    tiles sized so each holds roughly [`HierConfig::target_per_tile`]
//!    sensors (or explicitly via [`HierConfig::tile_cells`]).
//! 2. **Per-tile planning** — every non-empty tile runs the flat
//!    pipeline (cover → prune → tour) on a *tile-local* sensor-site
//!    instance, in parallel across tiles on `mdg-par`. Costs are
//!    quadratic in the tile, not the field.
//! 3. **Stitching** — sub-tours are concatenated in serpentine tile
//!    order: each is opened at its longest edge and oriented to shorten
//!    the seam; tiles with fewer than three stops are spliced into the
//!    growing cycle via [`mdg_tour::cheapest_insertion_position`].
//! 4. **Touch-up** — a candidate-list 2-opt seeded *only at the seam
//!    vertices* ([`mdg_tour::two_opt_neighbors_seeded`]) repairs
//!    cross-tile crossings at a cost proportional to the seams.
//!
//! ## Determinism
//!
//! Hierarchical plans are bit-identical at any thread count. The tile
//! fan-out uses the order-preserving `mdg_par::par_map`, nested parallel
//! calls inside a tile fall back inline (so per-tile arithmetic never
//! depends on sibling tiles), and stitching consumes the tile results in
//! serpentine (index-derived) order with strict-inequality tie-breaks.
//!
//! ## Quality
//!
//! The price of locality is a slightly longer tour: each tile is toured
//! in isolation, so only the seams are globally optimized. The S5 sweep
//! (`BENCH_scale_hier.json`) gates the regression at ≤ 1.25× the flat
//! tour on fields both planners can solve.

use crate::error::PlanError;
use crate::plan::{GatheringPlan, PollingPoint};
use crate::planner::{CandidateMode, CoveringStrategy, PlannerConfig};
use crate::tour_aware::{tour_aware_cover, TourAwareConfig};
use mdg_cover::{capacitated_greedy_cover, greedy_cover, prune_cover, CoverageInstance};
use mdg_geom::{Point, Tiling};
use mdg_net::Network;
use mdg_tour::{
    cheapest_insertion_position, improve, improve_neighbors, two_opt_neighbors_seeded,
    ImproveConfig, MatrixCost, NeighborLists, Tour,
};

/// Stop count (including the sink) above which a tile's tour switches
/// from the dense matrix pipeline to neighbor-list local search — same
/// threshold as the flat planner.
const DENSE_TOUR_LIMIT: usize = 512;

/// Neighbors per city in the seam touch-up's candidate lists. Seam
/// repairs are local, so a short list suffices.
const TOUCH_UP_NEIGHBORS: usize = 8;

/// Hierarchical planner configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierConfig {
    /// Per-tile planning configuration. `candidates` must be
    /// [`CandidateMode::SensorSites`]; tile instances are sensor-site by
    /// construction, which also guarantees per-tile feasibility.
    pub base: PlannerConfig,
    /// Explicit tile side, in multiples of the transmission range
    /// (`Some(8.0)` with a 30 m range gives 240 m tiles). `None` sizes
    /// tiles automatically from the field density so each holds about
    /// [`HierConfig::target_per_tile`] sensors.
    pub tile_cells: Option<f64>,
    /// Auto-sizing target: sensors per tile. Small enough that a tile
    /// plans in milliseconds, large enough that seams are rare.
    pub target_per_tile: usize,
    /// Run the seam-seeded 2-opt touch-up after stitching.
    pub touch_up: bool,
}

impl Default for HierConfig {
    fn default() -> Self {
        HierConfig {
            base: PlannerConfig::default(),
            tile_cells: None,
            target_per_tile: 2048,
            touch_up: true,
        }
    }
}

/// How a hierarchical plan came together, for logs and benches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierStats {
    /// Total tiles in the lattice (including empty ones).
    pub n_tiles: usize,
    /// Tiles that contained at least one sensor (and thus a sub-plan).
    pub n_occupied: usize,
    /// Stops from degenerate (< 3 stop) tiles spliced individually.
    pub spliced_stops: usize,
    /// Effective tile side in meters.
    pub tile_side: f64,
}

/// The hierarchical tiled planner. See the module docs for the pipeline.
///
/// ```
/// use mdg_core::hier::HierPlanner;
/// use mdg_net::{DeploymentConfig, Network};
///
/// let net = Network::build(DeploymentConfig::uniform(400, 400.0).generate(7), 30.0);
/// let plan = HierPlanner::new().plan(&net).unwrap();
/// assert!(plan.validate(&net.deployment.sensors, net.range).is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct HierPlanner {
    config: HierConfig,
}

/// A planned tile: its stops in cycle order plus the assignment choices,
/// all in *global* sensor ids.
struct TilePlan {
    /// Stop positions, cycle order.
    stops: Vec<Point>,
    /// Global sensor id of each stop, parallel to `stops`.
    cands: Vec<u32>,
    /// For each tile sensor (subset order): global sensor id of the stop
    /// it uploads to.
    chosen: Vec<u32>,
}

impl HierPlanner {
    /// Planner with the default configuration.
    pub fn new() -> Self {
        HierPlanner::default()
    }

    /// Planner with an explicit configuration.
    pub fn with_config(config: HierConfig) -> Self {
        HierPlanner { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &HierConfig {
        &self.config
    }

    /// Plans a single-collector gathering tour hierarchically.
    pub fn plan(&self, net: &Network) -> Result<GatheringPlan, PlanError> {
        self.plan_with_stats(net).map(|(plan, _)| plan)
    }

    /// Like [`HierPlanner::plan`], also reporting tiling statistics.
    pub fn plan_with_stats(&self, net: &Network) -> Result<(GatheringPlan, HierStats), PlanError> {
        let cfg = &self.config;
        if let CandidateMode::Grid { .. } = cfg.base.candidates {
            return Err(PlanError::Unsupported(
                "hierarchical planning requires sensor-site candidates \
                 (per-tile instances are sensor-site by construction)"
                    .into(),
            ));
        }
        let sensors = &net.deployment.sensors;
        let sink = net.deployment.sink;
        let range = net.range;
        let n = sensors.len();
        let mut sp_hier = mdg_obs::span("hier");
        sp_hier.add_items(n as u64);
        if n == 0 {
            let stats = HierStats {
                n_tiles: 0,
                n_occupied: 0,
                spliced_stops: 0,
                tile_side: 0.0,
            };
            return Ok((GatheringPlan::new(sink, Vec::new(), Vec::new()), stats));
        }

        // 1. Tiling.
        let side = self.tile_side(sensors, range)?;
        let (tiling, tiles) = {
            let _sp = mdg_obs::span("tiling");
            let tiling = Tiling::build(sensors, side);
            let tiles: Vec<usize> = tiling.non_empty().collect();
            (tiling, tiles)
        };
        mdg_obs::counter("hier/tiles").add(tiles.len() as u64);

        // 2. Per-tile planning, fanned out across tiles. Each tile is a
        //    pure function of its own sensors; `par_map` preserves order
        //    and nested parallel calls inside a tile run inline, so the
        //    result vector is bit-identical at any thread count.
        let tile_plans: Vec<TilePlan> = {
            let mut sp = mdg_obs::span("tiles");
            sp.add_items(tiles.len() as u64);
            let base = cfg.base;
            mdg_par::par_map(tiles.len(), |k| {
                let t = tiles[k];
                plan_tile(
                    sensors,
                    tiling.points_in(t),
                    range,
                    tiling.tile_center(t),
                    &base,
                )
            })
        };

        // Assignment choices scatter into a field-wide table (tiles
        // partition the sensors, so each slot is written exactly once).
        let mut chosen = vec![u32::MAX; n];
        for (k, tp) in tile_plans.iter().enumerate() {
            for (i, &g) in tiling.points_in(tiles[k]).iter().enumerate() {
                chosen[g as usize] = tp.chosen[i];
            }
        }

        // 3. Stitch sub-tours into one depot-anchored cycle.
        let (mut cycle_pts, mut cands, seam, spliced) = {
            let _sp = mdg_obs::span("stitch");
            stitch(sink, &tile_plans)
        };
        mdg_obs::counter("hier/spliced_stops").add(spliced as u64);

        // 4. Seam-seeded 2-opt touch-up: only cross-tile edges (and what
        //    repairing them exposes) are revisited.
        if cfg.touch_up && cfg.base.improve_passes > 0 && cycle_pts.len() >= 5 {
            let mut sp = mdg_obs::span("touch_up");
            sp.add_items(cycle_pts.len() as u64);
            let nl = NeighborLists::build(&cycle_pts, TOUCH_UP_NEIGHBORS);
            let mut seeds: Vec<usize> = vec![0]; // the sink joins two seams
            seeds.extend(
                seam.iter()
                    .enumerate()
                    .filter_map(|(k, &s)| s.then_some(k + 1)),
            );
            let tour = two_opt_neighbors_seeded(
                &cycle_pts,
                Tour::identity(cycle_pts.len()),
                &nl,
                1e-9,
                &seeds,
            );
            let order = tour.order();
            debug_assert_eq!(order[0], 0, "normalized tours lead with the depot");
            cycle_pts = order.iter().map(|&i| cycle_pts[i]).collect();
            cands = order[1..].iter().map(|&i| cands[i - 1]).collect();
        }

        // 5. Final assignment: map each sensor's chosen stop to its tour
        //    position and materialize the plan.
        let plan = {
            let _sp = mdg_obs::span("assign");
            let mut pp_of = vec![u32::MAX; n];
            for (k, &c) in cands.iter().enumerate() {
                pp_of[c as usize] = k as u32;
            }
            let assignment: Vec<usize> =
                chosen.iter().map(|&c| pp_of[c as usize] as usize).collect();
            let mut covered: Vec<Vec<u32>> = vec![Vec::new(); cands.len()];
            for (s, &k) in assignment.iter().enumerate() {
                covered[k].push(s as u32);
            }
            let polling_points: Vec<PollingPoint> = cands
                .iter()
                .zip(covered)
                .map(|(&c, cov)| PollingPoint {
                    pos: sensors[c as usize],
                    candidate: c as usize,
                    covered: cov,
                })
                .collect();
            GatheringPlan::new(sink, polling_points, assignment)
        };
        let stats = HierStats {
            n_tiles: tiling.n_tiles(),
            n_occupied: tiles.len(),
            spliced_stops: spliced,
            tile_side: tiling.side(),
        };
        debug_assert!((plan.tour_length - mdg_geom::closed_tour_length(&cycle_pts)).abs() < 1e-6);
        Ok((plan, stats))
    }

    /// Resolves the tile side in meters: explicit `tile_cells × range`,
    /// or auto-sized so the expected tile population is
    /// `target_per_tile`. Auto tiles never drop below `2 × range` —
    /// tiles narrower than a coverage disk fragment the cover badly.
    fn tile_side(&self, sensors: &[Point], range: f64) -> Result<f64, PlanError> {
        if let Some(cells) = self.config.tile_cells {
            if !(cells > 0.0 && cells.is_finite()) {
                return Err(PlanError::Unsupported(format!(
                    "tile size must be a positive finite number of range-cells, got {cells}"
                )));
            }
            return Ok(cells * range);
        }
        let bb = mdg_geom::Aabb::from_points(sensors).expect("n > 0 checked by caller");
        let area = (bb.width() * bb.height()).max(1e-12);
        let target = self.config.target_per_tile.max(1) as f64;
        let side = (target * area / sensors.len() as f64).sqrt();
        Ok(side.max(2.0 * range))
    }
}

/// Convenience: hierarchical plan with the default configuration.
pub fn plan_hier(net: &Network) -> Result<GatheringPlan, PlanError> {
    HierPlanner::new().plan(net)
}

/// Plans one tile: local cover → prune → cycle → assignment, mirroring
/// the flat pipeline on a subset instance anchored at the tile center.
fn plan_tile(
    sensors: &[Point],
    subset: &[u32],
    range: f64,
    anchor: Point,
    base: &PlannerConfig,
) -> TilePlan {
    let mut sp = mdg_obs::span("tile");
    sp.add_items(subset.len() as u64);
    let inst = CoverageInstance::sensor_sites_subset(sensors, subset, range);

    // Cover. Sensor-site instances are always feasible (each sensor
    // covers itself), so the selection never fails. Ties break toward
    // the tile center — the local stand-in for the flat planner's sink.
    let (mut selected, cap_assign): (Vec<usize>, Option<Vec<usize>>) =
        if let Some(cap) = base.max_sensors_per_pp {
            let cover =
                capacitated_greedy_cover(&inst, cap, |c| inst.candidates[c].pos.dist_sq(anchor))
                    .expect("sensor-site candidates are always feasible");
            (cover.selected, Some(cover.assignment))
        } else {
            let sel = match base.covering {
                CoveringStrategy::Greedy => {
                    greedy_cover(&inst, |c| inst.candidates[c].pos.dist_sq(anchor))
                        .expect("sensor-site candidates are always feasible")
                }
                CoveringStrategy::TourAware { insertion_weight } => {
                    let cfg = TourAwareConfig {
                        insertion_weight,
                        ..TourAwareConfig::default()
                    };
                    tour_aware_cover(&inst, anchor, &cfg)
                        .expect("sensor-site candidates are always feasible")
                        .selected
                }
            };
            (sel, None)
        };

    // Prune (uncapacitated only, like the flat planner), prioritized by
    // each stop's removal gain in a preliminary tile cycle.
    if cap_assign.is_none() && base.prune && selected.len() > 1 {
        let prelim = cycle_over(&inst, &selected, 0);
        let pts: Vec<Point> = prelim.iter().map(|&c| inst.candidates[c].pos).collect();
        let m = pts.len();
        let order_of: std::collections::HashMap<usize, usize> =
            prelim.iter().enumerate().map(|(k, &c)| (c, k)).collect();
        let gains: Vec<f64> = (0..m)
            .map(|i| {
                let prev = pts[(i + m - 1) % m];
                let next = pts[(i + 1) % m];
                prev.dist(pts[i]) + pts[i].dist(next) - prev.dist(next)
            })
            .collect();
        selected = prune_cover(&inst, &selected, |c| {
            order_of.get(&c).map_or(0.0, |&k| gains[k])
        });
    }

    // Final cycle over the tile's stops.
    let cycle_sel = cycle_over(&inst, &selected, base.improve_passes);

    // Tile-local assignment, remapped to cycle order.
    let assign: Vec<usize> = match cap_assign {
        Some(a) => {
            // `a[t]` indexes the pre-tour selection; the tour reordered it.
            let pos_of: std::collections::HashMap<usize, usize> =
                cycle_sel.iter().enumerate().map(|(k, &c)| (c, k)).collect();
            a.iter().map(|&k| pos_of[&selected[k]]).collect()
        }
        None => inst.assign(&cycle_sel).expect("selection is a cover"),
    };
    TilePlan {
        stops: cycle_sel.iter().map(|&c| inst.candidates[c].pos).collect(),
        cands: cycle_sel.iter().map(|&c| subset[c]).collect(),
        chosen: assign.iter().map(|&k| subset[cycle_sel[k]]).collect(),
    }
}

/// Cycle over the selected tile candidates (no depot), in the same
/// dense/sparse regimes as the flat planner. Returns candidate ids in
/// cycle order, rotated so `selected[0]` leads (deterministic).
fn cycle_over(inst: &CoverageInstance, selected: &[usize], improve_passes: usize) -> Vec<usize> {
    let m = selected.len();
    if m <= 2 {
        return selected.to_vec();
    }
    let pts: Vec<Point> = selected.iter().map(|&c| inst.candidates[c].pos).collect();
    let tour = if m <= DENSE_TOUR_LIMIT {
        let cost = MatrixCost::from_points(&pts);
        let tour = mdg_tour::cheapest_insertion(&cost);
        if improve_passes > 0 {
            improve(
                &cost,
                tour,
                &ImproveConfig {
                    max_passes: improve_passes,
                    ..ImproveConfig::default()
                },
            )
        } else {
            tour.normalized()
        }
    } else {
        let cost = mdg_tour::EuclideanCost::new(&pts);
        let tour = mdg_tour::cheapest_insertion(&cost);
        if improve_passes > 0 {
            let nl = NeighborLists::build(&pts, 10);
            improve_neighbors(
                &pts,
                tour,
                &ImproveConfig {
                    max_passes: improve_passes,
                    ..ImproveConfig::default()
                },
                &nl,
            )
        } else {
            tour.normalized()
        }
    };
    tour.order().iter().map(|&i| selected[i]).collect()
}

/// Concatenates tile sub-tours into one depot-anchored cycle.
///
/// Tiles arrive in serpentine order, so consecutive sub-tours are
/// spatial neighbors. Each sub-tour with ≥ 3 stops is opened at its
/// longest edge (ties: earliest cycle position) and appended in the
/// orientation whose entry point is nearer the current cycle tail
/// (ties: forward). Sub-tours with 1–2 stops are deferred and spliced
/// individually at their cheapest insertion position — an "empty-ish
/// tile" never panics, it just rides the splice path.
///
/// Returns `(cycle positions with sink first, global sensor id per stop,
/// seam flag per stop, spliced stop count)`.
#[allow(clippy::type_complexity)]
fn stitch(sink: Point, tile_plans: &[TilePlan]) -> (Vec<Point>, Vec<u32>, Vec<bool>, usize) {
    let total: usize = tile_plans.iter().map(|tp| tp.stops.len()).sum();
    let mut cycle_pts: Vec<Point> = Vec::with_capacity(total + 1);
    cycle_pts.push(sink);
    let mut cands: Vec<u32> = Vec::with_capacity(total);
    let mut seam: Vec<bool> = Vec::with_capacity(total);
    let mut deferred: Vec<(Point, u32)> = Vec::new();

    for tp in tile_plans {
        let m = tp.stops.len();
        if m == 0 {
            continue;
        }
        if m <= 2 {
            deferred.extend(tp.stops.iter().copied().zip(tp.cands.iter().copied()));
            continue;
        }
        // Open the sub-tour at its longest edge: the cheapest edge to
        // sacrifice for the two seams this tile contributes.
        let mut cut = 0;
        let mut cut_len = tp.stops[0].dist(tp.stops[1 % m]);
        for i in 1..m {
            let len = tp.stops[i].dist(tp.stops[(i + 1) % m]);
            if len > cut_len {
                cut = i;
                cut_len = len;
            }
        }
        let mut path: Vec<usize> = (1..=m).map(|j| (cut + j) % m).collect();
        let tail = *cycle_pts.last().expect("cycle starts with the sink");
        if tail.dist(tp.stops[path[m - 1]]) < tail.dist(tp.stops[path[0]]) {
            path.reverse();
        }
        let start = cands.len();
        for &i in &path {
            cycle_pts.push(tp.stops[i]);
            cands.push(tp.cands[i]);
            seam.push(false);
        }
        seam[start] = true;
        *seam.last_mut().expect("just pushed") = true;
    }

    // Splice the stragglers one by one.
    let spliced = deferred.len();
    for (p, c) in deferred {
        let (idx, _) = cheapest_insertion_position(&cycle_pts, p);
        cycle_pts.insert(idx, p);
        cands.insert(idx - 1, c);
        seam.insert(idx - 1, true);
        // A splice also perturbs the stops it lands between.
        if idx >= 2 {
            seam[idx - 2] = true;
        }
        if idx < seam.len() {
            seam[idx] = true;
        }
    }
    (cycle_pts, cands, seam, spliced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::ShdgPlanner;
    use mdg_net::DeploymentConfig;

    fn net(n: usize, side: f64, seed: u64) -> Network {
        Network::build(DeploymentConfig::uniform(n, side).generate(seed), 30.0)
    }

    #[test]
    fn hier_plan_is_valid_and_covers_everything() {
        let net = net(600, 600.0, 3);
        let (plan, stats) = HierPlanner::with_config(HierConfig {
            tile_cells: Some(6.0), // 180 m tiles → a real multi-tile field
            ..HierConfig::default()
        })
        .plan_with_stats(&net)
        .unwrap();
        plan.validate(&net.deployment.sensors, net.range).unwrap();
        assert!(stats.n_occupied > 1, "field must actually be tiled");
        assert_eq!(plan.assignment.len(), 600);
    }

    #[test]
    fn hier_tracks_flat_quality_on_small_fields() {
        for seed in [1u64, 5, 9] {
            let net = net(500, 500.0, seed);
            let flat = ShdgPlanner::new().plan(&net).unwrap();
            let hier = HierPlanner::with_config(HierConfig {
                tile_cells: Some(5.0),
                ..HierConfig::default()
            })
            .plan(&net)
            .unwrap();
            assert!(
                hier.tour_length <= flat.tour_length * 1.25 + 1e-9,
                "seed {seed}: hier {} vs flat {}",
                hier.tour_length,
                flat.tour_length
            );
        }
    }

    #[test]
    fn single_tile_degenerates_to_near_flat_quality() {
        // Auto sizing on a small field yields one tile; the only
        // structural difference from flat is the tile anchor and the
        // stitched sink, so quality must stay close.
        let net = net(200, 250.0, 11);
        let flat = ShdgPlanner::new().plan(&net).unwrap();
        let (hier, stats) = HierPlanner::new().plan_with_stats(&net).unwrap();
        assert_eq!(stats.n_occupied, 1);
        hier.validate(&net.deployment.sensors, net.range).unwrap();
        assert!(hier.tour_length <= flat.tour_length * 1.25 + 1e-9);
    }

    #[test]
    fn empty_and_tiny_networks() {
        let empty = Network::build(DeploymentConfig::uniform(0, 100.0).generate(1), 30.0);
        let plan = plan_hier(&empty).unwrap();
        assert_eq!(plan.n_polling_points(), 0);
        assert_eq!(plan.tour_length, 0.0);

        let one = Network::build(DeploymentConfig::uniform(1, 100.0).generate(1), 30.0);
        let plan = plan_hier(&one).unwrap();
        plan.validate(&one.deployment.sensors, one.range).unwrap();
        assert_eq!(plan.n_polling_points(), 1);

        let three = Network::build(DeploymentConfig::uniform(3, 400.0).generate(2), 30.0);
        let plan = plan_hier(&three).unwrap();
        plan.validate(&three.deployment.sensors, three.range)
            .unwrap();
    }

    #[test]
    fn sparse_tiles_ride_the_splice_path() {
        // Tiny tiles force many 1–2 stop sub-tours through `stitch`'s
        // deferred splice branch; the plan must still validate.
        let net = net(120, 500.0, 4);
        let (plan, stats) = HierPlanner::with_config(HierConfig {
            tile_cells: Some(2.0), // 60 m tiles over a 500 m field
            ..HierConfig::default()
        })
        .plan_with_stats(&net)
        .unwrap();
        plan.validate(&net.deployment.sensors, net.range).unwrap();
        assert!(stats.spliced_stops > 0, "want the splice path exercised");
    }

    #[test]
    fn empty_tiles_flow_through_stitching_without_panicking() {
        // A tile that selected no polling points (and true empty tiles)
        // must ride through `stitch` as a no-op.
        let sink = Point::new(0.0, 0.0);
        let square = TilePlan {
            stops: vec![
                Point::new(10.0, 0.0),
                Point::new(20.0, 0.0),
                Point::new(20.0, 10.0),
                Point::new(10.0, 10.0),
            ],
            cands: vec![0, 1, 2, 3],
            chosen: vec![],
        };
        let empty = || TilePlan {
            stops: vec![],
            cands: vec![],
            chosen: vec![],
        };
        let lone = TilePlan {
            stops: vec![Point::new(30.0, 5.0)],
            cands: vec![4],
            chosen: vec![],
        };
        let (pts, cands, seam, spliced) = stitch(sink, &[empty(), square, empty(), lone, empty()]);
        assert_eq!(pts.len(), 6, "sink + 4 square stops + 1 spliced");
        assert_eq!(cands.len(), 5);
        assert_eq!(seam.len(), 5);
        assert_eq!(spliced, 1);
        assert!(cands.contains(&4), "the lone stop was spliced in");

        // All tiles empty: just the sink, nothing spliced.
        let (pts, cands, _, spliced) = stitch(
            sink,
            &[TilePlan {
                stops: vec![],
                cands: vec![],
                chosen: vec![],
            }],
        );
        assert_eq!(pts, vec![sink]);
        assert!(cands.is_empty());
        assert_eq!(spliced, 0);
    }

    #[test]
    fn grid_candidates_are_rejected() {
        let net = net(50, 200.0, 1);
        let err = HierPlanner::with_config(HierConfig {
            base: PlannerConfig {
                candidates: CandidateMode::Grid { spacing: 20.0 },
                ..PlannerConfig::default()
            },
            ..HierConfig::default()
        })
        .plan(&net)
        .unwrap_err();
        assert!(matches!(err, PlanError::Unsupported(_)));
    }

    #[test]
    fn bad_tile_cells_is_a_clean_error() {
        let net = net(50, 200.0, 1);
        for cells in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = HierPlanner::with_config(HierConfig {
                tile_cells: Some(cells),
                ..HierConfig::default()
            })
            .plan(&net)
            .unwrap_err();
            assert!(matches!(err, PlanError::Unsupported(_)), "cells={cells}");
        }
    }

    #[test]
    fn capacitated_hier_respects_the_buffer_bound() {
        let net = net(300, 400.0, 6);
        let cap = 5;
        let plan = HierPlanner::with_config(HierConfig {
            base: PlannerConfig {
                max_sensors_per_pp: Some(cap),
                ..PlannerConfig::default()
            },
            tile_cells: Some(5.0),
            ..HierConfig::default()
        })
        .plan(&net)
        .unwrap();
        plan.validate(&net.deployment.sensors, net.range).unwrap();
        for pp in &plan.polling_points {
            assert!(pp.covered.len() <= cap, "buffer bound violated");
        }
    }

    #[test]
    fn greedy_covering_works_per_tile() {
        let net = net(400, 450.0, 8);
        let plan = HierPlanner::with_config(HierConfig {
            base: PlannerConfig {
                covering: CoveringStrategy::Greedy,
                ..PlannerConfig::default()
            },
            tile_cells: Some(5.0),
            ..HierConfig::default()
        })
        .plan(&net)
        .unwrap();
        plan.validate(&net.deployment.sensors, net.range).unwrap();
    }

    #[test]
    fn hier_is_deterministic_across_runs() {
        let net = net(700, 600.0, 12);
        let cfg = HierConfig {
            tile_cells: Some(6.0),
            ..HierConfig::default()
        };
        let a = HierPlanner::with_config(cfg).plan(&net).unwrap();
        let b = HierPlanner::with_config(cfg).plan(&net).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn touch_up_never_lengthens_the_stitched_tour() {
        for seed in [2u64, 7, 13] {
            let net = net(500, 550.0, seed);
            let base = HierConfig {
                tile_cells: Some(5.0),
                touch_up: false,
                ..HierConfig::default()
            };
            let raw = HierPlanner::with_config(base).plan(&net).unwrap();
            let polished = HierPlanner::with_config(HierConfig {
                touch_up: true,
                ..base
            })
            .plan(&net)
            .unwrap();
            assert!(
                polished.tour_length <= raw.tour_length + 1e-9,
                "seed {seed}: touch-up lengthened {} -> {}",
                raw.tour_length,
                polished.tour_length
            );
        }
    }
}
